"""repro — reproduction of "Adaptive Lightweight Regularization Tool for
Complex Analytics" (Luo et al., ICDE 2018).

The package is organized as the paper's system is:

``repro.core``
    The adaptive Gaussian-Mixture regularization tool (the contribution)
    plus the fixed-form baselines (L1, L2, Elastic-net, Huber).
``repro.optim``
    SGD with momentum and the trainers implementing the interleaved
    SGD+EM loops of Algorithms 1 and 2.
``repro.nn``
    A from-scratch layer-based deep-learning framework (the Apache SINGA
    substitute): conv/pool/LRN/BN/dense layers, backprop, the
    Alex-CIFAR-10 and ResNet-20 architectures of Table III.
``repro.linear``
    Logistic regression, metrics and model selection used for the
    small-dataset study (Table VII).
``repro.datasets``
    Seeded synthetic stand-ins for CIFAR-10, the 11 UCI datasets and the
    Hosp-FA hospital dataset, plus preprocessing.
``repro.pipeline``
    A lightweight GEMINI-style analytics stack (cleaning, aggregation,
    cohorts, immutable storage) the tool plugs into.
``repro.experiments``
    Configs, runners and table formatting for every table and figure in
    the paper's evaluation section.
``repro.telemetry``
    Observability for the training loop: event callbacks, per-phase
    timers (E-step / gradient / M-step / SGD), a metrics registry and
    structured JSONL run logs.
``repro.serve``
    Model serving: a versioned checkpoint registry with atomic
    hot-swap, a micro-batching prediction server with an LRU cache,
    per-request deadlines and graceful backpressure degradation.
"""

from . import core, telemetry
from .core import (
    ElasticNetRegularizer,
    GaussianMixture,
    GMHyperParams,
    GMRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
    LazyUpdateSchedule,
    NoRegularizer,
    Regularizer,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "telemetry",
    "GaussianMixture",
    "GMRegularizer",
    "GMHyperParams",
    "LazyUpdateSchedule",
    "Regularizer",
    "NoRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "ElasticNetRegularizer",
    "HuberRegularizer",
    "__version__",
]
