"""Cadence-driven snapshotting of the live model into the registry.

The trainer mutates its model in place forever; serving wants immutable
versioned checkpoints.  :class:`RegistryPublisher` is the bridge: on a
configurable cadence — every ``N`` steps, every ``T`` seconds, or when
the smoothed loss has moved by more than ``loss_delta`` since the last
snapshot — it publishes the current parameters through the existing
:meth:`~repro.serve.registry.ModelRegistry.publish` with
``activate=False``, so a freshly published **candidate** never touches
live traffic until the shadow evaluation + promotion gate says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..serve.registry import ModelRegistry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import start_span

__all__ = ["PublishTriggers", "RegistryPublisher"]


@dataclass(frozen=True)
class PublishTriggers:
    """When the publisher snapshots; any satisfied trigger fires.

    Attributes
    ----------
    every_steps:
        Publish once at least this many trainer steps have passed since
        the previous snapshot (``None`` disables).
    every_seconds:
        Publish once at least this much wall-clock (on the injected
        metrics clock) has passed since the previous snapshot.
    loss_delta:
        Publish once ``|loss - loss_at_last_publish|`` exceeds this —
        both "got much better" (worth shipping) and "got much worse"
        (worth a checkpoint before things drift further).
    """

    every_steps: Optional[int] = None
    every_seconds: Optional[float] = None
    loss_delta: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.every_steps is None
            and self.every_seconds is None
            and self.loss_delta is None
        ):
            raise ValueError("at least one publish trigger must be set")
        if self.every_steps is not None and self.every_steps < 1:
            raise ValueError(
                f"every_steps must be >= 1, got {self.every_steps}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0.0:
            raise ValueError(
                f"every_seconds must be > 0, got {self.every_seconds}"
            )
        if self.loss_delta is not None and self.loss_delta <= 0.0:
            raise ValueError(
                f"loss_delta must be > 0, got {self.loss_delta}"
            )


class RegistryPublisher:
    """Publish candidate checkpoints of a continuously trained model.

    Parameters
    ----------
    registry:
        Destination :class:`~repro.serve.registry.ModelRegistry`.
    name:
        Model name published under.
    triggers:
        The :class:`PublishTriggers` cadence.
    metrics:
        Metrics registry; its injectable ``clock`` also drives the
        ``every_seconds`` trigger, keeping tests deterministic.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        triggers: PublishTriggers,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.triggers = triggers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._last_step = 0
        self._last_time: Optional[float] = None
        self._last_loss: Optional[float] = None
        self._published = 0

    # ------------------------------------------------------------------
    @property
    def published_count(self) -> int:
        """Number of snapshots published so far."""
        return self._published

    def _fired_trigger(self, step: int, loss: Optional[float]) -> Optional[str]:
        """Name of the first satisfied trigger, or ``None``."""
        t = self.triggers
        if t.every_steps is not None and step - self._last_step >= t.every_steps:
            return "steps"
        if t.every_seconds is not None:
            now = self.metrics.clock()
            if self._last_time is None:
                self._last_time = now
            elif now - self._last_time >= t.every_seconds:
                return "seconds"
        if (
            t.loss_delta is not None
            and loss is not None
            and self._last_loss is not None
            and abs(loss - self._last_loss) >= t.loss_delta
        ):
            return "loss_delta"
        if t.loss_delta is not None and loss is not None and self._last_loss is None:
            # First observed loss becomes the baseline; no publish yet.
            self._last_loss = float(loss)
        return None

    # ------------------------------------------------------------------
    def maybe_publish(
        self, model: Any, step: int, loss: Optional[float] = None
    ) -> Optional[str]:
        """Publish a candidate if any trigger fires; returns the version.

        Returns ``None`` (and records nothing) when no trigger is due.
        """
        reason = self._fired_trigger(step, loss)
        if reason is None:
            return None
        return self.publish(model, step, reason=reason, loss=loss)

    def publish(
        self,
        model: Any,
        step: int,
        reason: str = "manual",
        loss: Optional[float] = None,
    ) -> str:
        """Unconditionally snapshot ``model`` as a non-active candidate.

        The published metadata records the trigger ``reason``, the
        trainer step and the loss at publish time — enough to
        reconstruct the cadence from the registry alone.
        """
        with start_span(
            "online/publish",
            attributes={"model": self.name, "step": step, "reason": reason},
        ) as span:
            version = self.registry.publish(
                self.name,
                model,
                metadata={
                    "online_step": int(step),
                    "publish_reason": reason,
                    **({} if loss is None else {"loss": float(loss)}),
                },
                activate=False,
            )
            self._last_step = int(step)
            self._last_time = self.metrics.clock()
            if loss is not None:
                self._last_loss = float(loss)
            self._published += 1
            self.metrics.counter("online/published_total").inc()
            span.set_attribute("version", version)
            return version

    def __repr__(self) -> str:
        return (
            f"RegistryPublisher(name={self.name!r}, "
            f"published={self._published}, triggers={self.triggers})"
        )
