"""The closed loop: serve → evaluate → train → publish → promote.

:class:`ContinuousLoop` is the driver that turns the repo's existing
pieces into a continuously learning system.  Each :meth:`step` consumes
one labeled mini-batch in the **prequential** (test-then-train) order:

1. **Serve** — the live model answers every row first (through a
   :class:`~repro.serve.server.ModelServer` /
   :class:`~repro.serve.sharding.server.ShardedModelServer` when one is
   attached, else straight from the registry's active snapshot).  The
   serving tier's shed-to-inline guarantee means every request gets an
   answer; the loop counts requests vs answers so "zero drops" is a
   measured fact, not an assumption.
2. **Score** — the answers are compared against the just-revealed
   labels, updating the live accuracy EWMA (the drift alarm and the
   rollback signal), and a sampled fraction is mirrored to the shadow
   candidate.
3. **Train** — :meth:`~repro.online.trainer.OnlineTrainer.partial_fit`
   consumes the batch.
4. **Publish** — the publisher snapshots a non-active candidate when a
   cadence trigger fires; the shadow evaluator picks it up.
5. **Promote / roll back** — the promotion policy judges the shadow
   window; a *promote* verdict activates the candidate in the registry
   and broadcasts ``hot_swap`` to a sharded server; a post-promotion
   live-accuracy collapse triggers rollback to the registry's
   last-known-good version.

Every decision is mirrored to telemetry (span events + ``online/*``,
``promotion/*`` counters), so the whole history is reconstructable
from the trace buffer alone — which a test asserts.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional

import numpy as np

from ..serve.registry import ModelRegistry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import Tracer, add_event, start_span, use_tracer

from .promotion import PROMOTE, REJECT, PromotionDecision, PromotionPolicy
from .publisher import RegistryPublisher
from .shadow import ShadowEvaluator
from .stream import DriftStream
from .trainer import OnlineTrainer

__all__ = ["ContinuousLoop"]

#: Smoothing factor of the live accuracy EWMA.
_ACCURACY_EWMA_BETA = 0.8


class ContinuousLoop:
    """Drive the train–serve–retrain loop one mini-batch at a time.

    Parameters
    ----------
    trainer:
        The :class:`~repro.online.trainer.OnlineTrainer` mutating the
        in-progress model.
    publisher:
        :class:`~repro.online.publisher.RegistryPublisher` snapshotting
        that model into the registry on its cadence (its ``registry``
        and ``name`` define which serving entry the loop manages; an
        initial version must already be published and active).
    shadow:
        :class:`~repro.online.shadow.ShadowEvaluator` mirroring served
        traffic to the latest candidate.
    policy:
        :class:`~repro.online.promotion.PromotionPolicy` gate.
    server:
        Optional serving tier answering live traffic.  Anything with
        ``predict_many(x)``; if it also exposes ``hot_swap`` (the
        sharded tier), promotions broadcast through it.  Without a
        server the loop scores against the registry's active snapshot
        directly.
    metrics:
        Shared metrics registry; defaults to the trainer's.
    tracer:
        Optional tracer installed ambiently around every step, so all
        nested spans/events (serve, publish, promotion) land in one
        place.
    """

    def __init__(
        self,
        trainer: OnlineTrainer,
        publisher: RegistryPublisher,
        shadow: ShadowEvaluator,
        policy: PromotionPolicy,
        server: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.trainer = trainer
        self.publisher = publisher
        self.shadow = shadow
        self.policy = policy
        self.server = server
        self.metrics = metrics if metrics is not None else trainer.metrics
        self.tracer = tracer
        self.registry: ModelRegistry = publisher.registry
        self.name = publisher.name
        self.decisions: List[PromotionDecision] = []
        self.rollbacks: List[Dict[str, Any]] = []
        self._live_accuracy: Optional[float] = None
        self._accuracy_at_promotion: Optional[float] = None
        self._steps = 0
        self._requests = 0
        self._answers = 0

    # ------------------------------------------------------------------
    @property
    def live_accuracy(self) -> Optional[float]:
        """EWMA of live-model accuracy on just-revealed labels."""
        return self._live_accuracy

    @property
    def dropped_requests(self) -> int:
        """Requests that never got an answer (the loop asserts 0)."""
        return self._requests - self._answers

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, y: np.ndarray) -> Dict[str, Any]:
        """One prequential iteration; returns a step summary dict."""
        scope = (
            use_tracer(self.tracer)
            if self.tracer is not None
            else contextlib.nullcontext()
        )
        with scope:
            with start_span(
                "online/loop_step", attributes={"step": self._steps}
            ) as span:
                summary = self._step_inner(np.asarray(x), np.asarray(y))
                span.set_attribute("live_accuracy", summary["live_accuracy"])
                if summary["published"]:
                    span.set_attribute("published", summary["published"])
                if summary["decision"]:
                    span.set_attribute("decision", summary["decision"])
                return summary

    def _step_inner(self, x: np.ndarray, y: np.ndarray) -> Dict[str, Any]:
        # 1. Serve: the live model answers before the labels are used.
        predictions = self._serve(x)
        # 2. Score: live accuracy EWMA + shadow mirroring.
        batch_accuracy = float(np.mean(np.asarray(predictions) == y))
        if self._live_accuracy is None:
            self._live_accuracy = batch_accuracy
        else:
            self._live_accuracy = (
                _ACCURACY_EWMA_BETA * self._live_accuracy
                + (1.0 - _ACCURACY_EWMA_BETA) * batch_accuracy
            )
        self.metrics.gauge("online/live_accuracy").set(self._live_accuracy)
        for row, live_prediction, label in zip(x, predictions, y):
            self.shadow.observe(row, live_prediction, label=label)
        # 3. Train on the now-consumed labels.
        result = self.trainer.partial_fit(x, y)
        # 4. Publish a candidate when the cadence says so.
        published = self.publisher.maybe_publish(
            self.trainer.model, result.step + 1, loss=result.loss_ewma
        )
        if published is not None:
            self.shadow.set_candidate(published)
        # 5. Promotion gate + rollback watch.
        decision = self.policy.decide(self.shadow.report(), self._steps)
        if decision is not None:
            self.decisions.append(decision)
            self._apply(decision)
        rolled_back = self._maybe_rollback()
        self._steps += 1
        self.metrics.counter("online/loop_steps_total").inc()
        return {
            "step": self._steps - 1,
            "loss": result.loss,
            "batch_accuracy": batch_accuracy,
            "live_accuracy": self._live_accuracy,
            "published": published,
            "decision": None if decision is None else decision.action,
            "rolled_back": rolled_back,
            "active_version": self.registry.active_version(self.name),
        }

    # ------------------------------------------------------------------
    def _serve(self, x: np.ndarray) -> List[Any]:
        """Answer every row with the live model; count requests/answers."""
        self._requests += len(x)
        self.metrics.counter("online/requests_total").inc(float(len(x)))
        if self.server is not None:
            predictions = self.server.predict_many(x)
        else:
            live = self.registry.active(self.name)
            predictions = list(live.model.predict(np.asarray(x)))
        answered = sum(1 for p in predictions if p is not None)
        self._answers += answered
        self.metrics.counter("online/answers_total").inc(float(answered))
        return predictions

    def _apply(self, decision: PromotionDecision) -> None:
        """Carry out a gate verdict against registry, server and shadow."""
        if decision.action == PROMOTE:
            self.registry.activate(self.name, decision.candidate_version)
            hot_swap = getattr(self.server, "hot_swap", None)
            if callable(hot_swap):
                hot_swap(decision.candidate_version)
            self._accuracy_at_promotion = self._live_accuracy
            self.metrics.counter("online/promotions_total").inc()
            self.shadow.clear_candidate()
        elif decision.action == REJECT:
            self.metrics.counter("online/rejections_total").inc()
            self.shadow.clear_candidate()
        # hold: keep the shadow window accumulating.

    def _maybe_rollback(self) -> bool:
        """Roll back to last-known-good if the live EWMA collapsed."""
        if not self.policy.check_rollback(
            self._live_accuracy, self._accuracy_at_promotion
        ):
            return False
        target = self.registry.last_known_good(self.name)
        if target is None:
            return False
        with start_span(
            "online/rollback",
            attributes={"model": self.name, "target": target},
        ) as span:
            demoted = self.registry.active_version(self.name)
            self.registry.activate(self.name, target)
            hot_swap = getattr(self.server, "hot_swap", None)
            if callable(hot_swap):
                hot_swap(target)
            record = {
                "step": self._steps,
                "from": demoted,
                "to": target,
                "live_accuracy": self._live_accuracy,
                "accuracy_at_promotion": self._accuracy_at_promotion,
            }
            self.rollbacks.append(record)
            span.event("rollback", **record)
            add_event("promotion_rollback", **record)
            self.metrics.counter("online/rollbacks_total").inc()
            # Disarm until the next promotion establishes a new baseline.
            self._accuracy_at_promotion = None
        return True

    # ------------------------------------------------------------------
    def run(self, stream: DriftStream, steps: int) -> Dict[str, Any]:
        """Drive :meth:`step` over ``steps`` batches of ``stream``."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        with start_span(
            "online/run", attributes={"steps": steps}, tracer=self.tracer
        ):
            for x, y in stream.batches(steps):
                self.step(x, y)
        return self.status()

    def status(self) -> Dict[str, Any]:
        """Operator-facing summary of the loop's lifetime so far."""
        actions = [decision.action for decision in self.decisions]
        return {
            "model": self.name,
            "steps": self._steps,
            "live_accuracy": self._live_accuracy,
            "active_version": self.registry.active_version(self.name),
            "last_known_good": self.registry.last_known_good(self.name),
            "candidate_version": self.shadow.candidate_version,
            "published_total": self.publisher.published_count,
            "decisions_total": len(self.decisions),
            "promotions": actions.count(PROMOTE),
            "rejections": actions.count(REJECT),
            "holds": actions.count("hold"),
            "rollbacks": len(self.rollbacks),
            "requests_total": self._requests,
            "answers_total": self._answers,
            "dropped_requests": self.dropped_requests,
        }

    def __repr__(self) -> str:
        return (
            f"ContinuousLoop(model={self.name!r}, steps={self._steps}, "
            f"decisions={len(self.decisions)})"
        )
