"""Online EM for the GM prior: decayed sufficient statistics.

The batch M-step (Equations (13)/(17)) needs only two per-component
sums over the weight vector — the responsibility mass
``S0_k = sum_m r_k(w_m)`` and the weighted square sum
``S1_k = sum_m r_k(w_m) w_m^2``.  :mod:`repro.core.em` already factors
the M-step through exactly those statistics
(:func:`~repro.core.em.precisions_from_stats` /
:func:`~repro.core.em.mixing_from_stats`), so the *online* variant only
has to change how the statistics are produced: instead of recomputing
them from scratch each step it maintains an exponentially decayed
running summary

    S <- rho * S + (1 - rho) * s_t        (first update: S = s_t)

and runs the *identical* M-step code on it.  On stationary weights the
recursion's fixed point is ``S = s_t``, i.e. the batch statistics —
which is why the benchmark can require online π/λ to match batch EM
within ``1e-3`` on stationary data, while under drift the decay keeps
the prior tracking the moving weight distribution (the same spirit in
which regularized/streaming EM variants stabilize updates on small
batches).

:class:`DecayedGMRegularizer` packages the recursion behind the normal
:class:`~repro.core.gm_regularizer.GMRegularizer` interface, with
warm-up gating expressed through the existing
:class:`~repro.core.lazy.LazyUpdateSchedule`: the first
``warmup_steps`` streaming steps are treated as the schedule's eager
epochs (every step refreshes), after which the lazy ``Im``/``Ig``
intervals take over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.em import (
    RegularizerEMState,
    merge_plan,
    mixing_from_stats,
    precisions_from_stats,
    suffstats_from_responsibilities,
)
from ..core.gaussian_mixture import GaussianMixture
from ..core.gm_regularizer import GMRegularizer
from ..core.hyperparams import GMHyperParams
from ..core.lazy import LazyUpdateSchedule

__all__ = ["OnlineEMState", "online_em_step", "DecayedGMRegularizer"]


@dataclass(frozen=True)
class OnlineEMState:
    """One step of the decayed-statistics recursion, as a value.

    ``resp_sum``/``weighted_sq`` are the running ``S0``/``S1`` aligned
    with ``mixture``'s components (``None`` before the first update).
    ``updates`` counts completed :func:`online_em_step` applications.
    """

    mixture: GaussianMixture
    resp_sum: Optional[np.ndarray] = None
    weighted_sq: Optional[np.ndarray] = None
    updates: int = 0


def _blend(
    running: Optional[np.ndarray], fresh: np.ndarray, rho: float
) -> np.ndarray:
    """``rho``-decayed blend; the first observation seeds the summary."""
    if running is None:
        return fresh
    return rho * running + (1.0 - rho) * fresh


def online_em_step(
    state: OnlineEMState,
    w: np.ndarray,
    alpha: np.ndarray,
    a: float,
    b: float,
    rho: float = 0.95,
    prune: bool = True,
    merge: bool = True,
    merge_rel_tol: float = 0.02,
    responsibilities: Optional[np.ndarray] = None,
) -> OnlineEMState:
    """One online E+M step on the GM parameters for the current ``w``.

    Mirrors :func:`repro.core.em.em_step` exactly — same E-step, same
    stats-based M-step, same prune/merge post-processing — except the
    M-step consumes the decayed running statistics instead of this
    step's raw sums.  Pruned components drop their statistics rows;
    merged components (via :func:`~repro.core.em.merge_plan`) *sum*
    their statistics, so the summary stays aligned with the mixture as
    K collapses.

    ``responsibilities`` lets the fused hot path hand over the
    Equation (9) matrix already computed for this exact ``(mixture,
    w)`` pair, skipping the E-step's second density evaluation; with
    float64 responsibilities the result is bit-identical to computing
    them here.
    """
    if not 0.0 < rho < 1.0:
        raise ValueError(f"rho must be in (0, 1), got {rho}")
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    mixture = state.mixture
    resp = (
        responsibilities
        if responsibilities is not None
        else mixture.responsibilities(w)
    )
    if resp.shape != (w.size, mixture.n_components):
        raise ValueError(
            f"responsibilities have shape {resp.shape}, expected "
            f"({w.size}, {mixture.n_components})"
        )
    s0, s1 = suffstats_from_responsibilities(resp, w)
    resp_sum = _blend(state.resp_sum, s0, rho)
    weighted_sq = _blend(state.weighted_sq, s1, rho)

    alpha = np.asarray(alpha, dtype=np.float64).reshape(-1)
    lam = precisions_from_stats(resp_sum, weighted_sq, a=a, b=b)
    pi = mixing_from_stats(resp_sum, alpha=alpha, prune=prune)

    keep = pi > 0.0
    if not np.all(keep) and keep.sum() >= 1:
        pi = pi[keep] / pi[keep].sum()
        lam = lam[keep]
        resp_sum = resp_sum[keep]
        weighted_sq = weighted_sq[keep]

    if merge and pi.size > 1:
        groups = merge_plan(pi, lam, rel_tol=merge_rel_tol)
        if len(groups) < pi.size:
            pi, lam, resp_sum, weighted_sq = _apply_merge(
                groups, pi, lam, resp_sum, weighted_sq
            )

    return OnlineEMState(
        mixture=GaussianMixture(pi=pi, lam=lam),
        resp_sum=resp_sum,
        weighted_sq=weighted_sq,
        updates=state.updates + 1,
    )


def _apply_merge(
    groups: List[List[int]],
    pi: np.ndarray,
    lam: np.ndarray,
    resp_sum: np.ndarray,
    weighted_sq: np.ndarray,
) -> tuple:
    """Collapse each merge-plan group, summing its statistics rows.

    The merged mixture parameters use the same arithmetic as
    :func:`~repro.core.em.merge_similar_components` (summed ``pi``,
    pi-weighted mean ``lambda``) so batch and online paths agree; the
    statistics of a merged component are the plain sums of its members'
    (a sum of sums is the merged component's sufficient statistic).
    """
    new_pi, new_lam, new_s0, new_s1 = [], [], [], []
    for group in groups:
        idx = np.asarray(group, dtype=np.intp)
        total = float(pi[idx].sum())
        new_pi.append(total)
        new_lam.append(float((pi[idx] * lam[idx]).sum()) / max(total, 1e-300))
        new_s0.append(float(resp_sum[idx].sum()))
        new_s1.append(float(weighted_sq[idx].sum()))
    return (
        np.asarray(new_pi),
        np.asarray(new_lam),
        np.asarray(new_s0),
        np.asarray(new_s1),
    )


class DecayedGMRegularizer(GMRegularizer):
    """:class:`GMRegularizer` whose M-step runs on decayed statistics.

    Drop-in for the batch regularizer inside any training loop, but
    built for streams:

    - :meth:`upt_gm_param` applies :func:`online_em_step` — the running
      ``S0``/``S1`` summary carries memory of past weight snapshots with
      exponential decay ``rho``, so one noisy mini-batch cannot yank the
      prior around, yet the prior still tracks drift.
    - Warm-up gating reuses the lazy schedule: streaming steps below
      ``warmup_steps`` are mapped to the schedule's eager-epoch regime
      (refresh every step); afterwards the lazy ``Im``/``Ig`` intervals
      apply, exactly as in Algorithm 2's post-warm-up phase.
    - :meth:`em_state`/:meth:`load_em_state` additionally round-trip the
      running statistics, so a :class:`~repro.optim.trainer.TrainerState`
      snapshot resumes the stream where it left off.
    """

    def __init__(
        self,
        n_dimensions: int,
        weight_init_std: float = 0.1,
        hyperparams: Optional[GMHyperParams] = None,
        init_method: str = "linear",
        schedule: Optional[LazyUpdateSchedule] = None,
        prune_components: bool = True,
        merge_components: bool = True,
        rho: float = 0.95,
        warmup_steps: int = 0,
        fused: bool = True,
        kernel: str = "exact",
    ) -> None:
        super().__init__(
            n_dimensions,
            weight_init_std=weight_init_std,
            hyperparams=hyperparams,
            init_method=init_method,
            schedule=schedule,
            prune_components=prune_components,
            merge_components=merge_components,
            fused=fused,
            kernel=kernel,
        )
        if not 0.0 < rho < 1.0:
            raise ValueError(f"rho must be in (0, 1), got {rho}")
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        if warmup_steps > 0 and self.schedule.eager_epochs < 1:
            raise ValueError(
                "warmup_steps > 0 needs a schedule with eager_epochs >= 1 "
                "(warm-up is expressed as the schedule's eager regime)"
            )
        self.rho = float(rho)
        self.warmup_steps = int(warmup_steps)
        self._resp_sum: Optional[np.ndarray] = None
        self._weighted_sq: Optional[np.ndarray] = None
        self._em_updates = 0

    # ------------------------------------------------------------------
    # Warm-up gating through the lazy schedule
    # ------------------------------------------------------------------
    def _epoch_for(self, iteration: int) -> int:
        """Map a streaming step onto the schedule's epoch axis.

        Steps inside the warm-up window behave like epoch 0 (eager:
        refresh every iteration); later steps sit at ``eager_epochs``,
        the first lazy epoch, so only the ``Im``/``Ig`` intervals fire.
        """
        if iteration < self.warmup_steps:
            return 0
        return self.schedule.eager_epochs

    def prepare(self, w: np.ndarray, iteration: int) -> None:
        """E-step with the warm-up window standing in for eager epochs."""
        self._epoch = self._epoch_for(iteration)
        super().prepare(w, iteration)

    def update(self, w: np.ndarray, iteration: int) -> None:
        """M-step with the warm-up window standing in for eager epochs."""
        self._epoch = self._epoch_for(iteration)
        super().update(w, iteration)

    # ------------------------------------------------------------------
    # The decayed M-step
    # ------------------------------------------------------------------
    def upt_gm_param(self, w: np.ndarray) -> None:
        """``uptGMParam()`` on the decayed summary instead of raw sums.

        Fresh fused responsibilities staged by ``update()`` (same
        mixture, same ``w``, same iteration) feed the decayed statistics
        directly — the same single-density-evaluation fusion as the
        batch regularizer, extended to the online path.
        """
        flat = np.asarray(w, dtype=np.float64).reshape(-1)
        alpha = self._alpha[: self.mixture.n_components]
        resp = self._take_pending_responsibilities()
        if resp is not None and resp.shape[1] != self.mixture.n_components:
            resp = None
        if resp is not None and resp.dtype != np.float64:
            # The decayed recursion is float64 end-to-end; promote
            # float32 fast-kernel responsibilities before blending.
            resp = resp.astype(np.float64)
        if resp is None:
            self._n_density_evals += 1
        state = online_em_step(
            OnlineEMState(
                mixture=self.mixture,
                resp_sum=self._resp_sum,
                weighted_sq=self._weighted_sq,
                updates=self._em_updates,
            ),
            flat,
            alpha=alpha,
            a=self._a,
            b=self._b,
            rho=self.rho,
            prune=self.prune_components,
            merge=self.merge_components,
            responsibilities=resp,
        )
        self.mixture = state.mixture
        self._resp_sum = state.resp_sum
        self._weighted_sq = state.weighted_sq
        self._em_updates = state.updates
        self._n_mstep += 1

    # ------------------------------------------------------------------
    # Snapshot/restore carrying the running statistics
    # ------------------------------------------------------------------
    def em_state(self) -> RegularizerEMState:
        """Snapshot including the decayed ``S0``/``S1`` summary."""
        return RegularizerEMState(
            pi=self.mixture.pi.copy(),
            lam=self.mixture.lam.copy(),
            estep_count=self._n_estep,
            mstep_count=self._n_mstep,
            resp_sum=None if self._resp_sum is None else self._resp_sum.copy(),
            weighted_sq=(
                None if self._weighted_sq is None else self._weighted_sq.copy()
            ),
            em_updates=self._em_updates,
        )

    def load_em_state(self, state: RegularizerEMState) -> None:
        """Restore mixture *and* running statistics from a snapshot."""
        super().load_em_state(state)
        self._resp_sum = (
            None
            if state.resp_sum is None
            else np.asarray(state.resp_sum, dtype=np.float64).reshape(-1)
        )
        self._weighted_sq = (
            None
            if state.weighted_sq is None
            else np.asarray(state.weighted_sq, dtype=np.float64).reshape(-1)
        )
        self._em_updates = int(state.em_updates)

    def __repr__(self) -> str:
        return (
            f"DecayedGMRegularizer(M={self.n_dimensions}, "
            f"K={self.mixture.n_components}, rho={self.rho}, "
            f"warmup_steps={self.warmup_steps})"
        )
