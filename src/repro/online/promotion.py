"""Promotion gate: promote, hold, or reject a shadow-evaluated candidate.

The decision rules are deliberately small and fully observable — every
call to :meth:`PromotionPolicy.decide` produces a
:class:`PromotionDecision` **and** emits the same verdict as a
``promotion_decision`` span event plus ``promotion/*`` counters, so an
operator (or a test) can reconstruct the decision history from
telemetry alone, without access to the loop's in-process state.

Rules, in order:

1. Not enough mirrored evidence (``samples < min_samples``) → *hold*.
2. With labels: candidate beats live by at least ``min_accuracy_gain``
   → *promote*; candidate trails live by more than
   ``max_accuracy_drop`` → *reject*; otherwise → *hold* (keep
   accumulating evidence).
3. Without labels: agreement at or above ``min_agreement`` → *promote*
   (the candidate is behaviourally indistinguishable, so swapping is
   safe); below → *hold*.

Separately, :meth:`check_rollback` watches the live accuracy EWMA
*after* a promotion: a drop of more than ``max_accuracy_drop`` below
the accuracy recorded at promotion time demands a rollback to the
last-known-good version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import start_span

from .shadow import ShadowReport

__all__ = ["PromotionDecision", "PromotionPolicy"]

#: The three verdicts a decision can carry.
PROMOTE = "promote"
HOLD = "hold"
REJECT = "reject"


@dataclass(frozen=True)
class PromotionDecision:
    """One gate verdict, with the evidence that produced it."""

    action: str
    candidate_version: str
    reason: str
    step: int
    evidence: Dict[str, Any] = field(default_factory=dict)


class PromotionPolicy:
    """Decision rules over a :class:`~repro.online.shadow.ShadowReport`.

    Parameters
    ----------
    min_samples:
        Mirrored requests required before any promote/reject verdict.
    min_agreement:
        Label-free promotion bar on candidate/live agreement.
    min_accuracy_gain:
        Labeled promotion bar: candidate accuracy must exceed live by
        at least this much (0.0 → "at least as good").
    max_accuracy_drop:
        Labeled rejection bar, and the post-promotion rollback
        tolerance on the live accuracy EWMA.
    metrics:
        Shared metrics registry for the ``promotion/*`` counters.
    """

    def __init__(
        self,
        min_samples: int = 30,
        min_agreement: float = 0.9,
        min_accuracy_gain: float = 0.0,
        max_accuracy_drop: float = 0.02,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 <= min_agreement <= 1.0:
            raise ValueError(
                f"min_agreement must be in [0, 1], got {min_agreement}"
            )
        if max_accuracy_drop < 0.0:
            raise ValueError(
                f"max_accuracy_drop must be >= 0, got {max_accuracy_drop}"
            )
        self.min_samples = int(min_samples)
        self.min_agreement = float(min_agreement)
        self.min_accuracy_gain = float(min_accuracy_gain)
        self.max_accuracy_drop = float(max_accuracy_drop)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def decide(
        self, report: Optional[ShadowReport], step: int
    ) -> Optional[PromotionDecision]:
        """Gate verdict for the current shadow window.

        ``None`` when there is no candidate under evaluation at all;
        otherwise a :class:`PromotionDecision`, recorded as a
        ``promotion_decision`` span event and counted per action.
        """
        if report is None:
            return None
        with start_span(
            "online/promotion_decide",
            attributes={"candidate": report.candidate_version, "step": step},
        ) as span:
            decision = self._evaluate(report, step)
            span.event(
                "promotion_decision",
                action=decision.action,
                candidate=decision.candidate_version,
                reason=decision.reason,
                step=decision.step,
                **{
                    key: value
                    for key, value in decision.evidence.items()
                    if value is not None
                },
            )
            self.metrics.counter("promotion/decisions_total").inc()
            self.metrics.counter(f"promotion/{decision.action}_total").inc()
            return decision

    def _evaluate(self, report: ShadowReport, step: int) -> PromotionDecision:
        evidence: Dict[str, Any] = {
            "samples": report.samples,
            "agreement": report.agreement,
            "live_accuracy": report.live_accuracy,
            "candidate_accuracy": report.candidate_accuracy,
        }

        def verdict(action: str, reason: str) -> PromotionDecision:
            return PromotionDecision(
                action=action,
                candidate_version=report.candidate_version,
                reason=reason,
                step=int(step),
                evidence=evidence,
            )

        if report.samples < self.min_samples:
            return verdict(
                HOLD, f"insufficient_samples:{report.samples}<{self.min_samples}"
            )
        if (
            report.candidate_accuracy is not None
            and report.live_accuracy is not None
        ):
            gain = report.candidate_accuracy - report.live_accuracy
            if gain >= self.min_accuracy_gain:
                return verdict(PROMOTE, f"accuracy_gain:{gain:+.4f}")
            if gain < -self.max_accuracy_drop:
                return verdict(REJECT, f"accuracy_drop:{gain:+.4f}")
            return verdict(HOLD, f"accuracy_inconclusive:{gain:+.4f}")
        if report.agreement >= self.min_agreement:
            return verdict(PROMOTE, f"agreement:{report.agreement:.4f}")
        return verdict(HOLD, f"agreement_low:{report.agreement:.4f}")

    # ------------------------------------------------------------------
    def check_rollback(
        self,
        live_accuracy: Optional[float],
        accuracy_at_promotion: Optional[float],
    ) -> bool:
        """Whether the live accuracy has fallen past the rollback bar.

        Compares the current live accuracy EWMA against the value
        recorded when the serving version was promoted; a drop larger
        than ``max_accuracy_drop`` means the promotion has gone bad
        under real traffic and the loop must reactivate the
        last-known-good version.
        """
        if live_accuracy is None or accuracy_at_promotion is None:
            return False
        return (accuracy_at_promotion - live_accuracy) > self.max_accuracy_drop

    def __repr__(self) -> str:
        return (
            f"PromotionPolicy(min_samples={self.min_samples}, "
            f"min_agreement={self.min_agreement}, "
            f"min_accuracy_gain={self.min_accuracy_gain}, "
            f"max_accuracy_drop={self.max_accuracy_drop})"
        )
