"""Closed-loop continuous learning: train, serve, shadow-evaluate, promote.

The batch pipeline (``repro.optim`` training → ``repro.serve`` hot-swap
serving) covers one deployment; this package closes the loop the
paper's GEMINI healthcare stack runs in production, where models are
retrained as new data arrives:

- :class:`~repro.online.em.DecayedGMRegularizer` /
  :func:`~repro.online.em.online_em_step` — the GM prior's M-step on
  exponentially decayed sufficient statistics.
- :class:`~repro.online.trainer.OnlineTrainer` — ``partial_fit``
  streaming training without an epoch horizon.
- :class:`~repro.online.publisher.RegistryPublisher` — cadence-driven
  candidate snapshots into the model registry.
- :class:`~repro.online.shadow.ShadowEvaluator` — mirrors sampled live
  traffic to the candidate.
- :class:`~repro.online.promotion.PromotionPolicy` — promote / hold /
  reject / roll back, every verdict visible in telemetry.
- :class:`~repro.online.loop.ContinuousLoop` — the prequential driver
  tying it all together under live traffic.
- :class:`~repro.online.stream.DriftStream` — seeded synthetic traffic
  with a controllable distribution shift, for benchmarks and smokes.
"""

from .em import DecayedGMRegularizer, OnlineEMState, online_em_step
from .loop import ContinuousLoop
from .promotion import PromotionDecision, PromotionPolicy
from .publisher import PublishTriggers, RegistryPublisher
from .shadow import ShadowEvaluator, ShadowReport
from .stream import DriftStream
from .trainer import OnlineTrainer, StepResult

__all__ = [
    "OnlineEMState",
    "online_em_step",
    "DecayedGMRegularizer",
    "OnlineTrainer",
    "StepResult",
    "PublishTriggers",
    "RegistryPublisher",
    "ShadowEvaluator",
    "ShadowReport",
    "PromotionDecision",
    "PromotionPolicy",
    "ContinuousLoop",
    "DriftStream",
]
