"""Streaming trainer: ``partial_fit`` without a fixed epoch horizon.

The batch :class:`~repro.optim.trainer.Trainer` owns the full dataset
and walks it in epochs; the GEMINI-style continuous loop never sees the
full dataset — mini-batches arrive forever.  :class:`OnlineTrainer`
keeps the Algorithm 2 per-iteration ordering (E-step → gradient →
M-step → SGD, each under its ``phase/<name>`` timer) but replaces the
epoch loop with a single :meth:`partial_fit` call per arriving batch,
pairing naturally with :class:`~repro.online.em.DecayedGMRegularizer`
whose decayed statistics stand in for the vanished full-data view.

The regularizer weight follows the same ``1/N`` normalization as the
batch trainer (prior counted once against ``N`` likelihood terms);
online, ``N`` is either a declared reference dataset size
(``n_reference``, e.g. the size of the batch-training corpus the model
was seeded from) or the running count of streamed samples.

Snapshot/restore goes through the shared
:class:`~repro.optim.trainer.TrainerState` path — the same typed state
the batch trainer produces — so a batch-trained model hands off to the
stream (and back) without touching private fields.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..optim.schedules import ConstantLR, LRSchedule
from ..optim.sgd import SGD
from ..optim.trainer import (
    PHASES,
    TrainableModel,
    TrainerState,
    capture_trainer_state,
    restore_trainer_state,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import start_span

__all__ = ["StepResult", "OnlineTrainer"]

#: Smoothing factor of the trainer's running loss EWMA (the signal the
#: publisher's ``loss_delta`` trigger watches).
_LOSS_EWMA_BETA = 0.9


@dataclass(frozen=True)
class StepResult:
    """Outcome of one :meth:`OnlineTrainer.partial_fit` call."""

    step: int
    loss: float
    loss_ewma: float
    samples_seen: int
    lr: float


class OnlineTrainer:
    """Mini-batch SGD + online EM, one streamed batch at a time.

    Parameters
    ----------
    model:
        Any :class:`~repro.optim.trainer.TrainableModel`; its adaptive
        regularizers should be
        :class:`~repro.online.em.DecayedGMRegularizer` instances so the
        M-step runs on decayed statistics (a batch
        :class:`~repro.core.gm_regularizer.GMRegularizer` also works —
        it just recomputes from each batch's weights alone).
    lr:
        Learning rate or :class:`~repro.optim.schedules.LRSchedule`
        (evaluated on the *step* counter, there being no epochs).
    momentum:
        SGD momentum.
    n_reference:
        Effective dataset size ``N`` for the ``1/N`` regularizer
        weight.  ``None`` uses the running streamed-sample count.
    clock:
        Injectable monotonic clock shared with the metrics registry.
    metrics:
        :class:`~repro.telemetry.metrics.MetricsRegistry` receiving the
        ``phase/<name>`` timers and stream counters; a fresh registry on
        ``clock`` is created when omitted.
    """

    def __init__(
        self,
        model: TrainableModel,
        lr: "float | LRSchedule" = 0.1,
        momentum: float = 0.0,
        n_reference: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_reference is not None and n_reference < 1:
            raise ValueError(f"n_reference must be >= 1, got {n_reference}")
        self.model = model
        self.schedule = (
            lr if isinstance(lr, LRSchedule) else ConstantLR(float(lr))
        )
        self.momentum = float(momentum)
        self.n_reference = None if n_reference is None else int(n_reference)
        self.clock = clock
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(clock=clock)
        )
        self._params = list(model.parameters())
        self._optimizer = SGD(
            [p.value for p in self._params],
            lr=self.schedule.lr_at(0),
            momentum=self.momentum,
        )
        self._iteration = 0
        self._samples_seen = 0
        self._loss_ewma: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def step_count(self) -> int:
        """Streaming steps completed so far."""
        return self._iteration

    @property
    def samples_seen(self) -> int:
        """Total streamed samples consumed so far."""
        return self._samples_seen

    @property
    def loss_ewma(self) -> Optional[float]:
        """Smoothed streaming loss (``None`` before the first step)."""
        return self._loss_ewma

    # ------------------------------------------------------------------
    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> StepResult:
        """Consume one mini-batch: Algorithm 2's iteration body, once.

        No epoch horizon: the step counter advances forever, the lazy
        schedule's warm-up window is expressed in steps (see
        :class:`~repro.online.em.DecayedGMRegularizer`), and the loss
        EWMA feeds the publisher's ``loss_delta`` trigger.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
            )
        with start_span(
            "online/partial_fit",
            attributes={"step": self._iteration, "batch": int(x.shape[0])},
        ) as span:
            self._samples_seen += int(x.shape[0])
            n_effective = self.n_reference or self._samples_seen
            reg_scale = 1.0 / float(max(n_effective, 1))
            lr = self.schedule.lr_at(self._iteration)
            self._optimizer.set_lr(lr)
            timers = {
                phase: self.metrics.timer(f"phase/{phase}") for phase in PHASES
            }
            it = self._iteration
            # E-step (lazy, warm-up gated): refresh cached g_reg where due.
            with timers["estep"]:
                for param in self._params:
                    if param.regularizer is not None:
                        param.regularizer.prepare(param.value, it)
            # Data-misfit gradient plus scaled regularizer gradient.
            with timers["grad"]:
                loss, grads = self.model.loss_and_gradients(x, y)
                for param, grad in zip(self._params, grads):
                    if param.regularizer is not None:
                        grad += reg_scale * param.regularizer.gradient(
                            param.value
                        )
            # M-step (lazy): decayed-statistics update of pi/lambda.
            with timers["mstep"]:
                for param in self._params:
                    if param.regularizer is not None:
                        param.regularizer.update(param.value, it)
            # SGD apply.
            with timers["sgd"]:
                self._optimizer.step(grads)
            self._iteration = it + 1

            loss = float(loss)
            if self._loss_ewma is None:
                self._loss_ewma = loss
            else:
                self._loss_ewma = (
                    _LOSS_EWMA_BETA * self._loss_ewma
                    + (1.0 - _LOSS_EWMA_BETA) * loss
                )
            self.metrics.counter("online/steps_total").inc()
            self.metrics.counter("online/samples_total").inc(float(x.shape[0]))
            self.metrics.histogram("online/batch_loss").observe(loss)
            self.metrics.gauge("online/loss_ewma").set(self._loss_ewma)
            span.set_attribute("loss", loss)
            return StepResult(
                step=it,
                loss=loss,
                loss_ewma=self._loss_ewma,
                samples_seen=self._samples_seen,
                lr=lr,
            )

    # ------------------------------------------------------------------
    # Shared snapshot/restore path (satellite: no private-field reaching)
    # ------------------------------------------------------------------
    def state(self) -> TrainerState:
        """Typed snapshot: iteration + per-regularizer EM state.

        Identical shape to :meth:`repro.optim.trainer.Trainer.state`,
        including the decayed statistics when the regularizers are
        :class:`~repro.online.em.DecayedGMRegularizer`.
        """
        return capture_trainer_state(self.model, self._iteration)

    def load_state(self, state: TrainerState) -> None:
        """Resume the stream from a :class:`TrainerState` snapshot."""
        restore_trainer_state(self.model, state)
        self._iteration = int(state.iteration)

    def __repr__(self) -> str:
        return (
            f"OnlineTrainer(step={self._iteration}, "
            f"samples_seen={self._samples_seen})"
        )
