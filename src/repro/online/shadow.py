"""Shadow evaluation: mirror sampled live traffic to a candidate model.

A freshly published candidate must earn promotion on **live traffic**,
not on a held-out set that may predate the drift that motivated it.
:class:`ShadowEvaluator` mirrors a deterministic sampled fraction of
the requests the live model answers to the candidate, scoring the
candidate inline (shadow scoring never blocks or fails the live
answer), and accumulates:

- **agreement** — fraction of mirrored rows where candidate and live
  predictions match (the label-free safety signal);
- **accuracy** for both models when labels arrive with the request
  (the prequential test-then-train setting provides them);
- **latency** of each side's scoring call, as histograms.

Everything lands in the shared
:class:`~repro.telemetry.metrics.MetricsRegistry` under ``shadow/*``
and is summarized into an immutable :class:`ShadowReport` for the
:class:`~repro.online.promotion.PromotionPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..rng import REPRO_DEFAULT_SEED, spawn
from ..serve.registry import ModelRegistry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import start_span

__all__ = ["ShadowReport", "ShadowEvaluator"]

#: Component key namespacing the mirror-sampling stream under `spawn`.
_SHADOW_KEY = 32


@dataclass(frozen=True)
class ShadowReport:
    """Accumulated candidate-vs-live deltas over the mirror window."""

    candidate_version: str
    live_version: str
    samples: int
    agreement: float
    live_accuracy: Optional[float]
    candidate_accuracy: Optional[float]
    live_latency_mean: float
    candidate_latency_mean: float


class ShadowEvaluator:
    """Mirror a sampled fraction of live requests to a candidate.

    Parameters
    ----------
    registry:
        Registry the candidate version is loaded from.
    name:
        Model name.
    fraction:
        Mirror probability per observed request, in ``(0, 1]``.
    metrics:
        Shared metrics registry (its clock times the scoring calls).
    seed:
        Seeds the sampling stream via :func:`repro.rng.spawn`, so a
        replayed run mirrors exactly the same requests.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        fraction: float = 0.2,
        metrics: Optional[MetricsRegistry] = None,
        seed: int = REPRO_DEFAULT_SEED,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.registry = registry
        self.name = name
        self.fraction = float(fraction)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rng = spawn(seed, _SHADOW_KEY)
        self._candidate_version: Optional[str] = None
        self._candidate_model: Any = None
        self._reset_window()

    def _reset_window(self) -> None:
        self._samples = 0
        self._agree = 0
        self._labeled = 0
        self._live_correct = 0
        self._candidate_correct = 0
        self._live_latency = 0.0
        self._candidate_latency = 0.0

    # ------------------------------------------------------------------
    @property
    def candidate_version(self) -> Optional[str]:
        """Version currently under shadow evaluation (or ``None``)."""
        return self._candidate_version

    def set_candidate(self, version: str) -> None:
        """Load ``version`` as the shadow candidate and reset the window.

        Loading happens here, once, off the per-request path; a newer
        candidate replaces the old one (its half-filled window is
        discarded — stale evidence about a superseded version).
        """
        with start_span(
            "online/shadow_candidate",
            attributes={"model": self.name, "version": version},
        ):
            self._candidate_model = self.registry.load(self.name, version)
            self._candidate_version = version
            self._reset_window()
            self.metrics.counter("shadow/candidates_total").inc()

    def clear_candidate(self) -> None:
        """Drop the candidate (after promotion or rejection)."""
        self._candidate_model = None
        self._candidate_version = None
        self._reset_window()

    # ------------------------------------------------------------------
    def observe(
        self,
        row: np.ndarray,
        live_prediction: Any,
        label: Optional[Any] = None,
        live_seconds: Optional[float] = None,
    ) -> Optional[Any]:
        """Maybe mirror one served request to the candidate.

        Returns the candidate's prediction when the request was
        mirrored, ``None`` otherwise (no candidate installed, or the
        sampler skipped this request).  ``live_seconds`` lets the caller
        report the live path's measured latency for the delta; the
        candidate's inline scoring is timed here.
        """
        if self._candidate_model is None:
            return None
        if self._rng.random() >= self.fraction:
            return None
        clock = self.metrics.clock
        with start_span(
            "online/shadow_observe",
            attributes={
                "model": self.name,
                "candidate": self._candidate_version,
            },
        ) as span:
            start = clock()
            shadow_prediction = self._candidate_model.predict(
                np.asarray(row, dtype=np.float64).reshape(1, -1)
            )[0]
            elapsed = clock() - start
            self._samples += 1
            self._candidate_latency += elapsed
            if live_seconds is not None:
                self._live_latency += float(live_seconds)
            agree = bool(
                np.asarray(shadow_prediction == live_prediction).all()
            )
            if agree:
                self._agree += 1
            if label is not None:
                self._labeled += 1
                if np.asarray(live_prediction == label).all():
                    self._live_correct += 1
                if np.asarray(shadow_prediction == label).all():
                    self._candidate_correct += 1
            self.metrics.counter("shadow/mirrored_total").inc()
            if agree:
                self.metrics.counter("shadow/agreements_total").inc()
            self.metrics.histogram("shadow/candidate_seconds").observe(elapsed)
            span.set_attribute("agree", agree)
            return shadow_prediction

    # ------------------------------------------------------------------
    def report(self) -> Optional[ShadowReport]:
        """Summarize the current mirror window (``None`` if empty)."""
        if self._candidate_version is None or self._samples == 0:
            return None
        labeled = self._labeled
        return ShadowReport(
            candidate_version=self._candidate_version,
            live_version=self.registry.active_version(self.name) or "",
            samples=self._samples,
            agreement=self._agree / self._samples,
            live_accuracy=(
                self._live_correct / labeled if labeled else None
            ),
            candidate_accuracy=(
                self._candidate_correct / labeled if labeled else None
            ),
            live_latency_mean=(
                self._live_latency / self._samples if self._samples else 0.0
            ),
            candidate_latency_mean=(
                self._candidate_latency / self._samples
                if self._samples
                else 0.0
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ShadowEvaluator(name={self.name!r}, "
            f"candidate={self._candidate_version!r}, "
            f"samples={self._samples}, fraction={self.fraction})"
        )
