"""Synthetic labeled request stream with a controllable distribution shift.

The continuous-learning benchmark needs traffic whose ground truth
*changes* mid-run: a separable logistic task whose true weight vector
flips sign at a chosen batch index, so a model trained before the drift
scores near chance after it — until the online loop retrains, publishes
and promotes a candidate.  :class:`DriftStream` generates exactly that,
deterministically (seeded via :func:`repro.rng.spawn`), so every run of
the benchmark and the CI smoke replays the same stream.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..rng import REPRO_DEFAULT_SEED, spawn

__all__ = ["DriftStream"]

#: Component key namespacing this module's generators under `spawn`
#: (sub-keys: 0 = true weights, 1 = features/noise, 2 = holdouts).
_STREAM_KEY = 31


class DriftStream:
    """Seeded stream of ``(x, y)`` mini-batches with optional drift.

    Labels follow a noiseless linear rule ``y = [x @ w_true > 0]``; at
    batch index ``drift_at`` the true weights flip sign, inverting
    every label decision — the most adversarial shift a linear model
    can face, since the pre-drift optimum is the post-drift pessimum.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    batch_size:
        Rows per generated batch.
    drift_at:
        Batch index at which the flip happens (``None``: stationary).
    flip_fraction:
        Fraction of label noise: each label flips independently with
        this probability (0.0 keeps the task noiseless).
    seed:
        Root seed for the feature/noise streams.
    """

    def __init__(
        self,
        n_features: int = 16,
        batch_size: int = 32,
        drift_at: Optional[int] = None,
        flip_fraction: float = 0.0,
        seed: int = REPRO_DEFAULT_SEED,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if drift_at is not None and drift_at < 0:
            raise ValueError(f"drift_at must be >= 0, got {drift_at}")
        if not 0.0 <= flip_fraction < 0.5:
            raise ValueError(
                f"flip_fraction must be in [0, 0.5), got {flip_fraction}"
            )
        self.n_features = int(n_features)
        self.batch_size = int(batch_size)
        self.drift_at = drift_at
        self.flip_fraction = float(flip_fraction)
        self.seed = int(seed)
        weights_rng = spawn(seed, _STREAM_KEY, 0)
        self._w_before = weights_rng.normal(0.0, 1.0, size=self.n_features)
        self._w_after = -self._w_before
        self._data_rng = spawn(seed, _STREAM_KEY, 1)
        self._batch_index = 0

    # ------------------------------------------------------------------
    def true_weights(self, batch_index: int) -> np.ndarray:
        """Ground-truth weights governing labels at ``batch_index``."""
        if self.drift_at is not None and batch_index >= self.drift_at:
            return self._w_after
        return self._w_before

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the next ``(x, y)`` mini-batch and advance."""
        w = self.true_weights(self._batch_index)
        x = self._data_rng.normal(0.0, 1.0, size=(self.batch_size, self.n_features))
        y = (x @ w > 0.0).astype(np.int64)
        if self.flip_fraction > 0.0:
            flips = self._data_rng.random(self.batch_size) < self.flip_fraction
            y = np.where(flips, 1 - y, y)
        self._batch_index += 1
        return x, y

    def batches(self, n: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield the next ``n`` batches."""
        for _ in range(n):
            yield self.next_batch()

    def holdout(
        self, n_samples: int, batch_index: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A fresh evaluation set from the regime at ``batch_index``.

        Drawn from an independent generator so it never perturbs the
        stream itself; defaults to the *current* regime.
        """
        index = self._batch_index if batch_index is None else int(batch_index)
        w = self.true_weights(index)
        rng = spawn(self.seed, _STREAM_KEY, 2, index)
        x = rng.normal(0.0, 1.0, size=(int(n_samples), self.n_features))
        y = (x @ w > 0.0).astype(np.int64)
        return x, y

    @property
    def batch_index(self) -> int:
        """Index of the next batch to be generated."""
        return self._batch_index

    def __repr__(self) -> str:
        return (
            f"DriftStream(n_features={self.n_features}, "
            f"batch_size={self.batch_size}, drift_at={self.drift_at}, "
            f"at_batch={self._batch_index})"
        )
