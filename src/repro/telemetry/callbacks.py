"""Built-in callbacks: run logging, GM-state recording, early stopping,
checkpointing and progress reporting.

These cover the observability needs of the paper's evaluation section:

- :class:`JsonlRunLogger` writes a structured, append-only event log
  (one JSON object per line) from which a run can be reconstructed —
  per-epoch losses, per-phase E-/M-step timings and the learned GM
  state, per-EM-step activity.
- :class:`GMStateRecorder` snapshots each layer's ``pi``/``lambda`` and
  effective component count per epoch, reproducing the Fig. 3
  trajectories without touching the training loop.
- :class:`EarlyStopping` generalizes the trainer's built-in
  convergence test to any monitored quantity.
- :class:`CheckpointCallback` persists model weights through
  :mod:`repro.nn.checkpoint`.
- :class:`ProgressReporter` prints a human-readable line per epoch.
- :class:`MetricsSummary` prints the final phase-timer/counter summary
  (what ``python -m repro --log-metrics`` shows).
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Any, Dict, List, Optional

import numpy as np

from .events import BatchInfo, Callback, EMStepInfo, RunContext

__all__ = [
    "JsonlRunLogger",
    "GMStateRecorder",
    "EarlyStopping",
    "CheckpointCallback",
    "ProgressReporter",
    "MetricsSummary",
]


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class JsonlRunLogger(Callback):
    """Structured run log: one JSON object per line.

    Event kinds (all carry ``run`` — a 0-based index incremented on each
    ``on_train_start``, so sweeps sharing one logger stay separable —
    and ``timestamp`` from the injectable wall clock):

    - ``train_start``: run shape (samples, batch size, epoch budget).
    - ``em_step``: which parameter refreshed its E- and/or M-step at
      which iteration (suppressed with ``log_em_steps=False``).
    - ``epoch_end``: loss, validation accuracy, wall-clock seconds,
      cumulative per-phase timer totals and each adaptive regularizer's
      state — enough to recover the Fig. 3 ``pi``/``lambda`` trajectory
      and the Figs. 5-7 per-phase costs from the log alone.
    - ``train_end``: epoch count and the full metrics snapshot.

    Timing and timestamp fields are the only nondeterministic content:
    two seeded runs produce identical logs modulo the keys
    ``timestamp``, ``elapsed_seconds``, ``cumulative_seconds``,
    ``total_seconds``, ``phases`` and ``metrics`` (see
    ``tests/telemetry/test_determinism.py``).

    The log is **crash-safe**: each record is serialized into one
    ``\\n``-terminated string and handed to the stream in a single
    write call, so a killed run leaves a parseable prefix of complete
    lines, never a truncated JSON fragment.  ``flush_every`` sets the
    durability/throughput trade: 1 (the default) flushes after every
    record; N buffers complete lines and flushes every N records and on
    :meth:`close`.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        wall_clock=time.time,
        log_em_steps: bool = True,
        log_batches: bool = False,
        flush_every: int = 1,
    ):
        if (path is None) == (stream is None):
            raise ValueError("provide exactly one of path= or stream=")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._own_stream = stream is None
        self._stream: Optional[IO[str]] = (
            open(path, "w", encoding="utf-8") if path is not None else stream
        )
        self.path = path
        self.wall_clock = wall_clock
        self.log_em_steps = bool(log_em_steps)
        self.log_batches = bool(log_batches)
        self.flush_every = int(flush_every)
        self._pending: List[str] = []
        self._run = -1

    # -- plumbing -----------------------------------------------------
    def _emit(self, event: Dict[str, Any]) -> None:
        if self._stream is None:
            raise RuntimeError("JsonlRunLogger is closed")
        event = dict(event)
        event["timestamp"] = self.wall_clock()
        line = json.dumps(_jsonable(event), sort_keys=True) + "\n"
        self._pending.append(line)
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write out buffered records (each already a complete line)."""
        if self._pending and self._stream is not None:
            self._stream.write("".join(self._pending))
            self._stream.flush()
            self._pending.clear()

    def close(self) -> None:
        """Flush and close the stream (only if this logger opened it)."""
        self.flush()
        if self._own_stream and self._stream is not None:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "JsonlRunLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @staticmethod
    def _gm_states(ctx: RunContext) -> Dict[str, Dict[str, Any]]:
        states = {}
        for param in ctx.parameters:
            if param.regularizer is None:
                continue
            state = param.regularizer.telemetry_state()
            if state:
                states[param.name] = state
        return states

    # -- hooks --------------------------------------------------------
    def on_train_start(self, ctx: RunContext) -> None:
        """Emit a ``train_start`` event and bump the run counter."""
        self._run += 1
        self._emit({
            "event": "train_start",
            "run": self._run,
            "n_samples": ctx.n_samples,
            "batch_size": ctx.batch_size,
            "max_epochs": ctx.max_epochs,
            "n_parameters": len(ctx.parameters),
            **({"extra": ctx.extra} if ctx.extra else {}),
        })

    def on_batch_end(self, info: BatchInfo, ctx: RunContext) -> None:
        """Emit a ``batch_end`` event (suppressed unless ``log_batches``)."""
        if not self.log_batches:
            return
        self._emit({
            "event": "batch_end",
            "run": self._run,
            "epoch": info.epoch,
            "batch_index": info.batch_index,
            "iteration": info.iteration,
            "size": info.size,
            "loss": info.loss,
        })

    def on_em_step(self, info: EMStepInfo, ctx: RunContext) -> None:
        """Emit an ``em_step`` event (suppressed unless ``log_em_steps``)."""
        if not self.log_em_steps:
            return
        self._emit({
            "event": "em_step",
            "run": self._run,
            "epoch": info.epoch,
            "iteration": info.iteration,
            "param": info.param_name,
            "estep": info.did_estep,
            "mstep": info.did_mstep,
        })

    def on_epoch_end(self, record, ctx: RunContext) -> None:
        """Emit an ``epoch_end`` event with phase timings and GM state."""
        self._emit({
            "event": "epoch_end",
            "run": self._run,
            "epoch": record.epoch,
            "train_loss": record.train_loss,
            "val_accuracy": record.val_accuracy,
            "elapsed_seconds": record.elapsed_seconds,
            "cumulative_seconds": record.cumulative_seconds,
            "phases": ctx.metrics.phase_seconds(),
            "gm_state": self._gm_states(ctx),
        })

    def on_train_end(self, history, ctx: RunContext) -> None:
        """Emit a ``train_end`` event with the full metrics snapshot."""
        self._emit({
            "event": "train_end",
            "run": self._run,
            "epochs_run": len(history.records),
            "converged_epoch": history.converged_epoch,
            "total_seconds": history.total_seconds,
            "metrics": ctx.metrics.snapshot(),
        })


class GMStateRecorder(Callback):
    """Per-epoch snapshots of each adaptive regularizer's GM state.

    ``trajectory`` maps parameter name to a list of snapshot dicts
    (``epoch``, ``pi``, ``lam``, ``n_components``, EM counters); epoch
    ``-1`` is the pre-training initialization, so the recorded series
    is exactly a Fig. 3 trajectory: how the mixture evolves from its
    ``K = 4`` initialization toward the 1-2 surviving components of
    Tables IV/V.
    """

    def __init__(self):
        self.trajectory: Dict[str, List[Dict[str, Any]]] = {}

    def _record(self, epoch: int, ctx: RunContext) -> None:
        for param in ctx.parameters:
            if param.regularizer is None:
                continue
            state = param.regularizer.telemetry_state()
            if not state or "pi" not in state:
                continue
            snapshot = {"epoch": epoch}
            snapshot.update(_jsonable(state))
            self.trajectory.setdefault(param.name, []).append(snapshot)

    def on_train_start(self, ctx: RunContext) -> None:
        """Record the pre-training GM state as epoch ``-1``."""
        self._record(-1, ctx)

    def on_epoch_end(self, record, ctx: RunContext) -> None:
        """Append this epoch's GM snapshot to the trajectory."""
        self._record(record.epoch, ctx)

    def pi_series(self, param_name: str) -> List[List[float]]:
        """The recorded ``pi`` vectors for one parameter, in epoch order."""
        return [snap["pi"] for snap in self.trajectory[param_name]]

    def lam_series(self, param_name: str) -> List[List[float]]:
        """The recorded ``lambda`` vectors for one parameter, in epoch order."""
        return [snap["lam"] for snap in self.trajectory[param_name]]

    def as_dict(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-serializable copy of the full trajectory."""
        return {name: list(snaps) for name, snaps in self.trajectory.items()}


class EarlyStopping(Callback):
    """Stop training when a monitored quantity stops improving.

    Parameters
    ----------
    monitor:
        ``"train_loss"`` (minimized) or ``"val_accuracy"`` (maximized).
    min_delta:
        Smallest change in the monitored value that counts as an
        improvement.
    patience:
        Number of consecutive non-improving epochs tolerated before
        :meth:`RunContext.request_stop` is called.
    """

    _MODES = {"train_loss": -1.0, "val_accuracy": +1.0}

    def __init__(self, monitor: str = "train_loss", min_delta: float = 0.0,
                 patience: int = 3):
        if monitor not in self._MODES:
            raise ValueError(
                f"monitor must be one of {sorted(self._MODES)}, got {monitor!r}"
            )
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.monitor = monitor
        self.min_delta = float(min_delta)
        self.patience = int(patience)
        self._sign = self._MODES[monitor]
        self.best: Optional[float] = None
        self.stopped_epoch: Optional[int] = None
        self._stall = 0

    def on_train_start(self, ctx: RunContext) -> None:
        """Reset the best-so-far/stall state (the callback is reusable)."""
        self.best = None
        self.stopped_epoch = None
        self._stall = 0

    def on_epoch_end(self, record, ctx: RunContext) -> None:
        """Track the monitored value; request a stop after ``patience`` stalls."""
        value = getattr(record, self.monitor)
        if value is None:
            raise ValueError(
                f"EarlyStopping monitors {self.monitor!r} but the epoch "
                "record has no such value (pass x_val/y_val to fit?)"
            )
        value = float(value)
        if self.best is None or self._sign * (value - self.best) > self.min_delta:
            self.best = value
            self._stall = 0
            return
        self._stall += 1
        if self._stall >= self.patience:
            self.stopped_epoch = record.epoch
            ctx.request_stop()


class CheckpointCallback(Callback):
    """Persist model weights through :mod:`repro.nn.checkpoint`.

    Parameters
    ----------
    path_template:
        Target path; may reference ``{epoch}`` (e.g.
        ``"run/ckpt_{epoch:03d}.npz"``).  Without a placeholder the same
        file is overwritten, keeping only the most recent checkpoint.
    every:
        Save every ``every`` epochs (final epoch always saved).
    save_best_only:
        When True, save only when ``monitor`` improves.
    monitor:
        ``"train_loss"`` or ``"val_accuracy"``; used by
        ``save_best_only``.
    """

    def __init__(self, path_template: str, every: int = 1,
                 save_best_only: bool = False, monitor: str = "train_loss"):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if monitor not in EarlyStopping._MODES:
            raise ValueError(
                f"monitor must be one of {sorted(EarlyStopping._MODES)}, "
                f"got {monitor!r}"
            )
        self.path_template = path_template
        self.every = int(every)
        self.save_best_only = bool(save_best_only)
        self.monitor = monitor
        self._sign = EarlyStopping._MODES[monitor]
        self.best: Optional[float] = None
        self.saved_paths: List[str] = []

    def _save(self, epoch: int, ctx: RunContext) -> None:
        from ..nn.checkpoint import save_network  # lazy: avoids import cycle

        path = self.path_template.format(epoch=epoch)
        save_network(ctx.model, path)
        self.saved_paths.append(path)

    def on_epoch_end(self, record, ctx: RunContext) -> None:
        """Save per the ``every`` / ``save_best_only`` schedule."""
        if self.save_best_only:
            value = getattr(record, self.monitor)
            if value is None:
                raise ValueError(
                    f"CheckpointCallback monitors {self.monitor!r} but the "
                    "epoch record has no such value"
                )
            value = float(value)
            if self.best is not None and self._sign * (value - self.best) <= 0:
                return
            self.best = value
        elif (record.epoch + 1) % self.every != 0:
            return
        self._save(record.epoch, ctx)

    def on_train_end(self, history, ctx: RunContext) -> None:
        """Ensure the final epoch is persisted (unless best-only mode)."""
        if self.save_best_only or not history.records:
            return
        last = history.records[-1].epoch
        if (last + 1) % self.every != 0:  # not already saved above
            self._save(last, ctx)


class ProgressReporter(Callback):
    """Human-readable one-line-per-epoch progress (default: stderr)."""

    def __init__(self, stream: Optional[IO[str]] = None, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.stream = stream
        self.every = int(every)

    def _out(self) -> IO[str]:
        return self.stream if self.stream is not None else sys.stderr

    def on_epoch_end(self, record, ctx: RunContext) -> None:
        """Print one progress line every ``every`` epochs."""
        if (record.epoch + 1) % self.every != 0:
            return
        val = (
            f" val_acc={record.val_accuracy:.4f}"
            if record.val_accuracy is not None else ""
        )
        print(
            f"epoch {record.epoch + 1}/{ctx.max_epochs} "
            f"loss={record.train_loss:.6f}{val} "
            f"({record.elapsed_seconds:.2f}s)",
            file=self._out(),
        )

    def on_train_end(self, history, ctx: RunContext) -> None:
        """Print the closing summary line (epochs run / convergence)."""
        tag = (
            f"converged at epoch {history.converged_epoch}"
            if history.converged_epoch is not None
            else f"{len(history.records)} epochs"
        )
        print(f"training done: {tag}, {history.total_seconds:.2f}s total",
              file=self._out())


class MetricsSummary(Callback):
    """Print the per-phase timer/counter summary when training ends."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream

    def on_train_end(self, history, ctx: RunContext) -> None:
        """Print phase shares, counters and gauges from the run's metrics."""
        out = self.stream if self.stream is not None else sys.stderr
        snapshot = ctx.metrics.snapshot()
        print("--- metrics ---", file=out)
        phases = ctx.metrics.phase_seconds()
        total = sum(phases.values())
        for name, seconds in sorted(phases.items()):
            share = 100.0 * seconds / total if total > 0 else 0.0
            print(f"phase/{name:8s} {seconds:10.4f}s  {share:5.1f}%", file=out)
        for name, value in sorted(snapshot["counters"].items()):
            print(f"counter {name} = {value:g}", file=out)
        for name, value in sorted(snapshot["gauges"].items()):
            if value is not None:
                print(f"gauge {name} = {value:g}", file=out)
