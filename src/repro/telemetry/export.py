"""Bench exporter: serialize a run's metrics to ``BENCH_*.json`` dicts.

The benchmark harness persists each reproduced figure/table as a small
JSON document so successive perf PRs can diff per-phase costs instead of
only end-to-end wall-clock.  The shape is deliberately flat and stable::

    {
      "bench": "fig5_im50",
      "schema_version": 1,
      "metrics": {"counters": ..., "gauges": ..., "histograms": ..., "timers": ...},
      "phases": {"estep": 1.23, "grad": 4.56, ...},
      "history": {"losses": [...], "cumulative_seconds": [...],
                  "val_accuracy": [...], "converged_epoch": null},
      "extra": {...}
    }
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from .callbacks import _jsonable
from .metrics import MetricsRegistry

__all__ = ["bench_payload", "bench_filename", "write_bench_json"]

SCHEMA_VERSION = 1


def bench_payload(
    name: str,
    metrics: Optional[MetricsRegistry] = None,
    history=None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the ``BENCH_*.json``-shaped dict for one benchmark run.

    Parameters
    ----------
    name:
        Benchmark identifier (becomes the ``bench`` field and the
        default filename stem).
    metrics:
        The run's registry; ``metrics.snapshot()`` and the ``phase/``
        timer totals are embedded.  A plain snapshot dict (as stored on
        :class:`~repro.experiments.deep.DeepResult`) is also accepted.
    history:
        Optional :class:`~repro.optim.trainer.TrainingHistory`; its
        per-epoch series are embedded.
    extra:
        Free-form benchmark-specific fields (e.g. the swept ``Im``).
    """
    payload: Dict[str, Any] = {"bench": name, "schema_version": SCHEMA_VERSION}
    if isinstance(metrics, MetricsRegistry):
        payload["metrics"] = metrics.snapshot()
        payload["phases"] = metrics.phase_seconds()
    elif isinstance(metrics, dict):
        payload["metrics"] = metrics
        timers = metrics.get("timers", {})
        payload["phases"] = {
            n[len("phase/"):]: t["total_seconds"]
            for n, t in timers.items() if n.startswith("phase/")
        }
    elif metrics is not None:
        raise TypeError(
            f"metrics must be a MetricsRegistry or snapshot dict, "
            f"got {type(metrics).__name__}"
        )
    if history is not None:
        payload["history"] = {
            "losses": [r.train_loss for r in history.records],
            "cumulative_seconds": [r.cumulative_seconds for r in history.records],
            "val_accuracy": [r.val_accuracy for r in history.records],
            "converged_epoch": history.converged_epoch,
        }
    if extra:
        payload["extra"] = dict(extra)
    return _jsonable(payload)


def bench_filename(name: str, directory: str = ".") -> str:
    """The canonical ``BENCH_<name>.json`` path for a benchmark."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    return os.path.join(directory, f"BENCH_{safe}.json")


def write_bench_json(path: str, payload: Dict[str, Any]) -> str:
    """Write ``payload`` (from :func:`bench_payload`) to ``path``."""
    if "bench" not in payload:
        raise ValueError("payload is missing the 'bench' field")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
