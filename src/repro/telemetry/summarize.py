"""Span-log aggregation: per-operation timing tables and critical paths.

``repro trace summarize`` feeds a JSONL span log (written by
:class:`~repro.telemetry.trace.JsonlSpanExporter`) through this module
to answer the two incident questions aggregates cannot:

- **where does time go, structurally?** — per span *name*: how many
  spans, total time, **self time** (own duration minus the children
  nested inside it — the flamegraph decomposition) and p50/p99 of the
  individual durations;
- **what was the critical path of one request?** — the chain of
  longest-duration children from a trace's root span down to a leaf,
  rendered as an indented tree with each span's events (retry attempts,
  breaker transitions, fallbacks) inline.

Everything operates on plain span dicts, so the same functions serve
the CLI, the tests, and ad-hoc notebook use on a pulled span log.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .trace import spans_by_trace

__all__ = [
    "OpSummary",
    "summarize_spans",
    "format_summary_table",
    "critical_path",
    "format_trace_tree",
    "longest_trace",
]


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending sequence (empty -> 0.0)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class OpSummary:
    """Aggregate timing of every span sharing one name."""

    __slots__ = ("name", "count", "total", "self_total", "durations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_total = 0.0
        self.durations: List[float] = []

    def as_dict(self) -> Dict[str, Any]:
        """Summary row: name, count, total/self seconds, p50/p99."""
        ordered = sorted(self.durations)
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total,
            "self_seconds": self.self_total,
            "p50_seconds": _quantile(ordered, 0.50),
            "p99_seconds": _quantile(ordered, 0.99),
        }


def _children_index(
    spans: Sequence[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """``parent span_id -> children`` within one trace."""
    table: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        table.setdefault(span.get("parent_id"), []).append(span)
    return table


def summarize_spans(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-name aggregation across every trace in ``spans``.

    Self time is ``duration - sum(direct children durations)``, clamped
    at zero (synthetic phase spans may legitimately overlap their
    siblings, and clock skew across threads can push a child past its
    parent by microseconds).
    """
    ops: Dict[str, OpSummary] = {}
    for trace_spans in spans_by_trace(list(spans)).values():
        children = _children_index(trace_spans)
        for span in trace_spans:
            op = ops.setdefault(span["name"], OpSummary(span["name"]))
            duration = float(span.get("duration") or 0.0)
            child_total = sum(
                float(child.get("duration") or 0.0)
                for child in children.get(span["span_id"], ())
            )
            op.count += 1
            op.total += duration
            op.self_total += max(0.0, duration - child_total)
            op.durations.append(duration)
    summaries = [op.as_dict() for op in ops.values()]
    summaries.sort(key=lambda row: (-row["self_seconds"], row["name"]))
    return summaries


def format_summary_table(summaries: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table of :func:`summarize_spans` rows."""
    header = (
        f"{'span name':32s} {'count':>6s} {'total_s':>10s} "
        f"{'self_s':>10s} {'p50_ms':>9s} {'p99_ms':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in summaries:
        lines.append(
            f"{row['name'][:32]:32s} {row['count']:6d} "
            f"{row['total_seconds']:10.4f} {row['self_seconds']:10.4f} "
            f"{row['p50_seconds'] * 1e3:9.3f} {row['p99_seconds'] * 1e3:9.3f}"
        )
    return "\n".join(lines)


def longest_trace(spans: Sequence[Dict[str, Any]]) -> Optional[str]:
    """Trace id whose root span has the largest duration (ties: first)."""
    best_id: Optional[str] = None
    best_duration = -1.0
    for trace_id, trace_spans in spans_by_trace(list(spans)).items():
        for span in trace_spans:
            if span.get("parent_id") is None:
                duration = float(span.get("duration") or 0.0)
                if duration > best_duration:
                    best_duration = duration
                    best_id = trace_id
    return best_id


def critical_path(
    spans: Sequence[Dict[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """Root-to-leaf chain of longest-duration children for one trace."""
    trace_spans = [s for s in spans if s["trace_id"] == trace_id]
    children = _children_index(trace_spans)
    roots = children.get(None, [])
    if not roots:
        return []
    node = max(roots, key=lambda s: float(s.get("duration") or 0.0))
    path = [node]
    while True:
        kids = children.get(node["span_id"], [])
        if not kids:
            return path
        node = max(kids, key=lambda s: float(s.get("duration") or 0.0))
        path.append(node)


def _render_span_line(
    span: Dict[str, Any], depth: int, on_path: bool
) -> List[str]:
    marker = "*" if on_path else " "
    indent = "  " * depth
    status = span.get("status", "ok")
    flag = "" if status == "ok" else f"  [{status.upper()}]"
    lines = [
        f"{marker} {indent}{span['name']}  "
        f"{float(span.get('duration') or 0.0) * 1e3:.3f}ms{flag}"
    ]
    for event in span.get("events", ()):
        detail = " ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("name", "at")
        )
        lines.append(
            f"  {indent}  - {event['name']}" + (f" ({detail})" if detail else "")
        )
    return lines


def format_trace_tree(
    spans: Sequence[Dict[str, Any]], trace_id: str
) -> str:
    """Indented span tree of one trace, critical path starred.

    Children render in start order; each span's events appear beneath
    it, so a chaos request reads as a narrative: enqueue → dispatch →
    retry → stale fallback → rescue.
    """
    trace_spans = [s for s in spans if s["trace_id"] == trace_id]
    if not trace_spans:
        return f"(no spans for trace {trace_id})"
    children = _children_index(trace_spans)
    for siblings in children.values():
        siblings.sort(key=lambda s: float(s.get("start") or 0.0))
    path_ids = {span["span_id"] for span in critical_path(spans, trace_id)}
    lines = [f"trace {trace_id} ({len(trace_spans)} spans; * = critical path)"]

    def walk(span: Dict[str, Any], depth: int) -> None:
        lines.extend(
            _render_span_line(span, depth, span["span_id"] in path_ids)
        )
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
