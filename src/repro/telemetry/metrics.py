"""Metrics registry: counters, gauges, histograms and phase timers.

The paper's headline results are *timing* claims — the lazy-update
schedule (``Im``, ``Ig``, warm-up ``E``) cuts the regularizer overhead
roughly 4x (Figs. 5-7) — so the training loop needs a way to attribute
wall-clock cost to the four phases of Algorithm 2 (E-step, gradient,
M-step, SGD apply) instead of reporting one opaque per-epoch number.

:class:`MetricsRegistry` is a small, dependency-free instrument panel:

- :class:`Counter` — monotonically increasing totals (batches seen,
  EM refreshes performed).
- :class:`Gauge` — last-value-wins observations (current learning
  rate, effective GM component count).
- :class:`Histogram` — full sample distributions with summary
  statistics (per-batch losses, per-epoch times).
- :class:`PhaseTimer` — named accumulating stopwatches used as context
  managers around the Algorithm 2 phases.

The registry takes an **injectable clock** (default
:func:`time.perf_counter`) shared by all its timers, so tests can
substitute a fake clock and assert exact timings instead of sleeping.
All state is serializable through :meth:`MetricsRegistry.snapshot`,
which is what the JSONL run logs and the ``BENCH_*.json`` exporter
consume.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
]

Clock = Callable[[], float]


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        """Zero the count (run-boundary housekeeping, e.g. between passes)."""
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value-wins observation."""

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record ``value`` as the current observation (replaces the last)."""
        self.value = float(value)

    def reset(self) -> None:
        """Clear the observation back to "never set" (``None``)."""
        self.value = None

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A sample distribution with summary statistics.

    Samples are kept in full (these are per-epoch/per-batch series of at
    most a few thousand points, not production traffic), so exact
    quantiles are available.
    """

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Append one sample to the distribution."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of samples observed so far."""
        return len(self.values)

    @property
    def sum(self) -> float:
        """Sum of all observed samples (0.0 when empty)."""
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples; raises on an empty histogram."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.sum / self.count

    @property
    def min(self) -> float:
        """Smallest observed sample; raises on an empty histogram."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return min(self.values)

    @property
    def max(self) -> float:
        """Largest observed sample; raises on an empty histogram."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return max(self.values)

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (nearest-rank) of the observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def reset(self) -> None:
        """Drop every sample (the instrument itself stays registered)."""
        self.values = []

    def summary(self) -> Dict[str, float]:
        """Summary statistics dict (``{}`` when no samples yet)."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class PhaseTimer:
    """An accumulating stopwatch for one named phase.

    Used as a context manager around each Algorithm 2 phase::

        with registry.timer("phase/estep"):
            regularizer.prepare(w, iteration)

    ``total_seconds`` accumulates across entries; ``count`` is the
    number of completed timed sections.  The clock is injected by the
    owning registry so fake clocks make timing tests deterministic.

    The stopwatch is **thread-safe**: each thread times its own span
    (start stamps are tracked per thread id under the shared lock) and
    the accumulated totals are updated under the same lock, so
    concurrent sections — e.g. two serve workers inside
    ``serve/dispatch_seconds`` at once — each contribute their full
    duration.  Misuse stays loud: starting a timer twice *on the same
    thread* (or stopping one that thread never started) raises.  The
    one sanctioned silent path is a :meth:`stop` that lands after a
    :meth:`reset` discarded the span (see :meth:`reset`) — that span
    belongs to the zeroed window and contributes 0.0.
    """

    def __init__(self, name: str, clock: Clock):
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self.total_seconds = 0.0
        self.count = 0
        self.last_seconds = 0.0
        #: thread id -> start stamp of that thread's in-flight span.
        self._open: Dict[int, float] = {}
        #: thread ids whose in-flight span a reset() discarded; their
        #: eventual stop() is absorbed instead of raising or polluting
        #: the fresh accumulation window.
        self._discarded: set[int] = set()

    def start(self) -> None:
        """Stamp this thread's span start (one running span per thread)."""
        tid = threading.get_ident()
        stamp = self._clock()
        with self._lock:
            if tid in self._open:
                raise RuntimeError(f"timer {self.name!r} is already running")
            self._discarded.discard(tid)
            self._open[tid] = stamp

    def stop(self) -> float:
        """Stop the stopwatch; returns and accumulates the elapsed span.

        Returns 0.0 without accumulating when this thread's span was
        discarded by an intervening :meth:`reset`.
        """
        tid = threading.get_ident()
        now = self._clock()
        with self._lock:
            started = self._open.pop(tid, None)
            if started is None:
                if tid in self._discarded:
                    self._discarded.discard(tid)
                    return 0.0
                raise RuntimeError(f"timer {self.name!r} was not started")
            elapsed = now - started
            self.total_seconds += elapsed
            self.last_seconds = elapsed
            self.count += 1
        return elapsed

    def __enter__(self) -> "PhaseTimer":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self.stop()

    @property
    def mean_seconds(self) -> float:
        """Mean duration per completed span (0.0 before any complete)."""
        with self._lock:
            if not self.count:
                return 0.0
            return self.total_seconds / self.count

    def reset(self) -> None:
        """Zero the totals and discard **every** thread's open span.

        Threads mid-span when the reset lands get their start stamps
        discarded — their later :meth:`stop` returns 0.0 instead of
        leaking a pre-reset duration into the new window (previously
        only the *calling* thread's open span was cleared, so a worker
        straddling a reset silently polluted the next accumulation).
        """
        with self._lock:
            self.total_seconds = 0.0
            self.count = 0
            self.last_seconds = 0.0
            self._discarded.update(self._open)
            self._open.clear()

    def summary(self) -> Dict[str, float]:
        """Snapshot dict: completed-span count, total and mean seconds.

        All three values come from one locked read so a ``stop()``
        landing mid-snapshot can never produce a mean that disagrees
        with its own count/total pair.
        """
        with self._lock:
            count = self.count
            total = self.total_seconds
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
        }

    def __repr__(self) -> str:
        with self._lock:
            count, total = self.count, self.total_seconds
        return (
            f"PhaseTimer({self.name!r}, count={count}, "
            f"total_seconds={total:.6f})"
        )


class MetricsRegistry:
    """Named counters, gauges, histograms and phase timers.

    Instruments are created on first access and shared afterwards, so
    ``registry.timer("phase/estep")`` in the trainer and in a callback
    refer to the same accumulating stopwatch.  A name belongs to exactly
    one instrument kind; reusing it with a different kind raises.
    """

    def __init__(self, clock: Clock = time.perf_counter):
        self.clock = clock
        # Guards the name->instrument maps only; instruments synchronize
        # (or deliberately don't) their own state.  Without it two
        # threads asking for the same new gauge can each create one and
        # then increment different objects.
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, PhaseTimer] = {}

    # -- instrument accessors -----------------------------------------
    def counter(self, name: str) -> Counter:
        """The :class:`Counter` named ``name`` (created on first access)."""
        with self._lock:
            self._check_kind_locked(name, self._counters)
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The :class:`Gauge` named ``name`` (created on first access)."""
        with self._lock:
            self._check_kind_locked(name, self._gauges)
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        """The :class:`Histogram` named ``name`` (created on first access)."""
        with self._lock:
            self._check_kind_locked(name, self._histograms)
            return self._histograms.setdefault(name, Histogram(name))

    def timer(self, name: str) -> PhaseTimer:
        """The :class:`PhaseTimer` named ``name``, on the shared clock."""
        with self._lock:
            self._check_kind_locked(name, self._timers)
            return self._timers.setdefault(name, PhaseTimer(name, self.clock))

    def _check_kind_locked(self, name: str, expected: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms,
                       self._timers):
            if family is not expected and name in family:
                raise TypeError(
                    f"metric {name!r} already registered as a different kind"
                )

    def _copy_families(self) -> List[Dict[str, object]]:
        """Shallow copies of every instrument map, under one locked read.

        Instrument methods are then called *outside* the registry lock
        so the lock-order graph stays a star, not a chain (PhaseTimer
        has its own lock).
        """
        with self._lock:
            return [
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
                dict(self._timers),
            ]

    # -- lifecycle ----------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        for family in self._copy_families():
            for instrument in family.values():
                instrument.reset()

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serializable dump of every instrument's current state."""
        counters, gauges, histograms, timers = self._copy_families()
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
            "timers": {n: t.summary() for n, t in sorted(timers.items())},
        }

    def phase_seconds(self, prefix: str = "phase/") -> Dict[str, float]:
        """``{phase_name: total_seconds}`` for timers under ``prefix``.

        This is the series the Figs. 5-7 benchmarks read: per-phase
        E-step/M-step cost, directly, instead of inferring it from
        whole-epoch wall-clock differences.
        """
        _counters, _gauges, _histograms, timers = self._copy_families()
        return {
            name[len(prefix):]: timer.summary()["total_seconds"]
            for name, timer in sorted(timers.items())
            if name.startswith(prefix)
        }

    def __repr__(self) -> str:
        counters, gauges, histograms, timers = self._copy_families()
        return (
            f"MetricsRegistry(counters={len(counters)}, "
            f"gauges={len(gauges)}, histograms={len(histograms)}, "
            f"timers={len(timers)})"
        )
