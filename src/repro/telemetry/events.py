"""Event-driven callback framework for the Algorithm 1/2 training loop.

The trainer emits a fixed sequence of events without changing the
Algorithm 2 ordering (E-step, gradient, M-step, SGD step)::

    on_train_start
      on_epoch_start
        on_batch_end        (once per mini-batch, after the SGD step)
        on_em_step          (only when an E-/M-step actually executed)
      on_epoch_end
    on_train_end

:class:`Callback` is the no-op base class — subclasses override only the
hooks they care about.  :class:`CallbackList` fans each event out to
every registered callback in order and precomputes which hooks are
actually overridden, so a hot loop can skip building event payloads
nobody listens to (``on_em_step`` fires per parameter per iteration
during eager epochs, which would otherwise tax exactly the hot path the
lazy schedule exists to relieve).

All payloads are read-only facts about what already happened; the one
mutation channel is :meth:`RunContext.request_stop`, which asks the
trainer to stop at the end of the current epoch (used by
:class:`~repro.telemetry.callbacks.EarlyStopping`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # avoid a circular import with optim.trainer
    from ..optim.trainer import (
        EpochRecord,
        Parameter,
        TrainingHistory,
    )
    from .metrics import MetricsRegistry

__all__ = [
    "RunContext",
    "BatchInfo",
    "EMStepInfo",
    "Callback",
    "CallbackList",
]


@dataclass
class RunContext:
    """Facts about the run, shared with every callback on every event.

    Attributes
    ----------
    model:
        The :class:`~repro.optim.trainer.TrainableModel` being trained.
    parameters:
        The model's :class:`~repro.optim.trainer.Parameter` list
        (name, value, regularizer) — how callbacks reach the GM state.
    metrics:
        The run's :class:`~repro.telemetry.metrics.MetricsRegistry`
        holding the phase timers and counters.
    n_samples, batch_size, max_epochs:
        Static shape of the run.
    extra:
        Free-form annotations (the CLI stores the experiment name here).
    """

    model: Any
    parameters: Sequence["Parameter"]
    metrics: "MetricsRegistry"
    n_samples: int
    batch_size: int
    max_epochs: int
    extra: Dict[str, Any] = field(default_factory=dict)
    stop_requested: bool = False

    def request_stop(self) -> None:
        """Ask the trainer to stop after the current epoch completes."""
        self.stop_requested = True


@dataclass(frozen=True)
class BatchInfo:
    """One completed mini-batch iteration."""

    epoch: int
    batch_index: int
    iteration: int  # global Algorithm 2 iteration counter ``it``
    size: int
    loss: float


@dataclass(frozen=True)
class EMStepInfo:
    """One parameter's EM activity in one iteration.

    Emitted only when the lazy schedule actually fired — ``did_estep``
    means ``g_reg`` was recomputed (``calcRegGrad``), ``did_mstep``
    means ``pi``/``lambda`` were refreshed (``uptGMParam``).  ``state``
    is the regularizer's :meth:`~repro.core.regularizers.Regularizer.telemetry_state`
    snapshot taken *after* the step.
    """

    epoch: int
    iteration: int
    param_name: str
    did_estep: bool
    did_mstep: bool
    state: Dict[str, Any] = field(default_factory=dict)


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    def on_train_start(self, ctx: RunContext) -> None:
        """Called once before the first epoch."""

    def on_epoch_start(self, epoch: int, ctx: RunContext) -> None:
        """Called at the top of each epoch, before any mini-batch."""

    def on_batch_end(self, info: BatchInfo, ctx: RunContext) -> None:
        """Called after each mini-batch's SGD step."""

    def on_em_step(self, info: EMStepInfo, ctx: RunContext) -> None:
        """Called when a parameter's E- and/or M-step actually ran."""

    def on_epoch_end(self, record: "EpochRecord", ctx: RunContext) -> None:
        """Called after each epoch's record (loss, times) is complete."""

    def on_train_end(self, history: "TrainingHistory", ctx: RunContext) -> None:
        """Called once after the last epoch (or early stop)."""


_HOOKS = (
    "on_train_start",
    "on_epoch_start",
    "on_batch_end",
    "on_em_step",
    "on_epoch_end",
    "on_train_end",
)


class CallbackList(Callback):
    """Fans events out to an ordered list of callbacks.

    Also itself a :class:`Callback`, so lists nest.  ``wants_em_step``
    and ``wants_batch_end`` report whether *any* member overrides the
    corresponding hook — the trainer uses them to skip payload
    construction on the per-iteration hot path when nobody listens.
    """

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None):
        self.callbacks: List[Callback] = list(callbacks or ())
        for cb in self.callbacks:
            if not isinstance(cb, Callback):
                raise TypeError(f"not a Callback: {cb!r}")

    def _any_overrides(self, hook: str) -> bool:
        for cb in self.callbacks:
            method = getattr(type(cb), hook, None)
            if isinstance(cb, CallbackList):
                if cb._any_overrides(hook):
                    return True
            elif method is not None and method is not getattr(Callback, hook):
                return True
        return False

    @property
    def wants_em_step(self) -> bool:
        """Whether any member overrides ``on_em_step`` (hot-path gate)."""
        return self._any_overrides("on_em_step")

    @property
    def wants_batch_end(self) -> bool:
        """Whether any member overrides ``on_batch_end`` (hot-path gate)."""
        return self._any_overrides("on_batch_end")

    def __len__(self) -> int:
        return len(self.callbacks)

    def __iter__(self):
        return iter(self.callbacks)

    # -- fan-out ------------------------------------------------------
    def on_train_start(self, ctx: RunContext) -> None:
        """Forward the train-start event to every member, in order."""
        for cb in self.callbacks:
            cb.on_train_start(ctx)

    def on_epoch_start(self, epoch: int, ctx: RunContext) -> None:
        """Forward the epoch-start event to every member, in order."""
        for cb in self.callbacks:
            cb.on_epoch_start(epoch, ctx)

    def on_batch_end(self, info: BatchInfo, ctx: RunContext) -> None:
        """Forward the batch-end event to every member, in order."""
        for cb in self.callbacks:
            cb.on_batch_end(info, ctx)

    def on_em_step(self, info: EMStepInfo, ctx: RunContext) -> None:
        """Forward the EM-step event to every member, in order."""
        for cb in self.callbacks:
            cb.on_em_step(info, ctx)

    def on_epoch_end(self, record: "EpochRecord", ctx: RunContext) -> None:
        """Forward the epoch-end event to every member, in order."""
        for cb in self.callbacks:
            cb.on_epoch_end(record, ctx)

    def on_train_end(self, history: "TrainingHistory", ctx: RunContext) -> None:
        """Forward the train-end event to every member, in order."""
        for cb in self.callbacks:
            cb.on_train_end(history, ctx)
