"""Ambient default callbacks: instrument trainers you don't construct.

The CLI (and any other driver that reaches trainers only through deep
call stacks like ``run_im_sweep -> train_deep -> Trainer.fit``) needs a
way to attach telemetry without threading a ``callbacks=`` argument
through every experiment function.  :func:`use_callbacks` installs
callbacks into a context-local stack that every ``Trainer.fit`` appends
to its explicit callback list::

    with use_callbacks(JsonlRunLogger(path="run.jsonl")):
        run_im_sweep(config)   # every inner fit() is now logged

The stack is context-local (:mod:`contextvars`), so nested scopes and
concurrent tasks compose; installing a callback never mutates trainer
state and uninstalling is exception-safe.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Tuple

from .events import Callback

__all__ = ["default_callbacks", "use_callbacks"]

_DEFAULT_CALLBACKS: ContextVar[Tuple[Callback, ...]] = ContextVar(
    "repro_default_callbacks", default=()
)


def default_callbacks() -> Tuple[Callback, ...]:
    """The ambient callbacks every ``Trainer.fit`` should include."""
    return _DEFAULT_CALLBACKS.get()


@contextlib.contextmanager
def use_callbacks(*callbacks: Callback) -> Iterator[Tuple[Callback, ...]]:
    """Install ``callbacks`` as ambient defaults within the ``with`` body."""
    for cb in callbacks:
        if not isinstance(cb, Callback):
            raise TypeError(f"not a Callback: {cb!r}")
    token = _DEFAULT_CALLBACKS.set(_DEFAULT_CALLBACKS.get() + tuple(callbacks))
    try:
        yield _DEFAULT_CALLBACKS.get()
    finally:
        _DEFAULT_CALLBACKS.reset(token)
