"""Prometheus text exposition of a :class:`MetricsRegistry`.

Every counter, gauge, histogram and phase timer a process has been
accumulating becomes scrapeable: :func:`render_exposition` produces the
Prometheus text format (version 0.0.4) and :class:`MetricsServer`
serves it from ``GET /metrics`` on a stdlib ``http.server`` thread —
no third-party client library, matching this repository's
dependency-free telemetry stance.

Mapping rules (stable; the golden-file test pins them):

- instrument paths become metric names by replacing non-identifier
  characters with ``_`` and prefixing ``repro_``
  (``serve/requests_total`` → ``repro_serve_requests_total``);
- counters keep (or gain) the ``_total`` suffix; phase timers export a
  ``_seconds_total`` counter plus a ``_calls_total`` counter;
- histograms export as Prometheus *summaries*: ``{quantile="0.5"}`` /
  ``{quantile="0.95"}`` sample lines plus ``_sum`` and ``_count``;
- structured families are re-labelled instead of flattened:
  ``resilience/faults/<site>/<kind>_total`` becomes
  ``repro_resilience_faults_total{site="…",kind="…"}`` and
  ``resilience/breaker/<name>/…`` becomes
  ``repro_resilience_breaker_…{breaker="…"}``, with label values
  escaped per the exposition spec (``\\``, ``"``, newline);
- unset gauges (``None``) are omitted — absence, not zero.

:func:`validate_exposition` is the consumer-side contract check used by
both the golden test and the CI scrape smoke (``repro serve
--metrics-port`` scrapes itself through real HTTP and validates).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "MetricsServer",
    "render_exposition",
    "validate_exposition",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$"
)

_FAULTS_RE = re.compile(r"^resilience/faults/([^/]+)/([^/]+)_total$")
_BREAKER_RE = re.compile(r"^resilience/breaker/(.+)/([a-z_]+(?:_total)?)$")


def metric_name(path: str) -> str:
    """Sanitized Prometheus metric name for an instrument path."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", path)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def escape_help(text: str) -> str:
    """Escape a HELP line payload (backslash and newline only)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    """Canonical sample value formatting (integers stay integral)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Family:
    """One metric family: TYPE/HELP header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(
        self, value: float, labels: Optional[Dict[str, str]] = None,
        suffix: str = "",
    ) -> None:
        self.samples.append((suffix, dict(labels or {}), float(value)))

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{key}="{escape_label_value(str(val))}"'
                    for key, val in sorted(labels.items())
                )
                label_text = "{" + inner + "}"
            lines.append(f"{self.name}{suffix}{label_text} {_fmt(value)}")
        return lines


def _counter_family(
    families: Dict[str, _Family], path: str
) -> Tuple[_Family, Dict[str, str]]:
    """Family + labels for one counter path (re-labelling fault/breaker
    families, flat otherwise)."""
    fault = _FAULTS_RE.match(path)
    if fault:
        family = families.setdefault(
            "repro_resilience_faults_total",
            _Family(
                "repro_resilience_faults_total",
                "counter",
                "injected chaos faults by site and kind",
            ),
        )
        return family, {"site": fault.group(1), "kind": fault.group(2)}
    breaker = _BREAKER_RE.match(path)
    if breaker:
        leaf = breaker.group(2)
        name = f"repro_resilience_breaker_{leaf}"
        if not name.endswith("_total"):
            name += "_total"
        family = families.setdefault(
            name,
            _Family(name, "counter", f"circuit breaker {leaf} by breaker"),
        )
        return family, {"breaker": breaker.group(1)}
    name = metric_name(path)
    if not name.endswith("_total"):
        name += "_total"
    family = families.setdefault(
        name, _Family(name, "counter", f"counter {path}")
    )
    return family, {}


def _gauge_family(
    families: Dict[str, _Family], path: str
) -> Tuple[_Family, Dict[str, str]]:
    breaker = _BREAKER_RE.match(path)
    if breaker and not breaker.group(2).endswith("_total"):
        leaf = breaker.group(2)
        name = f"repro_resilience_breaker_{leaf}"
        family = families.setdefault(
            name,
            _Family(
                name, "gauge",
                f"circuit breaker {leaf} by breaker "
                "(0 closed, 1 half-open, 2 open)",
            ),
        )
        return family, {"breaker": breaker.group(1)}
    name = metric_name(path)
    family = families.setdefault(
        name, _Family(name, "gauge", f"gauge {path}")
    )
    return family, {}


SnapshotLike = Union[MetricsRegistry, Dict[str, Any]]


def render_exposition(metrics: SnapshotLike) -> str:
    """Prometheus text format for a registry (or a ``snapshot()`` dict).

    Accepting the snapshot dict as well lets ``repro metrics`` render a
    persisted ``BENCH_*.json`` file's metrics block offline.
    """
    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    elif isinstance(metrics, dict):
        snapshot = metrics
    else:
        raise TypeError(
            f"metrics must be a MetricsRegistry or snapshot dict, "
            f"got {type(metrics).__name__}"
        )

    families: Dict[str, _Family] = {}
    for path, value in snapshot.get("counters", {}).items():
        family, labels = _counter_family(families, path)
        family.add(value, labels)
    for path, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        family, labels = _gauge_family(families, path)
        family.add(value, labels)
    for path, summary in snapshot.get("histograms", {}).items():
        name = metric_name(path)
        family = families.setdefault(
            name, _Family(name, "summary", f"histogram {path}")
        )
        if summary.get("count", 0):
            family.add(summary["p50"], {"quantile": "0.5"})
            family.add(summary["p95"], {"quantile": "0.95"})
        family.add(summary.get("sum", 0.0), suffix="_sum")
        family.add(summary.get("count", 0), suffix="_count")
    for path, summary in snapshot.get("timers", {}).items():
        base = metric_name(path)
        seconds = families.setdefault(
            f"{base}_seconds_total",
            _Family(
                f"{base}_seconds_total", "counter",
                f"accumulated seconds in timer {path}",
            ),
        )
        seconds.add(summary.get("total_seconds", 0.0))
        calls = families.setdefault(
            f"{base}_calls_total",
            _Family(
                f"{base}_calls_total", "counter",
                f"completed spans of timer {path}",
            ),
        )
        calls.add(summary.get("count", 0))

    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Contract-check exposition text; returns problems (empty = valid).

    Checks the invariants scrapers rely on: every sample belongs to a
    declared ``# TYPE`` family, counter samples end in ``_total``,
    sample lines parse, no family is declared twice, and the document
    ends with a newline.
    """
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("document does not end with a newline")
    types: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {number}: blank line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped",
            ):
                problems.append(f"line {number}: malformed TYPE: {line!r}")
                continue
            if parts[2] in types:
                problems.append(
                    f"line {number}: duplicate TYPE for {parts[2]}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample: {line!r}")
            continue
        try:
            float(match.group(3))
        except ValueError:
            problems.append(
                f"line {number}: non-numeric sample value: {line!r}"
            )
            continue
        sample_name = match.group(1)
        family = _family_of(sample_name, types)
        if family is None:
            problems.append(
                f"line {number}: sample {sample_name!r} has no TYPE"
            )
            continue
        if types[family] == "counter" and not sample_name.endswith("_total"):
            problems.append(
                f"line {number}: counter sample {sample_name!r} "
                "lacks the _total suffix"
            )
    return problems


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    if sample_name in types:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    return None


class MetricsServer:
    """Serve ``GET /metrics`` for one registry on a daemon thread.

    Parameters
    ----------
    metrics:
        The registry to expose; rendered fresh on every scrape.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        ``self.port`` — the tests and the CLI's self-scrape use this).
    extra:
        Optional ``{path: callable -> str}`` table of additional
        text/plain endpoints (the CLI wires ``/health`` to the model
        server's probe).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        extra: Optional[Dict[str, Callable[[], str]]] = None,
    ) -> None:
        self.metrics = metrics
        self.extra = dict(extra or {})
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = render_exposition(outer.metrics).encode()
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                provider = outer.extra.get(self.path.split("?", 1)[0])
                if provider is not None:
                    body = provider().encode()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                self.send_response(404)
                self.end_headers()

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes are high-frequency; stay quiet

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """The scrape URL of this exporter."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the exporter thread (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsServer(url={self.url!r})"
