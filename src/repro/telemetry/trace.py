"""Request/training tracing: spans, context propagation, exporters.

The serving stack can already say *how much* time went where
(:class:`~repro.telemetry.metrics.MetricsRegistry` aggregates) but not
*which* request traversed retry → breaker → stale-fallback → row-rescue.
This module supplies the missing causal instrument:

- :class:`TraceContext` — the ``(trace_id, span_id, sampled)`` triple
  that ties spans together.  It rides on a :mod:`contextvars` variable,
  so it follows the logical flow of control across function calls and —
  via :func:`contextvars.copy_context` captured at submit time and
  restored on the worker (see :mod:`repro.serve.batching`) — across
  thread boundaries.
- :class:`Span` — one timed operation with status, attributes and
  structured events (a retry attempt, a breaker transition, a
  stale-snapshot fallback each become one event on the request's span).
- :class:`Tracer` — creates spans, makes the head-sampling decision at
  the root, and fans finished spans out to exporters: an in-memory
  :class:`SpanRingBuffer` (always on, bounded) and an optional
  :class:`JsonlSpanExporter` (one JSON object per line, crash-safe).

Determinism: trace/span ids come from a per-tracer counter plus a
seed-derived prefix — two seeded runs produce identical ids for the
same call order — and head sampling uses a deterministic rate
accumulator rather than a random draw, so "1 request in 10" means
exactly that and replays identically.  Both clocks (monotonic for
durations, wall for timestamps) are injectable, like everywhere else in
:mod:`repro.telemetry`.

Enabling tracing is ambient (:func:`use_tracer`) or explicit (the
``tracer=`` parameter on :class:`~repro.serve.server.ModelServer`);
with no tracer installed every helper degrades to a no-op whose cost is
one context-variable read.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter, time as wall_time
from typing import IO, Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "TraceContext",
    "Span",
    "Tracer",
    "SpanRingBuffer",
    "JsonlSpanExporter",
    "use_tracer",
    "current_tracer",
    "current_span",
    "start_span",
    "add_event",
    "tracing_active",
]

Clock = Callable[[], float]

#: Head-sampling rate used when callers don't choose one: record one
#: trace in ten.  The trace-overhead benchmark's ≤5% QPS budget is
#: measured at exactly this rate.
DEFAULT_SAMPLE_RATE = 0.1

#: Span status values (OpenTelemetry-style, reduced to what we need).
STATUS_OK = "ok"
STATUS_ERROR = "error"


class TraceContext:
    """Immutable identity of one span within one trace."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, sampled={self.sampled})"
        )


class Span:
    """One timed operation; use as a context manager.

    A span records its half-open ``[start, end)`` interval on the
    tracer's monotonic clock, a wall-clock timestamp for log
    cross-referencing, free-form ``attributes`` set at creation or via
    :meth:`set_attribute`, and a list of structured :meth:`event`
    entries.  Unsampled spans keep their identity (so children stay
    unsampled) but drop all payload and are never exported.
    """

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "start",
        "wall_start",
        "end",
        "status",
        "attributes",
        "events",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: TraceContext,
        parent_id: Optional[str],
        start: float,
        wall_start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.wall_start = wall_start
        self.end: Optional[float] = None
        self.status = STATUS_OK
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self._tracer = tracer
        self._token = None

    # -- recording ----------------------------------------------------
    @property
    def sampled(self) -> bool:
        """Whether this span records payload and will be exported."""
        return self.context.sampled

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 until the span has ended)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value attribute (no-op on unsampled spans)."""
        if self.context.sampled:
            self.attributes[key] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Append one structured event at the current clock reading."""
        if self.context.sampled:
            self.events.append(
                {"name": name, "at": self._tracer.clock(), **attributes}
            )

    def record_child(
        self,
        name: str,
        duration: float,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a synthetic, already-measured child span.

        The trainer uses this for its per-epoch phase spans: the phase
        durations are read out of the (already maintained) phase timers
        once per epoch instead of allocating four spans per mini-batch.
        """
        if self.context.sampled:
            self._tracer.record_span(
                name,
                duration,
                parent=self.context,
                start=start if start is not None else self.start,
                attributes=attributes,
            )

    # -- lifecycle ----------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _ACTIVE_SPAN.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc is not None and self.context.sampled:
            self.status = STATUS_ERROR
            self.attributes.setdefault("error", type(exc).__name__)
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        self._tracer.finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one JSONL line of the span log)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "wall_start": self.wall_start,
            "status": self.status,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.context.trace_id}, "
            f"span={self.context.span_id}, sampled={self.context.sampled})"
        )


class _NullSpan:
    """Inert stand-in returned when no tracer is installed.

    Supports the whole :class:`Span` surface as no-ops, so call sites
    never branch on "is tracing on?".
    """

    __slots__ = ()

    context: Optional[TraceContext] = None
    parent_id: Optional[str] = None
    sampled = False
    duration = 0.0
    status = STATUS_OK

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def record_child(
        self,
        name: str,
        duration: float,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared inert span; identity-comparable and allocation-free.
NULL_SPAN = _NullSpan()

#: Shared identity of every unsampled span.  Unsampled spans are never
#: exported and their children only need to see ``sampled=False``, so
#: they can all carry the same (empty-id) context instead of paying id
#: allocation per request.
_UNSAMPLED_CONTEXT = TraceContext("", "", False)

# The active span follows contextvars semantics: nested ``with`` blocks
# stack naturally, threads started via a copied Context (the batcher's
# submit-side capture) see the submitter's span, and plain threads see
# nothing.  Sampled and unsampled spans both live here so that an
# unsampled root suppresses its whole subtree.
_ACTIVE_SPAN: ContextVar[Optional[Span]] = ContextVar(
    "repro_active_span", default=None
)

_AMBIENT_TRACER: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_ambient_tracer", default=None
)


class SpanRingBuffer:
    """Bounded in-memory store of the most recent finished spans.

    Accepts finished spans either as plain dicts or as :class:`Span`
    objects; the latter are serialized **lazily on read**.  Buffer
    reads happen on a human timescale (a CLI dump, a test assertion),
    while exports sit on the request's latency-critical path — right
    before the dispatch worker wakes the waiting caller — so deferring
    ``to_dict`` moves that serialization off every traced request.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._spans: Deque[Any] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.exported = 0

    @staticmethod
    def _as_dict(span: Any) -> Dict[str, Any]:
        return span if isinstance(span, dict) else span.to_dict()

    def export(self, span: Any) -> None:
        """Append one finished span (oldest entries fall off)."""
        with self._lock:
            self._spans.append(span)
            self.exported += 1

    def spans(self) -> List[Dict[str, Any]]:
        """Snapshot of buffered spans as dicts, oldest first."""
        with self._lock:
            return [self._as_dict(span) for span in self._spans]

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """All buffered spans of one trace, oldest first."""
        with self._lock:
            dicts = [self._as_dict(span) for span in self._spans]
        return [span for span in dicts if span["trace_id"] == trace_id]

    def clear(self) -> None:
        """Drop every buffered span (``exported`` keeps counting)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JsonlSpanExporter:
    """Crash-safe JSONL span log: one complete JSON object per line.

    Each span is serialized into a single string (terminated by ``\\n``)
    and handed to the stream in **one write call**, buffered locally and
    flushed every ``flush_every`` records and on :meth:`close` — the
    same discipline as :class:`~repro.telemetry.callbacks.JsonlRunLogger`,
    so a killed process leaves a parseable prefix, never a truncated
    JSON fragment.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        flush_every: int = 1,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("provide exactly one of path= or stream=")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._own_stream = stream is None
        self._stream: Optional[IO[str]] = (
            open(path, "w", encoding="utf-8") if path is not None else stream
        )
        self.path = path
        self.flush_every = int(flush_every)
        self._pending: List[str] = []
        self._lock = threading.Lock()
        self.exported = 0

    def export(self, span: Dict[str, Any]) -> None:
        """Serialize and enqueue one span; flush per the policy."""
        line = json.dumps(span, sort_keys=True) + "\n"
        with self._lock:
            if self._stream is None:
                raise RuntimeError("JsonlSpanExporter is closed")
            self._pending.append(line)
            self.exported += 1
            if len(self._pending) >= self.flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._pending and self._stream is not None:
            self._stream.write("".join(self._pending))
            self._stream.flush()
            self._pending.clear()

    def flush(self) -> None:
        """Force out any buffered records."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush and close (only closes streams this exporter opened)."""
        with self._lock:
            self._flush_locked()
            if self._own_stream and self._stream is not None:
                self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class Tracer:
    """Creates spans, decides sampling, fans finished spans to exporters.

    Parameters
    ----------
    exporter:
        Optional sink with an ``export(span_dict)`` method (usually a
        :class:`JsonlSpanExporter`); the in-memory ring buffer is always
        maintained in addition.
    sample_rate:
        Head-sampling rate in ``[0, 1]`` applied at **root** span
        creation; children inherit the root's decision.  Sampling is a
        deterministic rate accumulator — at 0.1 exactly every tenth
        root is recorded — so traced runs replay bit-for-bit.
    max_buffered:
        Ring-buffer capacity for recent spans.
    clock / wall_clock:
        Monotonic duration clock and wall timestamp clock; injectable
        for deterministic tests.
    seed:
        Folded into the trace-id prefix so concurrent tracers writing
        one log remain distinguishable while staying replayable.
    """

    def __init__(
        self,
        exporter: Optional[Any] = None,
        sample_rate: float = 1.0,
        max_buffered: int = 2048,
        clock: Clock = perf_counter,
        wall_clock: Clock = wall_time,
        seed: int = 2018,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.exporter = exporter
        self.sample_rate = float(sample_rate)
        self.buffer = SpanRingBuffer(max_buffered)
        self.clock = clock
        self.wall_clock = wall_clock
        self._prefix = hashlib.sha1(
            f"repro-trace-{seed}".encode()
        ).hexdigest()[:6]
        self._lock = threading.Lock()
        self._next_id = 0
        self._sample_acc = 0.0
        self.started = 0
        self.sampled = 0
        self.finished = 0

    # -- span creation ------------------------------------------------
    def start_span(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[TraceContext] = None,
    ) -> Span:
        """Open a span under ``parent`` (default: the active span).

        With no parent anywhere this starts a **new trace** and makes
        the head-sampling decision for the whole tree.  Unsampled spans
        are deliberately cheap: no id is allocated (serials advance
        only for recorded spans, keeping sampled ids deterministic at
        any rate), no clock is read, and the shared unsampled context
        is reused — the unsampled path is what every request pays at
        low sampling rates, so it sets the tracing overhead floor.
        """
        if parent is None:
            active = _ACTIVE_SPAN.get()
            if active is not None:
                parent = active.context
        if parent is None:
            # Root: one lock hold decides sampling (deterministic rate
            # accumulator — fire on carry) and allocates the serial.
            with self._lock:
                self.started += 1
                self._sample_acc += self.sample_rate
                sampled = self._sample_acc >= 1.0 - 1e-12
                if sampled:
                    self._sample_acc -= 1.0
                    self.sampled += 1
                    self._next_id += 1
                    serial = self._next_id
            if not sampled:
                return Span(self, name, _UNSAMPLED_CONTEXT, None, 0.0, 0.0)
            context = TraceContext(
                f"{self._prefix}{serial:010x}", f"{serial:08x}", True
            )
            parent_id = None
        else:
            if not parent.sampled:
                with self._lock:
                    self.started += 1
                return Span(self, name, _UNSAMPLED_CONTEXT, None, 0.0, 0.0)
            with self._lock:
                self.started += 1
                self.sampled += 1
                self._next_id += 1
                serial = self._next_id
            context = TraceContext(parent.trace_id, f"{serial:08x}", True)
            parent_id = parent.span_id
        return Span(
            self,
            name,
            context,
            parent_id,
            start=self.clock(),
            wall_start=self.wall_clock(),
            attributes=attributes,
        )

    def record_span(
        self,
        name: str,
        duration: float,
        parent: Optional[TraceContext] = None,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Emit a synthetic span whose timing was measured elsewhere."""
        if parent is None:
            active = _ACTIVE_SPAN.get()
            if active is not None:
                parent = active.context
        if parent is not None and not parent.sampled:
            return
        span = self.start_span(name, attributes=attributes, parent=parent)
        if span.context.sampled:
            span.start = start if start is not None else self.clock()
            span.end = span.start + duration
            self._export(span)
            with self._lock:
                self.finished += 1

    def finish(self, span: Span) -> None:
        """Close ``span`` (stamping ``end``) and export it if sampled."""
        if span.context.sampled:
            if span.end is None:
                span.end = self.clock()
            self._export(span)
        with self._lock:
            self.finished += 1

    def _export(self, span: Span) -> None:
        # Without an external exporter the span object goes into the
        # ring buffer as-is and is only dict-ified if someone reads it;
        # an exporter needs the serialized form now, so share one dict.
        if self.exporter is None:
            self.buffer.export(span)
        else:
            payload = span.to_dict()
            self.buffer.export(payload)
            self.exporter.export(payload)

    def stats(self) -> Dict[str, Any]:
        """Counters for the tracer itself (started/sampled/finished)."""
        with self._lock:
            started, sampled, finished = (
                self.started, self.sampled, self.finished,
            )
        return {
            "started": started,
            "sampled": sampled,
            "finished": finished,
            "buffered": len(self.buffer),
            "sample_rate": self.sample_rate,
        }

    def __repr__(self) -> str:
        with self._lock:
            started, sampled = self.started, self.sampled
        return (
            f"Tracer(sample_rate={self.sample_rate}, "
            f"started={started}, sampled={sampled})"
        )


# ----------------------------------------------------------------------
# Ambient API (what instrumented code actually calls)
# ----------------------------------------------------------------------
def current_tracer() -> Optional[Tracer]:
    """The ambient tracer installed by :func:`use_tracer` (or ``None``)."""
    return _AMBIENT_TRACER.get()


def current_span() -> Optional[Span]:
    """The innermost active span on this logical flow (or ``None``)."""
    return _ACTIVE_SPAN.get()


def tracing_active() -> bool:
    """Whether any span or tracer is live on this logical flow.

    Hot paths use this to skip context captures that would only ever
    feed a no-op.
    """
    return _ACTIVE_SPAN.get() is not None or _AMBIENT_TRACER.get() is not None


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer within the ``with`` body.

    Context-local like :func:`~repro.telemetry.runtime.use_callbacks`,
    so nested scopes and concurrent tasks compose and uninstalling is
    exception-safe.
    """
    if not isinstance(tracer, Tracer):
        raise TypeError(f"not a Tracer: {tracer!r}")
    token = _AMBIENT_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT_TRACER.reset(token)


def start_span(
    name: str,
    attributes: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
) -> Any:
    """Open a span on ``tracer`` (default: the ambient one).

    Returns :data:`NULL_SPAN` when no tracer is available, so the call
    site can unconditionally write ``with start_span(...) as span:``.
    """
    active = tracer if tracer is not None else _AMBIENT_TRACER.get()
    if active is None:
        return NULL_SPAN
    return active.start_span(name, attributes=attributes)


def add_event(name: str, **attributes: Any) -> None:
    """Record an event on the active span (no-op without one).

    This is the hook the resilience layer uses: a retry attempt, a
    breaker transition or a stale-snapshot fallback deep inside the
    policy machinery lands on whichever request span is active.
    """
    span = _ACTIVE_SPAN.get()
    if span is not None:
        span.event(name, **attributes)


# ----------------------------------------------------------------------
# Span-log loading (shared by the summarizer and tests)
# ----------------------------------------------------------------------
def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL span log, skipping blank lines.

    Raises ``ValueError`` naming the offending line number on corrupt
    records — which the crash-safe writer makes unreachable short of
    external truncation.
    """
    spans: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: corrupt span record: {exc}"
                ) from exc
    return spans


def spans_by_trace(
    spans: List[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Group span dicts by ``trace_id`` (insertion-ordered)."""
    table: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        table.setdefault(span["trace_id"], []).append(span)
    return table
