"""Telemetry: event hooks, phase timers, metrics and structured run logs.

The paper's contribution is measured in *time* — the lazy-update
schedule exists to cut the E-step/M-step cost (Figs. 5-7) and the
learned GM evolves during training (Fig. 3) — so this subsystem makes
both first-class observables of the Algorithm 1/2 training loop:

:mod:`repro.telemetry.events`
    :class:`Callback`/:class:`CallbackList` — the hook protocol the
    trainer fires (train/epoch/batch/EM-step events) without altering
    the Algorithm 2 ordering.
:mod:`repro.telemetry.metrics`
    :class:`MetricsRegistry` — counters, gauges, histograms and named
    phase timers with an injectable clock; the trainer times the
    E-step, gradient, M-step and SGD phases separately.
:mod:`repro.telemetry.callbacks`
    Built-ins: :class:`JsonlRunLogger`, :class:`GMStateRecorder`,
    :class:`EarlyStopping`, :class:`CheckpointCallback`,
    :class:`ProgressReporter`, :class:`MetricsSummary`.
:mod:`repro.telemetry.export`
    ``BENCH_*.json``-shaped serialization of a run's metrics.
:mod:`repro.telemetry.runtime`
    Ambient default callbacks (``use_callbacks``) so drivers like the
    CLI can instrument trainers they never construct directly.

Telemetry is passive: with no callbacks registered the trainer's
numerical behaviour is unchanged, and with callbacks registered the
losses remain bit-identical — observers only read state the loop
already produced.
"""

from .callbacks import (
    CheckpointCallback,
    EarlyStopping,
    GMStateRecorder,
    JsonlRunLogger,
    MetricsSummary,
    ProgressReporter,
)
from .events import BatchInfo, Callback, CallbackList, EMStepInfo, RunContext
from .export import bench_filename, bench_payload, write_bench_json
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer
from .runtime import default_callbacks, use_callbacks

__all__ = [
    # events
    "Callback",
    "CallbackList",
    "RunContext",
    "BatchInfo",
    "EMStepInfo",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    # callbacks
    "JsonlRunLogger",
    "GMStateRecorder",
    "EarlyStopping",
    "CheckpointCallback",
    "ProgressReporter",
    "MetricsSummary",
    # export
    "bench_payload",
    "bench_filename",
    "write_bench_json",
    # runtime
    "default_callbacks",
    "use_callbacks",
]
