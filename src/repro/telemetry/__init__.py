"""Telemetry: event hooks, phase timers, metrics and structured run logs.

The paper's contribution is measured in *time* — the lazy-update
schedule exists to cut the E-step/M-step cost (Figs. 5-7) and the
learned GM evolves during training (Fig. 3) — so this subsystem makes
both first-class observables of the Algorithm 1/2 training loop:

:mod:`repro.telemetry.events`
    :class:`Callback`/:class:`CallbackList` — the hook protocol the
    trainer fires (train/epoch/batch/EM-step events) without altering
    the Algorithm 2 ordering.
:mod:`repro.telemetry.metrics`
    :class:`MetricsRegistry` — counters, gauges, histograms and named
    phase timers with an injectable clock; the trainer times the
    E-step, gradient, M-step and SGD phases separately.
:mod:`repro.telemetry.callbacks`
    Built-ins: :class:`JsonlRunLogger`, :class:`GMStateRecorder`,
    :class:`EarlyStopping`, :class:`CheckpointCallback`,
    :class:`ProgressReporter`, :class:`MetricsSummary`.
:mod:`repro.telemetry.export`
    ``BENCH_*.json``-shaped serialization of a run's metrics.
:mod:`repro.telemetry.runtime`
    Ambient default callbacks (``use_callbacks``) so drivers like the
    CLI can instrument trainers they never construct directly.
:mod:`repro.telemetry.trace`
    Request/training tracing: :class:`Tracer`, :class:`Span` and
    :class:`TraceContext` propagated via :mod:`contextvars` across the
    serve worker-thread boundary, with a crash-safe JSONL span log.
:mod:`repro.telemetry.exposition`
    Prometheus text exposition of a registry plus the stdlib
    ``/metrics`` HTTP endpoint behind ``repro serve --metrics-port``.
:mod:`repro.telemetry.summarize`
    Span-log aggregation for ``repro trace summarize`` (per-operation
    self/total time, p50/p99, critical path of one trace).

Telemetry is passive: with no callbacks registered the trainer's
numerical behaviour is unchanged, and with callbacks registered the
losses remain bit-identical — observers only read state the loop
already produced.
"""

from .callbacks import (
    CheckpointCallback,
    EarlyStopping,
    GMStateRecorder,
    JsonlRunLogger,
    MetricsSummary,
    ProgressReporter,
)
from .events import BatchInfo, Callback, CallbackList, EMStepInfo, RunContext
from .export import bench_filename, bench_payload, write_bench_json
from .exposition import MetricsServer, render_exposition, validate_exposition
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer
from .runtime import default_callbacks, use_callbacks
from .summarize import (
    critical_path,
    format_summary_table,
    format_trace_tree,
    longest_trace,
    summarize_spans,
)
from .trace import (
    DEFAULT_SAMPLE_RATE,
    JsonlSpanExporter,
    Span,
    SpanRingBuffer,
    TraceContext,
    Tracer,
    add_event,
    current_span,
    current_tracer,
    load_spans,
    spans_by_trace,
    start_span,
    tracing_active,
    use_tracer,
)

__all__ = [
    # events
    "Callback",
    "CallbackList",
    "RunContext",
    "BatchInfo",
    "EMStepInfo",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    # callbacks
    "JsonlRunLogger",
    "GMStateRecorder",
    "EarlyStopping",
    "CheckpointCallback",
    "ProgressReporter",
    "MetricsSummary",
    # export
    "bench_payload",
    "bench_filename",
    "write_bench_json",
    # runtime
    "default_callbacks",
    "use_callbacks",
    # trace
    "DEFAULT_SAMPLE_RATE",
    "TraceContext",
    "Span",
    "Tracer",
    "SpanRingBuffer",
    "JsonlSpanExporter",
    "use_tracer",
    "current_tracer",
    "current_span",
    "start_span",
    "add_event",
    "tracing_active",
    "load_spans",
    "spans_by_trace",
    # exposition
    "MetricsServer",
    "render_exposition",
    "validate_exposition",
    # summarize
    "summarize_spans",
    "format_summary_table",
    "critical_path",
    "format_trace_tree",
    "longest_trace",
]
