"""Fused E-step/gradient kernels — the training hot path.

Profiling with the per-phase timers (``phase/estep`` … ``phase/sgd``)
shows the GM regularizer's EM machinery dominating training time, and
that the dominant cost is evaluating the per-component Gaussian
densities ``N(w_m | 0, lambda_k)`` over every parameter dimension.
Before this module the densities were evaluated **twice** per
iteration: once for the responsibilities feeding ``g_reg``
(Equations (9)+(10) share them) and once more inside the M-step's
:func:`~repro.core.em.em_step`.  The lazy-update schedule of
Algorithm 2 exists precisely because that inner loop was expensive.

This module makes the inner loop cheap:

- :func:`fused_estep` evaluates the shared log-densities **once** and
  returns both the responsibility matrix (for the M-step) and the
  regularizer gradient ``g_reg`` (for the SGD step).
- Two kernels: ``"exact"`` reproduces
  :meth:`~repro.core.gaussian_mixture.GaussianMixture.responsibilities`
  arithmetic bit-for-bit, while ``"fast"`` replaces the textbook
  two-``exp`` log-space normalization with a single ``exp`` and a
  division (``r = exp(a - amax) / sum exp(a - amax)``), fuses the
  constant terms, and works out of preallocated buffers.
- A float32 compute path (``compute_dtype``) for the ``"fast"`` kernel
  halves memory traffic; sufficient statistics can still be
  accumulated in float64 (see
  :func:`~repro.core.em.suffstats_from_responsibilities`).
- :func:`stacked_estep` vectorizes the per-layer GM update loop into a
  single stacked-parameter pass: the flattened weights of many layers
  are concatenated and one kernel invocation serves every mixture,
  instead of one numpy call chain per layer.
- :class:`Workspace` caches the intermediate ``(M, K)`` buffers across
  iterations so the hot loop stops allocating tens of megabytes per
  step.

``benchmarks/bench_hotpath_fusion.py`` gates the whole pass: fused
training must be >= 2x faster than the legacy unfused path on the
Alex-CIFAR config at matching (<= 1e-6) losses, with the win
attributed to the estep/grad phases by the phase timers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .gaussian_mixture import GaussianMixture, _logsumexp

__all__ = [
    "Workspace",
    "EStepResult",
    "KERNELS",
    "fused_estep",
    "stacked_estep",
    "stacked_prepare",
]

# 0.5 * log(2 * pi), the constant part of the Gaussian log density.
_HALF_LOG_TWO_PI = 0.5 * math.log(2.0 * math.pi)

#: The supported E-step kernels: ``"exact"`` is bit-identical to the
#: unfused reference arithmetic; ``"fast"`` is the single-``exp``
#: buffered kernel (and the only one that supports float32 compute).
KERNELS = ("exact", "fast")


class Workspace:
    """A keyed cache of reusable numpy buffers.

    The hot path allocates several ``(M, K)`` float64 temporaries per
    E-step — ~2.5 MB each for an 80k-parameter layer — every iteration.
    A workspace hands back the same buffer for the same ``(key, shape,
    dtype)`` request, so steady-state training performs zero large
    allocations.  Buffers are private to their owner (one workspace per
    regularizer / per layer); contents are only valid until the next
    request for the same key.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Hashable, np.ndarray] = {}

    def get(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: "np.dtype[Any]",
    ) -> np.ndarray:
        """A buffer of exactly ``shape``/``dtype`` for ``key``.

        Contents are arbitrary (callers must overwrite); the buffer is
        reallocated if the requested shape or dtype changed.
        """
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def zeros(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: "np.dtype[Any]",
    ) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(key, shape, dtype)
        buf.fill(0)
        return buf

    def nbytes(self) -> int:
        """Total bytes currently held (telemetry/debugging)."""
        return int(sum(buf.nbytes for buf in self._buffers.values()))

    def clear(self) -> None:
        """Drop every cached buffer."""
        self._buffers.clear()


@dataclass
class EStepResult:
    """One fused E-step evaluation for a single mixture.

    Attributes
    ----------
    responsibilities:
        Equation (9) matrix ``(M, K)`` in the kernel's compute dtype.
        May be a view into a workspace buffer — valid until the owner's
        next E-step.
    gradient:
        Flat ``g_reg`` of Equation (10)'s second term,
        ``sum_k r_k(w_m) lambda_k w_m``, always float64.
    """

    responsibilities: np.ndarray
    gradient: np.ndarray


def fused_estep(
    mixture: GaussianMixture,
    w: np.ndarray,
    kernel: str = "fast",
    compute_dtype: "np.dtype[Any]" = np.dtype(np.float64),
    workspace: Optional[Workspace] = None,
) -> EStepResult:
    """Responsibilities and ``g_reg`` from one shared density evaluation.

    Parameters
    ----------
    mixture:
        The current GM prior.
    w:
        Flattened float64 parameter vector, shape ``(M,)``.
    kernel:
        ``"exact"`` reproduces the unfused reference arithmetic
        bit-for-bit; ``"fast"`` uses the single-``exp`` buffered kernel.
    compute_dtype:
        Dtype of the density evaluation (``"fast"`` kernel only;
        float32 is the fast path, float64 the default).
    workspace:
        Buffer cache reused across iterations (``"fast"`` kernel only).
    """
    results = stacked_estep(
        [mixture],
        [w],
        kernel=kernel,
        compute_dtype=compute_dtype,
        workspace=workspace,
    )
    return results[0]


def stacked_estep(
    mixtures: Sequence[GaussianMixture],
    ws: Sequence[np.ndarray],
    kernel: str = "fast",
    compute_dtype: "np.dtype[Any]" = np.dtype(np.float64),
    workspace: Optional[Workspace] = None,
) -> List[EStepResult]:
    """One fused E-step over many ``(mixture, w)`` pairs at once.

    Deep models carry one GM per layer (Section V-B1); evaluating them
    layer-by-layer pays the full numpy dispatch chain per layer.  This
    pass concatenates every layer's flattened weights into one vector,
    pads the per-layer component axes to a common ``K_max`` (padded
    components get ``-inf`` log-weight, hence exactly zero
    responsibility), and runs a single kernel invocation over the
    ``(M_total, K_max)`` block.  Per-layer results are returned as
    slices of the stacked buffers in input order.

    With ``kernel="exact"`` the stacked results are bit-identical to
    per-layer evaluation: padding contributes exact zeros to every
    reduction and all element-wise arithmetic is unchanged.
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if len(mixtures) != len(ws):
        raise ValueError(
            f"got {len(mixtures)} mixtures but {len(ws)} parameter vectors"
        )
    if not mixtures:
        return []
    compute_dtype = np.dtype(compute_dtype)
    if kernel == "exact" and compute_dtype != np.dtype(np.float64):
        raise ValueError(
            "the exact kernel is float64-only; use kernel='fast' for "
            f"compute_dtype={compute_dtype}"
        )
    flats = [np.asarray(w, dtype=np.float64).reshape(-1) for w in ws]
    if len(mixtures) == 1:
        if kernel == "exact":
            return [_exact_single(mixtures[0], flats[0])]
        return [_fast_single(mixtures[0], flats[0], compute_dtype, workspace)]
    if kernel == "exact":
        return _exact_stacked(list(mixtures), flats)
    return _fast_stacked(list(mixtures), flats, compute_dtype, workspace)


# ----------------------------------------------------------------------
# Exact kernel: reference arithmetic, evaluated once and shared.
# ----------------------------------------------------------------------
def _exact_single(mixture: GaussianMixture, flat: np.ndarray) -> EStepResult:
    """Reference arithmetic for one mixture (bit-identical to unfused)."""
    resp = mixture.responsibilities(flat)
    effective_precision = resp @ mixture.lam
    return EStepResult(
        responsibilities=resp, gradient=effective_precision * flat
    )


def _exact_stacked(
    mixtures: List[GaussianMixture], flats: List[np.ndarray]
) -> List[EStepResult]:
    """Stacked evaluation reproducing the reference arithmetic exactly.

    Element-wise operations act on gathered per-layer rows, so every
    scalar sees the same operands (hence the same rounding) as the
    per-layer reference; padded components carry ``-inf`` log density
    and contribute exact zeros to the row reductions.
    """
    k_max = max(m.n_components for m in mixtures)
    sizes = [flat.size for flat in flats]
    x = np.concatenate(flats)
    rows = np.repeat(np.arange(len(mixtures)), sizes)

    half_log_lam = np.full((len(mixtures), k_max), -np.inf)
    lam_pad = np.zeros((len(mixtures), k_max))
    log_pi_pad = np.zeros((len(mixtures), k_max))
    for i, m in enumerate(mixtures):
        k = m.n_components
        half_log_lam[i, :k] = 0.5 * np.log(m.lam)
        lam_pad[i, :k] = m.lam
        log_pi_pad[i, :k] = m._log_pi
    # Mirrors GaussianMixture.component_log_pdf + responsibilities: the
    # same products/sums per element, just with per-layer gathered rows.
    x2 = x[:, None] ** 2
    weighted = (
        half_log_lam[rows]
        - _HALF_LOG_TWO_PI
        - 0.5 * lam_pad[rows] * x2
    )
    weighted += log_pi_pad[rows]
    log_norm = _logsumexp(weighted, axis=1)
    resp = np.exp(weighted - log_norm[:, None])

    results: List[EStepResult] = []
    lo = 0
    for m, flat in zip(mixtures, flats):
        hi = lo + flat.size
        # Contiguous copy so downstream reductions (M-step suffstats, the
        # gradient matvec) see the same memory layout — hence the same
        # BLAS/pairwise-summation paths and bits — as the per-layer path.
        block = np.ascontiguousarray(resp[lo:hi, : m.n_components])
        effective_precision = block @ m.lam
        results.append(
            EStepResult(
                responsibilities=block,
                gradient=effective_precision * flat,
            )
        )
        lo = hi
    return results


# ----------------------------------------------------------------------
# Fast kernel: fused constants, one exp, buffered.
#
# All intermediates live in a transposed (K, M) layout: responsibilities
# normalize *across components*, and with K ~ 4 a row-wise reduction
# over an (M, K) array degenerates into M tiny strided reduce loops.
# In (K, M) the same reductions (max, sum) sweep K long contiguous rows
# — the difference is an order of magnitude on an 80k-parameter stack.
# Results are returned as (M, K) transpose views, which downstream
# consumers reduce efficiently: ``resp.sum(axis=0)`` and
# ``resp.T @ w**2`` both stream over the contiguous base rows.
# ----------------------------------------------------------------------
def _fast_single(
    mixture: GaussianMixture,
    flat: np.ndarray,
    compute_dtype: "np.dtype[Any]",
    workspace: Optional[Workspace],
) -> EStepResult:
    """Single-``exp`` kernel for one mixture, out of workspace buffers."""
    ws = workspace if workspace is not None else Workspace()
    m_dim, k = flat.size, mixture.n_components
    lam = mixture.lam.astype(compute_dtype)
    # log pi_k + 0.5 log lambda_k - 0.5 log 2pi, fused into one constant.
    log_weight = (
        mixture._log_pi + 0.5 * np.log(mixture.lam) - _HALF_LOG_TWO_PI
    ).astype(compute_dtype)

    x = flat.astype(compute_dtype, copy=False)
    x2 = ws.get("x2", (m_dim,), compute_dtype)
    np.multiply(x, x, out=x2)
    buf = ws.get("weighted", (k, m_dim), compute_dtype)
    np.multiply((-0.5 * lam)[:, None], x2[None, :], out=buf)
    buf += log_weight[:, None]
    _normalize_components(buf, ws)
    gradient = _fast_gradient(buf, lam, flat, ws)
    return EStepResult(responsibilities=buf.T, gradient=gradient)


def _fast_stacked(
    mixtures: List[GaussianMixture],
    flats: List[np.ndarray],
    compute_dtype: "np.dtype[Any]",
    workspace: Optional[Workspace],
) -> List[EStepResult]:
    """Single-``exp`` kernel over the stacked multi-layer block."""
    ws = workspace if workspace is not None else Workspace()
    k_max = max(m.n_components for m in mixtures)
    sizes = [flat.size for flat in flats]
    m_total = int(sum(sizes))
    bounds = np.cumsum([0] + sizes)

    x = ws.get("x", (m_total,), np.dtype(np.float64))
    np.concatenate(flats, out=x)
    xc = x.astype(compute_dtype, copy=False)
    x2 = ws.get("x2", (m_total,), compute_dtype)
    np.multiply(xc, xc, out=x2)

    # Per-layer segment fill: each layer contributes a contiguous column
    # block, so broadcasting its (K,) constants over the block is far
    # cheaper than an 80k-row gather.  Padded components get -inf log
    # weight (exact zero responsibility) and lambda 0 (no gradient).
    buf = ws.get("weighted", (k_max, m_total), compute_dtype)
    lam_cols = ws.get("lam_cols", (k_max, m_total), compute_dtype)
    if len(mixtures) > 1:
        buf.fill(-np.inf)
        lam_cols.fill(0)
    for i, m in enumerate(mixtures):
        k = m.n_components
        lo, hi = bounds[i], bounds[i + 1]
        lam = m.lam.astype(compute_dtype)
        log_weight = (
            m._log_pi + 0.5 * np.log(m.lam) - _HALF_LOG_TWO_PI
        ).astype(compute_dtype)
        np.multiply(
            (-0.5 * lam)[:, None], x2[None, lo:hi], out=buf[:k, lo:hi]
        )
        buf[:k, lo:hi] += log_weight[:, None]
        lam_cols[:k, lo:hi] = lam[:, None]

    # One normalization and one gradient pass over the whole stack: the
    # -inf padding never wins the column max and exps to exact zero.
    _normalize_components(buf, ws)
    lam_cols *= buf
    precision = ws.get("precision", (m_total,), compute_dtype)
    lam_cols.sum(axis=0, out=precision)
    # The product allocates a fresh float64 array, so per-layer gradient
    # slices stay valid across iterations (the lazy schedule caches
    # them), unlike the workspace-backed responsibility views.
    gradient_full = precision * x

    results: List[EStepResult] = []
    for i, m in enumerate(mixtures):
        lo, hi = bounds[i], bounds[i + 1]
        results.append(
            EStepResult(
                responsibilities=buf[: m.n_components, lo:hi].T,
                gradient=gradient_full[lo:hi],
            )
        )
    return results


def _normalize_components(buf: np.ndarray, ws: Workspace) -> None:
    """In-place softmax of ``buf`` over the component axis (axis 0).

    ``r = exp(a - amax) / sum_k exp(a - amax)`` — one ``exp`` and one
    division instead of the textbook second ``exp`` of
    ``a - logsumexp(a)``; agreement with the exact kernel is at the
    few-ulp level (asserted by the fusion tests).
    """
    m_dim = buf.shape[1]
    dtype = buf.dtype
    amax = ws.get("amax", (m_dim,), dtype)
    buf.max(axis=0, out=amax)
    buf -= amax[None, :]
    np.exp(buf, out=buf)
    norm = ws.get("norm", (m_dim,), dtype)
    buf.sum(axis=0, out=norm)
    buf /= norm[None, :]


def _fast_gradient(
    resp_t: np.ndarray, lam: np.ndarray, flat: np.ndarray, ws: Workspace
) -> np.ndarray:
    """``g_reg = (sum_k r_k lambda_k) * w`` from (K, M) responsibilities.

    Always float64 and freshly allocated — the caller caches it across
    iterations under the lazy schedule.
    """
    precision = ws.get("precision", (flat.size,), resp_t.dtype)
    np.matmul(lam, resp_t, out=precision)
    return precision * flat


# ----------------------------------------------------------------------
# Trainer-facing driver
# ----------------------------------------------------------------------
def stacked_prepare(
    parameters: Sequence[Any],
    iteration: int,
    workspace: Optional[Workspace] = None,
) -> int:
    """Run the E-step phase for every regularized parameter at once.

    Drop-in replacement for the trainer's per-parameter
    ``regularizer.prepare(value, iteration)`` loop: fusable
    GM regularizers (``fused=True``, exactly
    :class:`~repro.core.gm_regularizer.GMRegularizer`) that are due this
    iteration are batched into one :func:`stacked_estep` call per kernel
    configuration and receive their results through
    ``adopt_estep``; everything else falls back to its own
    ``prepare``.  Returns the number of regularizers served by the
    stacked pass.
    """
    from .gm_regularizer import GMRegularizer

    groups: Dict[Tuple[str, str], List[Any]] = {}
    for param in parameters:
        reg = param.regularizer
        if reg is None:
            continue
        if type(reg) is GMRegularizer and reg.fused and reg.estep_due(
            iteration
        ):
            key = (reg.kernel, reg.compute_dtype.name)
            groups.setdefault(key, []).append(param)
        else:
            reg.prepare(param.value, iteration)

    stacked = 0
    for (kernel, dtype_name), members in groups.items():
        if len(members) == 1:
            param = members[0]
            param.regularizer.prepare(param.value, iteration)
            continue
        results = stacked_estep(
            [p.regularizer.mixture for p in members],
            [p.value for p in members],
            kernel=kernel,
            compute_dtype=np.dtype(dtype_name),
            workspace=workspace,
        )
        for param, result in zip(members, results):
            param.regularizer.adopt_estep(param.value, iteration, result)
        stacked += len(members)
    return stacked
