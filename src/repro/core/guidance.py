"""Hyper-parameter guidance for different kinds of models.

The paper's contribution list includes "guidance on setting the
appropriate hyper-parameters for different kinds of models"; this
module encodes that guidance (Sections III-C3, V-B1, V-E, V-F) as a
callable recommendation:

- ``K = 4`` initial components always; EM collapses it as needed.
- ``b = gamma * M`` with gamma from the published grid; pick mid-grid
  by default and cross-validate when labels are available.
- ``a = 1 + 0.01 * b`` ("a is not a significant parameter").
- ``alpha = M ** 0.5`` (the best exponent in Figure 4).
- **linear** precision initialization from the model's weight-init
  precision (Table VIII's winner).
- Lazy updates only pay off for large models: the paper employs them
  "for models with large number of parameters" with ``E = 2`` warm-up
  epochs, ``Im = 50`` and ``Ig >= Im``; small (shallow) models run the
  eager Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gm_regularizer import GMRegularizer
from .hyperparams import GMHyperParams
from .lazy import LazyUpdateSchedule

__all__ = ["Recommendation", "recommend", "make_recommended_regularizer"]

# Above this per-layer parameter count the lazy update's savings
# outweigh its staleness (the paper applies it to its 89k/271k-dim
# deep models and not to the few-hundred-dim logistic regressions).
LAZY_UPDATE_THRESHOLD = 10_000


@dataclass(frozen=True)
class Recommendation:
    """Recommended GM settings for one weight tensor."""

    hyperparams: GMHyperParams
    schedule: LazyUpdateSchedule
    init_method: str
    rationale: str


def recommend(
    n_dimensions: int,
    n_samples: int,
    is_deep: bool = False,
) -> Recommendation:
    """Recommend GM settings for a weight tensor of ``M`` dimensions.

    Parameters
    ----------
    n_dimensions:
        ``M`` — dimensions of the (per-layer) weight tensor.
    n_samples:
        Training-set size ``N``.  The effective per-step decay is
        ``lambda / N``, so smaller datasets want larger ``gamma`` (which
        caps the learned precisions) to avoid over-regularization.
    is_deep:
        Whether the tensor belongs to a deep model trained for many
        epochs (enables lazy updates for large tensors).
    """
    if n_dimensions < 1:
        raise ValueError(f"n_dimensions must be >= 1, got {n_dimensions}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")

    # gamma: mid-grid for the paper's big-N regime; scale up as N shrinks
    # so the capped lambda keeps lambda/N in a stable range.
    if n_samples >= 10_000:
        gamma = 0.005
        gamma_note = "mid-grid gamma (paper's large-N regime)"
    elif n_samples >= 1_000:
        gamma = 0.01
        gamma_note = "raised gamma for moderate N (caps lambda/N)"
    else:
        gamma = 0.02
        gamma_note = "high-grid gamma for small N (strong lambda cap)"

    hyperparams = GMHyperParams(
        n_components=4, gamma=gamma, a_scale=0.01, alpha_exponent=0.5
    )

    use_lazy = is_deep and n_dimensions >= LAZY_UPDATE_THRESHOLD
    if use_lazy:
        schedule = LazyUpdateSchedule(
            model_interval=50, gm_interval=50, eager_epochs=2
        )
        lazy_note = "lazy updates (Im=Ig=50, E=2): large deep tensor"
    else:
        schedule = LazyUpdateSchedule()
        lazy_note = "eager Algorithm 1: small tensor, EM cost negligible"

    return Recommendation(
        hyperparams=hyperparams,
        schedule=schedule,
        init_method="linear",
        rationale=(
            f"K=4, alpha=M^0.5, a=1+0.01b, linear init (Table VIII); "
            f"{gamma_note}; {lazy_note}. Cross-validate gamma over "
            f"the paper's grid when a validation signal is available."
        ),
    )


def make_recommended_regularizer(
    n_dimensions: int,
    n_samples: int,
    weight_init_std: float = 0.1,
    is_deep: bool = False,
) -> GMRegularizer:
    """Build a :class:`GMRegularizer` straight from :func:`recommend`."""
    rec = recommend(n_dimensions, n_samples, is_deep=is_deep)
    return GMRegularizer(
        n_dimensions=n_dimensions,
        weight_init_std=weight_init_std,
        hyperparams=rec.hyperparams,
        init_method=rec.init_method,
        schedule=rec.schedule,
    )
