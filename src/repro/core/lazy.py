"""Lazy-update schedule from Algorithm 2 of the paper.

Computing the regularization gradient ``g_reg`` and running the EM
M-step both require evaluating Gaussian densities over every model
parameter dimension — the bottleneck the paper identifies (Section
III-D).  Because neither ``g_reg`` nor the GM parameters move much after
the first few epochs, Algorithm 2 updates them *lazily*:

- During the first ``E`` ("eager") epochs, both are refreshed on every
  SGD iteration, exactly as in Algorithm 1.
- Afterwards, ``g_reg`` (the E-step) is refreshed only every ``Im``
  iterations, and the GM parameters (the M-step) only every ``Ig``
  iterations; stale values are reused in between.

:class:`LazyUpdateSchedule` encapsulates just the *decision logic* —
"should this iteration recompute the E-step / M-step?" — so that it can
be unit-tested independently of any training loop and shared between the
logistic-regression and neural-network trainers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LazyUpdateSchedule"]


@dataclass(frozen=True)
class LazyUpdateSchedule:
    """Decision logic of Algorithm 2.

    Attributes
    ----------
    model_interval:
        ``Im`` — iterations between E-step refreshes of ``g_reg`` once
        lazy updating is active.  ``Im = 1`` disables laziness.
    gm_interval:
        ``Ig`` — iterations between M-step refreshes of the GM
        parameters.  The paper sets ``Ig >= Im`` because the GM
        converges faster than the model parameters.
    eager_epochs:
        ``E`` — number of initial epochs during which every iteration
        performs both steps.
    """

    model_interval: int = 1
    gm_interval: int = 1
    eager_epochs: int = 2

    def __post_init__(self) -> None:
        if self.model_interval < 1:
            raise ValueError(
                f"model_interval must be >= 1, got {self.model_interval}"
            )
        if self.gm_interval < 1:
            raise ValueError(f"gm_interval must be >= 1, got {self.gm_interval}")
        if self.eager_epochs < 0:
            raise ValueError(
                f"eager_epochs must be >= 0, got {self.eager_epochs}"
            )

    def should_update_reg_gradient(self, iteration: int, epoch: int) -> bool:
        """Whether this iteration recomputes responsibilities and ``g_reg``.

        Mirrors line 4 of Algorithm 2:
        ``epoch_it < E or it mod Im == 0``.
        """
        _check_counters(iteration, epoch)
        return epoch < self.eager_epochs or iteration % self.model_interval == 0

    def should_update_gm(self, iteration: int, epoch: int) -> bool:
        """Whether this iteration runs the M-step on ``pi`` and ``lambda``.

        Mirrors line 9 of Algorithm 2:
        ``epoch_it < E or it mod Ig == 0``.
        """
        _check_counters(iteration, epoch)
        return epoch < self.eager_epochs or iteration % self.gm_interval == 0

    @property
    def is_lazy(self) -> bool:
        """True when at least one interval actually skips work."""
        return self.model_interval > 1 or self.gm_interval > 1

    def expected_estep_fraction(self, iterations_per_epoch: int, epochs: int) -> float:
        """Fraction of iterations that perform the E-step.

        A closed-form helper used by the timing benchmarks to sanity-check
        measured speedups: with ``E`` eager epochs out of ``epochs``,
        roughly ``E/epochs + (1 - E/epochs)/Im`` of the iterations pay
        the E-step cost.
        """
        if iterations_per_epoch < 1 or epochs < 1:
            raise ValueError("iterations_per_epoch and epochs must be >= 1")
        eager = min(self.eager_epochs, epochs)
        lazy_epochs = epochs - eager
        total = iterations_per_epoch * epochs
        eager_updates = iterations_per_epoch * eager
        lazy_updates = (iterations_per_epoch * lazy_epochs) / self.model_interval
        return (eager_updates + lazy_updates) / total


def _check_counters(iteration: int, epoch: int) -> None:
    if iteration < 0:
        raise ValueError(f"iteration must be >= 0, got {iteration}")
    if epoch < 0:
        raise ValueError(f"epoch must be >= 0, got {epoch}")
