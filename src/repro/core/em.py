"""Lightweight EM updates for the GM parameters (Equations (13) and (17)).

Given responsibilities ``r_k(w_m)`` computed in the E-step (Equation (9)),
the M-step has closed-form minimizers of the loss ``G`` with respect to
the mixture parameters:

Precisions (Equation (13)), smoothed by the Gamma(a, b) prior::

    lambda_k = (2(a - 1) + sum_m r_k(w_m)) / (2b + sum_m r_k(w_m) w_m^2)

Mixing coefficients (Equation (17)), smoothed by the Dirichlet(alpha)
prior via a Lagrange multiplier enforcing the simplex constraint::

    pi_k = (sum_m r_k(w_m) + (alpha_k - 1)) / (M + sum_j (alpha_j - 1))

When ``alpha_k < 1`` the numerator can go negative for components with
tiny responsibility mass; the paper relies on this to *prune* components
(K=4 collapsing to the 1-2 components reported in Tables IV/V).  We
implement pruning by clamping negative coefficients to zero and
renormalizing, and expose a switch so the behaviour can be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .gaussian_mixture import GaussianMixture

__all__ = [
    "RegularizerEMState",
    "precisions_from_stats",
    "mixing_from_stats",
    "update_precisions",
    "update_mixing_coefficients",
    "suffstats_from_responsibilities",
    "merge_plan",
    "merge_similar_components",
    "em_step",
    "em_step_from_responsibilities",
    "em_step_from_stats",
    "gm_loss_terms",
]

# Precisions are clipped to this range after each M-step.  The lower bound
# keeps the Gaussians proper; the upper bound prevents a pruned-in-all-but-
# name component from driving the density evaluation into overflow.
_LAMBDA_MIN = 1e-8
_LAMBDA_MAX = 1e12

# Components whose updated mixing coefficient falls below this threshold
# are pruned (coefficient set to 0) when pruning is enabled.
_PI_PRUNE_THRESHOLD = 1e-10


@dataclass(frozen=True)
class RegularizerEMState:
    """Typed snapshot of one regularizer's EM state.

    This is the per-parameter unit of
    :class:`~repro.optim.trainer.TrainerState`: enough to resume either
    the batch trainer (``pi``/``lam`` and the refresh counters) or the
    online trainer (which additionally carries the exponentially decayed
    sufficient statistics ``resp_sum``/``weighted_sq`` of
    :mod:`repro.online.em`).  All fields are plain arrays/ints so the
    snapshot round-trips through JSON and ``.npz`` checkpoints.
    """

    pi: np.ndarray
    lam: np.ndarray
    estep_count: int = 0
    mstep_count: int = 0
    resp_sum: Optional[np.ndarray] = None
    weighted_sq: Optional[np.ndarray] = None
    em_updates: int = 0

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form (arrays become lists, ``None`` stays)."""
        return {
            "pi": [float(v) for v in np.asarray(self.pi).reshape(-1)],
            "lam": [float(v) for v in np.asarray(self.lam).reshape(-1)],
            "estep_count": int(self.estep_count),
            "mstep_count": int(self.mstep_count),
            "resp_sum": (
                None if self.resp_sum is None
                else [float(v) for v in np.asarray(self.resp_sum).reshape(-1)]
            ),
            "weighted_sq": (
                None if self.weighted_sq is None
                else [
                    float(v)
                    for v in np.asarray(self.weighted_sq).reshape(-1)
                ]
            ),
            "em_updates": int(self.em_updates),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "RegularizerEMState":
        """Inverse of :meth:`to_jsonable`."""
        def _opt(key: str) -> Optional[np.ndarray]:
            value = payload.get(key)
            return None if value is None else np.asarray(value, dtype=np.float64)

        return cls(
            pi=np.asarray(payload["pi"], dtype=np.float64),
            lam=np.asarray(payload["lam"], dtype=np.float64),
            estep_count=int(payload.get("estep_count", 0)),
            mstep_count=int(payload.get("mstep_count", 0)),
            resp_sum=_opt("resp_sum"),
            weighted_sq=_opt("weighted_sq"),
            em_updates=int(payload.get("em_updates", 0)),
        )


def precisions_from_stats(
    resp_sum: np.ndarray,
    weighted_sq: np.ndarray,
    a: float,
    b: float,
) -> np.ndarray:
    """Equation (13) evaluated on sufficient statistics.

    The M-step for the precisions only needs two per-component sums:
    ``resp_sum_k = sum_m r_k(w_m)`` and
    ``weighted_sq_k = sum_m r_k(w_m) w_m^2``.  Factoring the update this
    way lets the batch E-step and the online trainer's exponentially
    decayed running statistics share one M-step implementation.

    Returns
    -------
    numpy.ndarray
        Updated precisions, shape ``(K,)``, clipped to a safe range.
    """
    numerator = 2.0 * (a - 1.0) + np.asarray(resp_sum, dtype=np.float64)
    denominator = 2.0 * b + np.asarray(weighted_sq, dtype=np.float64)
    lam = numerator / np.maximum(denominator, 1e-300)
    return np.clip(lam, _LAMBDA_MIN, _LAMBDA_MAX)


def mixing_from_stats(
    resp_sum: np.ndarray,
    alpha: np.ndarray,
    prune: bool = True,
) -> np.ndarray:
    """Equation (17) evaluated on the responsibility-mass statistic.

    Same sufficient-statistic factoring as :func:`precisions_from_stats`;
    see :func:`update_mixing_coefficients` for the pruning semantics.
    """
    alpha = np.asarray(alpha, dtype=np.float64).reshape(-1)
    resp_sum = np.asarray(resp_sum, dtype=np.float64).reshape(-1)
    numerator = resp_sum + (alpha - 1.0)
    if prune:
        numerator = np.where(numerator < _PI_PRUNE_THRESHOLD, 0.0, numerator)
    else:
        numerator = np.maximum(numerator, _PI_PRUNE_THRESHOLD)
    total = numerator.sum()
    if total <= 0.0:
        # Degenerate case: every component pruned.  Fall back to the raw
        # responsibility masses, which always form a valid distribution.
        numerator = np.maximum(resp_sum, _PI_PRUNE_THRESHOLD)
        total = numerator.sum()
    # Denominator M + sum(alpha - 1) equals `total` after clamping.
    return numerator / total


def update_precisions(
    responsibilities: np.ndarray,
    w: np.ndarray,
    a: float,
    b: float,
) -> np.ndarray:
    """M-step for the component precisions (Equation (13)).

    Parameters
    ----------
    responsibilities:
        Matrix ``(M, K)`` from :meth:`GaussianMixture.responsibilities`.
    w:
        Flattened model parameter vector, shape ``(M,)``.
    a, b:
        Gamma-prior shape and rate; ``2(a-1)`` and ``2b`` act as pseudo
        counts and pseudo sums of squares.

    Returns
    -------
    numpy.ndarray
        Updated precisions, shape ``(K,)``, clipped to a safe range.
    """
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    resp_sum = responsibilities.sum(axis=0)
    weighted_sq = responsibilities.T @ (w * w)
    return precisions_from_stats(resp_sum, weighted_sq, a=a, b=b)


def update_mixing_coefficients(
    responsibilities: np.ndarray,
    alpha: np.ndarray,
    prune: bool = True,
) -> np.ndarray:
    """M-step for the mixing coefficients (Equation (17)).

    Parameters
    ----------
    responsibilities:
        Matrix ``(M, K)``.
    alpha:
        Dirichlet concentration parameters, shape ``(K,)``.
    prune:
        When True (paper behaviour), coefficients driven negative by the
        ``alpha_k - 1`` term are set to zero — the component is pruned —
        and the rest renormalized.  When False the coefficients are
        floored at a small epsilon instead (ablation mode).

    Returns
    -------
    numpy.ndarray
        Updated mixing coefficients on the simplex, shape ``(K,)``.
    """
    return mixing_from_stats(
        responsibilities.sum(axis=0), alpha=alpha, prune=prune
    )


def suffstats_from_responsibilities(
    responsibilities: np.ndarray,
    w: np.ndarray,
    accumulate_dtype: "np.dtype[Any]" = np.dtype(np.float64),
) -> "tuple[np.ndarray, np.ndarray]":
    """The two M-step sufficient statistics from a responsibility matrix.

    Returns ``(resp_sum, weighted_sq)`` — ``sum_m r_k(w_m)`` and
    ``sum_m r_k(w_m) w_m^2`` — accumulated in ``accumulate_dtype``.
    This is the accumulation half of :func:`update_precisions` /
    :func:`update_mixing_coefficients`, split out so the fused hot path
    (which may hold float32 responsibilities) can choose float64
    accumulation explicitly; with float64 inputs it reproduces the
    unfused arithmetic bit-for-bit.
    """
    accumulate_dtype = np.dtype(accumulate_dtype)
    w = np.asarray(w).reshape(-1)
    if responsibilities.dtype == accumulate_dtype:
        resp_sum = responsibilities.sum(axis=0)
        w = w.astype(accumulate_dtype, copy=False)
        weighted_sq = responsibilities.T @ (w * w)
    else:
        resp = responsibilities.astype(accumulate_dtype)
        resp_sum = resp.sum(axis=0)
        w = w.astype(accumulate_dtype, copy=False)
        weighted_sq = resp.T @ (w * w)
    return resp_sum, weighted_sq


def merge_plan(
    pi: np.ndarray,
    lam: np.ndarray,
    rel_tol: float = 0.02,
) -> List[List[int]]:
    """Index groups of components whose precisions have converged together.

    The greedy adjacent-merge walk of :func:`merge_similar_components`,
    expressed as a *plan*: each returned group lists the indices (into
    the input arrays) of components that collapse into one, ordered by
    ascending precision.  The running merged precision is the
    pi-weighted mean, so the grouping is identical to what
    :func:`merge_similar_components` applies.  The online EM path uses
    the plan to merge its decayed sufficient statistics alongside the
    mixture parameters.
    """
    pi = np.asarray(pi, dtype=np.float64).reshape(-1)
    lam = np.asarray(lam, dtype=np.float64).reshape(-1)
    order = np.argsort(lam)
    groups: List[List[int]] = [[int(order[0])]]
    current_pi = float(pi[order[0]])
    current_lam = float(lam[order[0]])
    for idx in order[1:]:
        lam_k = float(lam[idx])
        if abs(lam_k - current_lam) <= rel_tol * max(
            abs(lam_k), abs(current_lam)
        ):
            total = current_pi + float(pi[idx])
            current_lam = (
                current_pi * current_lam + float(pi[idx]) * lam_k
            ) / max(total, 1e-300)
            current_pi = total
            groups[-1].append(int(idx))
        else:
            groups.append([int(idx)])
            current_pi = float(pi[idx])
            current_lam = lam_k
    return groups


def merge_similar_components(
    pi: np.ndarray,
    lam: np.ndarray,
    rel_tol: float = 0.02,
) -> tuple:
    """Merge components whose precisions have converged to the same value.

    EM started from distinct precisions frequently drives several
    components onto the *same* fixed point; the paper describes these as
    "gradually merged to one" (Section V-B1), which is how K=4 collapses
    to the 1-2 components of Tables IV/V.  Two components are merged when
    their precisions agree within ``rel_tol`` relative tolerance; merged
    mixing coefficients are summed and the precision is their
    pi-weighted mean.

    Returns the (possibly shorter) ``(pi, lam)`` pair, sorted by
    ascending precision.
    """
    pi = np.asarray(pi, dtype=np.float64).reshape(-1)
    lam = np.asarray(lam, dtype=np.float64).reshape(-1)
    merged_pi = []
    merged_lam = []
    for group in merge_plan(pi, lam, rel_tol=rel_tol):
        total = float(pi[group].sum())
        merged_pi.append(total)
        merged_lam.append(
            float((pi[group] * lam[group]).sum()) / max(total, 1e-300)
        )
    return np.asarray(merged_pi), np.asarray(merged_lam)


def em_step(
    mixture: GaussianMixture,
    w: np.ndarray,
    alpha: np.ndarray,
    a: float,
    b: float,
    prune: bool = True,
    merge: bool = True,
    merge_rel_tol: float = 0.02,
) -> GaussianMixture:
    """One full E+M step on the GM parameters for fixed ``w``.

    Components pruned to zero mixing coefficient are removed from the
    returned mixture, and components whose precisions have converged to
    the same value are merged (matching the paper's observation that K=4
    collapses to 1-2 effective components).
    """
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    resp = mixture.responsibilities(w)
    return em_step_from_responsibilities(
        mixture,
        w,
        resp,
        alpha=alpha,
        a=a,
        b=b,
        prune=prune,
        merge=merge,
        merge_rel_tol=merge_rel_tol,
    )


def em_step_from_responsibilities(
    mixture: GaussianMixture,
    w: np.ndarray,
    responsibilities: np.ndarray,
    alpha: np.ndarray,
    a: float,
    b: float,
    prune: bool = True,
    merge: bool = True,
    merge_rel_tol: float = 0.02,
) -> GaussianMixture:
    """M-step given responsibilities already computed for ``(mixture, w)``.

    The fused hot path computes Equation (9) once per iteration and
    shares it between the regularizer gradient (Equation (10)) and this
    M-step; :func:`em_step` is exactly this function fed a fresh E-step.
    With float64 responsibilities the result is bit-identical to
    :func:`em_step` on the same inputs.
    """
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    resp_sum, weighted_sq = suffstats_from_responsibilities(
        responsibilities, w
    )
    return em_step_from_stats(
        mixture,
        resp_sum,
        weighted_sq,
        alpha=alpha,
        a=a,
        b=b,
        prune=prune,
        merge=merge,
        merge_rel_tol=merge_rel_tol,
    )


def em_step_from_stats(
    mixture: GaussianMixture,
    resp_sum: np.ndarray,
    weighted_sq: np.ndarray,
    alpha: np.ndarray,
    a: float,
    b: float,
    prune: bool = True,
    merge: bool = True,
    merge_rel_tol: float = 0.02,
) -> GaussianMixture:
    """M-step evaluated directly on the two sufficient statistics.

    ``mixture`` is only consulted for its component count sanity check;
    the update itself is Equations (13)/(17) on ``resp_sum`` /
    ``weighted_sq`` followed by the same prune/merge post-processing as
    :func:`em_step`.
    """
    resp_sum = np.asarray(resp_sum, dtype=np.float64).reshape(-1)
    weighted_sq = np.asarray(weighted_sq, dtype=np.float64).reshape(-1)
    if resp_sum.shape[0] != mixture.n_components:
        raise ValueError(
            f"statistics carry {resp_sum.shape[0]} components, mixture "
            f"has {mixture.n_components}"
        )
    lam = precisions_from_stats(resp_sum, weighted_sq, a=a, b=b)
    pi = mixing_from_stats(resp_sum, alpha=alpha, prune=prune)
    keep = pi > 0.0
    if not np.all(keep) and keep.sum() >= 1:
        pi = pi[keep] / pi[keep].sum()
        lam = lam[keep]
    if merge and pi.size > 1:
        pi, lam = merge_similar_components(pi, lam, rel_tol=merge_rel_tol)
    return GaussianMixture(pi=pi, lam=lam)


def gm_loss_terms(
    mixture: GaussianMixture,
    w: np.ndarray,
    alpha: np.ndarray,
    a: float,
    b: float,
) -> float:
    """Negative log of the joint prior (the regularization part of Eq. (8)).

    Returns ``-log p(w, pi, lambda | alpha, a, b)`` up to additive
    constants that do not depend on ``(w, pi, lambda)``.  Useful for
    monitoring EM progress and in tests asserting that the M-step does
    not increase the objective.
    """
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    alpha = np.asarray(alpha, dtype=np.float64).reshape(-1)
    if alpha.size != mixture.n_components:
        # Components may have been pruned since the hyper-parameters were
        # laid out; the Dirichlet concentration is shared, so truncate.
        alpha = alpha[: mixture.n_components]
    log_lik = float(mixture.log_pdf(w).sum())
    with np.errstate(divide="ignore"):
        log_pi = np.log(np.maximum(mixture.pi, 1e-300))
    log_dirichlet = float(((alpha - 1.0) * log_pi).sum())
    log_gamma_prior = float(
        ((a - 1.0) * np.log(mixture.lam) - b * mixture.lam).sum()
    )
    return -(log_lik + log_dirichlet + log_gamma_prior)
