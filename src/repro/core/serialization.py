"""Checkpointing for the GM regularizer state.

Long training runs (the paper trains 160-200 epochs) need to stop and
resume; these helpers serialize a :class:`GMRegularizer`'s full state
(mixture, hyper-parameters, lazy schedule, counters, cached gradient)
to a plain JSON-compatible dict and restore it exactly, so a resumed
run continues byte-for-byte where it left off.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from .gaussian_mixture import GaussianMixture
from .gm_regularizer import GMRegularizer
from .hyperparams import GMHyperParams
from .lazy import LazyUpdateSchedule

__all__ = ["gm_regularizer_to_dict", "gm_regularizer_from_dict",
           "save_gm_regularizer", "load_gm_regularizer"]

_FORMAT_VERSION = 1


def gm_regularizer_to_dict(reg: GMRegularizer) -> Dict[str, Any]:
    """Serialize the regularizer to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "n_dimensions": reg.n_dimensions,
        "init_method": reg.init_method,
        "prune_components": reg.prune_components,
        "merge_components": reg.merge_components,
        "hyperparams": {
            "n_components": reg.hyperparams.n_components,
            "gamma": reg.hyperparams.gamma,
            "a_scale": reg.hyperparams.a_scale,
            "alpha_exponent": reg.hyperparams.alpha_exponent,
        },
        "schedule": {
            "model_interval": reg.schedule.model_interval,
            "gm_interval": reg.schedule.gm_interval,
            "eager_epochs": reg.schedule.eager_epochs,
        },
        "mixture": {
            "pi": reg.mixture.pi.tolist(),
            "lam": reg.mixture.lam.tolist(),
        },
        "epoch": reg._epoch,
        "estep_count": reg.estep_count,
        "mstep_count": reg.mstep_count,
        "density_evals": reg.density_evals,
        "fused": reg.fused,
        "kernel": reg.kernel,
        "compute_dtype": reg.compute_dtype.name,
        "accumulate_dtype": reg.accumulate_dtype.name,
        "cached_reg_grad": (
            None if reg._cached_reg_grad is None
            else reg._cached_reg_grad.tolist()
        ),
    }


def gm_regularizer_from_dict(state: Dict[str, Any]) -> GMRegularizer:
    """Reconstruct a regularizer from :func:`gm_regularizer_to_dict`."""
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported GM checkpoint format {version!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    hp = GMHyperParams(**state["hyperparams"])
    schedule = LazyUpdateSchedule(**state["schedule"])
    reg = GMRegularizer(
        n_dimensions=int(state["n_dimensions"]),
        hyperparams=hp,
        init_method=state["init_method"],
        schedule=schedule,
        prune_components=bool(state["prune_components"]),
        merge_components=bool(state["merge_components"]),
        # Checkpoints written before the fused hot path restore to the
        # (bit-identical) fused exact configuration.
        fused=bool(state.get("fused", True)),
        kernel=state.get("kernel", "exact"),
        compute_dtype=np.dtype(state.get("compute_dtype", "float64")),
        accumulate_dtype=np.dtype(state.get("accumulate_dtype", "float64")),
    )
    reg.mixture = GaussianMixture(
        pi=np.asarray(state["mixture"]["pi"]),
        lam=np.asarray(state["mixture"]["lam"]),
    )
    reg._epoch = int(state["epoch"])
    reg._n_estep = int(state["estep_count"])
    reg._n_mstep = int(state["mstep_count"])
    reg._n_density_evals = int(state.get("density_evals", 0))
    cached = state["cached_reg_grad"]
    reg._cached_reg_grad = (
        None if cached is None else np.asarray(cached, dtype=np.float64)
    )
    return reg


def save_gm_regularizer(reg: GMRegularizer, path: str) -> None:
    """Write the regularizer state to a JSON file."""
    with open(path, "w") as fh:
        json.dump(gm_regularizer_to_dict(reg), fh)


def load_gm_regularizer(path: str) -> GMRegularizer:
    """Read a regularizer state written by :func:`save_gm_regularizer`."""
    with open(path) as fh:
        return gm_regularizer_from_dict(json.load(fh))
