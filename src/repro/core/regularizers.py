"""Baseline regularization penalties evaluated in the paper.

The paper compares its adaptive GM regularizer against four fixed-form
baselines, each corresponding to a fixed parameter prior (Section II-A):

- **L1** (Lasso) — Laplacian prior, ``f(beta, w) = beta * sum |w|``.
- **L2** (ridge / weight decay) — Gaussian prior,
  ``f(beta, w) = (beta / 2) * sum w^2``.
- **Elastic-net** — convex combination of L1 and L2, controlled by
  ``l1_ratio`` as in the paper's Section V-C discussion.
- **Huber-norm** — piecewise L2-near-zero / L1-in-the-tails penalty with
  threshold ``mu`` (Zadorozhnyi et al., 2016).

Every regularizer exposes the same small interface used by both the
logistic-regression trainer and the neural-network trainer:

``penalty(w)``
    Scalar value of ``f(beta, w)`` added to the loss.
``gradient(w)``
    Element-wise gradient ``df/dw`` (the ``g_reg`` of Equation (10)).
``prepare(w, iteration)`` / ``update(w, iteration)`` / ``epoch_end(epoch)``
    Hooks invoked by the training loop around each SGD step, mirroring
    Algorithm 2's ordering (E-step, gradient, M-step, SGD step).
    Fixed-form regularizers ignore them; the adaptive GM regularizer
    uses them to run its lazily scheduled EM.

Keeping the hooks on the base class lets training loops treat fixed and
adaptive regularization uniformly, which is the paper's "easy-to-use
tool" design goal (Section IV).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Regularizer",
    "NoRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "ElasticNetRegularizer",
    "HuberRegularizer",
]


class Regularizer(abc.ABC):
    """Interface shared by all regularization penalties."""

    @abc.abstractmethod
    def penalty(self, w: np.ndarray) -> float:
        """Scalar penalty added to the training loss."""

    @abc.abstractmethod
    def gradient(self, w: np.ndarray) -> np.ndarray:
        """Element-wise gradient of :meth:`penalty` with respect to ``w``."""

    def prepare(self, w: np.ndarray, iteration: int) -> None:
        """Hook before the gradient of iteration ``iteration`` is formed.

        The GM regularizer refreshes its cached ``g_reg`` here when the
        lazy schedule says the E-step is due (Algorithm 2, lines 4-7).
        Fixed-form regularizers have nothing to do.
        """

    def update(self, w: np.ndarray, iteration: int) -> None:
        """Hook after the gradient is formed, before the SGD step.

        The GM regularizer runs its M-step here when due (Algorithm 2,
        lines 9-11).  Fixed-form regularizers have nothing to do.
        """

    def epoch_end(self, epoch: int) -> None:
        """Hook at the end of epoch ``epoch`` (0-based); default no-op."""

    def telemetry_state(self) -> dict:
        """JSON-serializable snapshot of any *adaptive* internal state.

        The telemetry subsystem (:mod:`repro.telemetry`) calls this to
        record how a regularizer evolves during training.  Fixed-form
        penalties have no evolving state and return ``{}``; the GM
        regularizer reports its current ``pi``/``lambda``, component
        count and EM counters (the Fig. 3 observables).
        """
        return {}


class NoRegularizer(Regularizer):
    """The unregularized baseline (first row of Table VI)."""

    def penalty(self, w: np.ndarray) -> float:
        """Always ``0.0`` — no penalty term."""
        return 0.0

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """A zero vector shaped like ``w``."""
        return np.zeros_like(w)

    def __repr__(self) -> str:
        return "NoRegularizer()"


class L1Regularizer(Regularizer):
    """L1-norm penalty ``beta * sum |w|`` (Laplacian prior).

    The gradient uses the subgradient ``sign(w)``, which is the standard
    SGD treatment and what the paper's L1 baseline does.
    """

    def __init__(self, strength: float) -> None:
        if strength < 0.0:
            raise ValueError(f"strength must be non-negative, got {strength}")
        self.strength = float(strength)

    def penalty(self, w: np.ndarray) -> float:
        """``strength * sum |w_m|``."""
        return self.strength * float(np.abs(w).sum())

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """Subgradient ``strength * sign(w)`` (zero at ``w_m = 0``)."""
        return self.strength * np.sign(w)

    def __repr__(self) -> str:
        return f"L1Regularizer(strength={self.strength})"


class L2Regularizer(Regularizer):
    """L2-norm penalty ``(beta / 2) * sum w^2`` (Gaussian prior).

    With this parameterization the gradient is ``beta * w``, so ``beta``
    plays exactly the role of the Gaussian precision ``lambda`` in the
    single-component special case of GM regularization (Section VI-A).
    """

    def __init__(self, strength: float) -> None:
        if strength < 0.0:
            raise ValueError(f"strength must be non-negative, got {strength}")
        self.strength = float(strength)

    def penalty(self, w: np.ndarray) -> float:
        """``(strength / 2) * sum w_m^2``."""
        return 0.5 * self.strength * float(np.square(w).sum())

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """``strength * w`` — the weight-decay term."""
        return self.strength * w

    def __repr__(self) -> str:
        return f"L2Regularizer(strength={self.strength})"


class ElasticNetRegularizer(Regularizer):
    """Elastic-net penalty mixing L1 and L2 (Zou & Hastie, 2005).

    ``penalty = strength * (l1_ratio * |w|_1 + (1 - l1_ratio)/2 * |w|_2^2)``

    ``l1_ratio`` in [0, 1] interpolates between pure L2 (0) and pure L1
    (1); the paper tunes it per dataset in Table VII.
    """

    def __init__(self, strength: float, l1_ratio: float = 0.5) -> None:
        if strength < 0.0:
            raise ValueError(f"strength must be non-negative, got {strength}")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError(f"l1_ratio must be in [0, 1], got {l1_ratio}")
        self.strength = float(strength)
        self.l1_ratio = float(l1_ratio)

    def penalty(self, w: np.ndarray) -> float:
        """The ``l1_ratio``-weighted mix of the L1 and L2 penalties."""
        l1 = float(np.abs(w).sum())
        l2 = float(np.square(w).sum())
        return self.strength * (self.l1_ratio * l1 + 0.5 * (1.0 - self.l1_ratio) * l2)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """The matching mix of ``sign(w)`` and ``w`` terms."""
        return self.strength * (
            self.l1_ratio * np.sign(w) + (1.0 - self.l1_ratio) * w
        )

    def __repr__(self) -> str:
        return (
            f"ElasticNetRegularizer(strength={self.strength}, "
            f"l1_ratio={self.l1_ratio})"
        )


class HuberRegularizer(Regularizer):
    """Huber-norm penalty: quadratic near zero, linear in the tails.

    For threshold ``mu > 0``::

        f(w) = strength * sum_m  h(w_m)
        h(x) = x^2 / (2 mu)          if |x| <= mu
             = |x| - mu / 2          otherwise

    This matches the paper's description of the Huber baseline: L2-like
    regularization for small parameters, L1-like for large ones, with a
    differentiable joint at ``|x| = mu``.
    """

    def __init__(self, strength: float, mu: float = 1.0) -> None:
        if strength < 0.0:
            raise ValueError(f"strength must be non-negative, got {strength}")
        if mu <= 0.0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.strength = float(strength)
        self.mu = float(mu)

    def penalty(self, w: np.ndarray) -> float:
        """Sum of the per-element Huber losses ``h(w_m)`` above."""
        a = np.abs(w)
        quad = np.square(w) / (2.0 * self.mu)
        lin = a - 0.5 * self.mu
        return self.strength * float(np.where(a <= self.mu, quad, lin).sum())

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """``w / mu`` inside the threshold, ``sign(w)`` outside."""
        a = np.abs(w)
        quad_grad = w / self.mu
        lin_grad = np.sign(w)
        return self.strength * np.where(a <= self.mu, quad_grad, lin_grad)

    def __repr__(self) -> str:
        return f"HuberRegularizer(strength={self.strength}, mu={self.mu})"
