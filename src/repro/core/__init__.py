"""Core of the reproduction: the adaptive GM regularization tool.

This package implements the paper's primary contribution — an adaptive
regularizer that learns a zero-mean Gaussian-Mixture prior over the model
parameters with a lightweight EM interleaved into SGD — together with the
four fixed-form baseline regularizers it is evaluated against.

Public surface
--------------
:class:`GMRegularizer`
    The adaptive tool (Sections III/IV of the paper).
:class:`GaussianMixture`
    Zero-mean 1-D mixture value object with stable densities and
    responsibilities.
:class:`GMHyperParams`
    The ``K / gamma / a / alpha`` policy of Section V-B1.
:class:`LazyUpdateSchedule`
    Algorithm 2's update-interval logic (``E``, ``Im``, ``Ig``).
:func:`initialize_mixture` and friends
    The identical / linear / proportional init strategies of Section V-E.
Baselines
    :class:`NoRegularizer`, :class:`L1Regularizer`, :class:`L2Regularizer`,
    :class:`ElasticNetRegularizer`, :class:`HuberRegularizer`.
"""

from .em import (
    em_step,
    em_step_from_responsibilities,
    em_step_from_stats,
    gm_loss_terms,
    suffstats_from_responsibilities,
    update_mixing_coefficients,
    update_precisions,
)
from .fusion import (
    EStepResult,
    Workspace,
    fused_estep,
    stacked_estep,
    stacked_prepare,
)
from .gaussian_mixture import GaussianMixture, log_normal_pdf
from .gm_regularizer import GMRegularizer
from .hyperparams import DEFAULT_GAMMA_GRID, GMHyperParams, gamma_grid
from .initialization import (
    INIT_METHODS,
    base_precision_from_weight_init,
    identical_precisions,
    initialize_mixture,
    linear_precisions,
    proportional_precisions,
)
from .guidance import Recommendation, make_recommended_regularizer, recommend
from .lazy import LazyUpdateSchedule
from .serialization import (
    gm_regularizer_from_dict,
    gm_regularizer_to_dict,
    load_gm_regularizer,
    save_gm_regularizer,
)
from .regularizers import (
    ElasticNetRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
    NoRegularizer,
    Regularizer,
)

__all__ = [
    "GaussianMixture",
    "log_normal_pdf",
    "GMRegularizer",
    "GMHyperParams",
    "gamma_grid",
    "DEFAULT_GAMMA_GRID",
    "LazyUpdateSchedule",
    "INIT_METHODS",
    "base_precision_from_weight_init",
    "identical_precisions",
    "linear_precisions",
    "proportional_precisions",
    "initialize_mixture",
    "em_step",
    "em_step_from_responsibilities",
    "em_step_from_stats",
    "suffstats_from_responsibilities",
    "gm_loss_terms",
    "update_precisions",
    "update_mixing_coefficients",
    "EStepResult",
    "Workspace",
    "fused_estep",
    "stacked_estep",
    "stacked_prepare",
    "Recommendation",
    "recommend",
    "make_recommended_regularizer",
    "gm_regularizer_to_dict",
    "gm_regularizer_from_dict",
    "save_gm_regularizer",
    "load_gm_regularizer",
    "Regularizer",
    "NoRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "ElasticNetRegularizer",
    "HuberRegularizer",
]
