"""Zero-mean one-dimensional Gaussian Mixture used as a parameter prior.

The paper (Section II-B, Equation (4)) models every dimension of the model
parameter vector ``w`` as an i.i.d. draw from a one-dimensional Gaussian
Mixture whose components are all centered at zero but have different
precisions (inverse variances)::

    p(x) = sum_k pi_k * N(x | 0, lambda_k)

This module provides :class:`GaussianMixture`, an immutable value object
holding the mixture state (``pi``, ``lam``), together with numerically
stable density and responsibility computations.  All probability work is
done in log space with a log-sum-exp reduction so that the very large
precisions the EM updates can produce (the paper reports ``lambda`` up to
~2000, Table IV) never overflow the density evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["GaussianMixture", "log_normal_pdf"]

# 0.5 * log(2 * pi), the constant part of the Gaussian log density.
_HALF_LOG_TWO_PI = 0.5 * math.log(2.0 * math.pi)

# Mixing coefficients below this value are treated as pruned components.
_PI_FLOOR = 1e-12


def log_normal_pdf(x: np.ndarray, precision: float) -> np.ndarray:
    """Log density of a zero-mean Gaussian with the given precision.

    Parameters
    ----------
    x:
        Points at which to evaluate the density (any shape).
    precision:
        Inverse variance ``lambda`` of the Gaussian; must be positive.

    Returns
    -------
    numpy.ndarray
        ``log N(x | 0, 1/precision)`` evaluated element-wise.
    """
    if precision <= 0.0:
        raise ValueError(f"precision must be positive, got {precision}")
    return 0.5 * math.log(precision) - _HALF_LOG_TWO_PI - 0.5 * precision * x * x


@dataclass(frozen=True)
class GaussianMixture:
    """Immutable zero-mean 1-D Gaussian Mixture (Equation (4) of the paper).

    Attributes
    ----------
    pi:
        Mixing coefficients, shape ``(K,)``; non-negative and summing to 1.
    lam:
        Component precisions (inverse variances), shape ``(K,)``; positive.
    """

    pi: np.ndarray
    lam: np.ndarray
    _log_pi: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        pi = np.asarray(self.pi, dtype=np.float64).reshape(-1)
        lam = np.asarray(self.lam, dtype=np.float64).reshape(-1)
        if pi.shape != lam.shape:
            raise ValueError(
                f"pi and lam must have the same length, got {pi.shape} and {lam.shape}"
            )
        if pi.size == 0:
            raise ValueError("mixture must have at least one component")
        if np.any(lam <= 0.0) or not np.all(np.isfinite(lam)):
            raise ValueError(f"all precisions must be positive and finite, got {lam}")
        if np.any(pi < 0.0) or not np.all(np.isfinite(pi)):
            raise ValueError(f"mixing coefficients must be non-negative, got {pi}")
        total = pi.sum()
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
            raise ValueError(f"mixing coefficients must sum to 1, got sum={total}")
        # Renormalize exactly so downstream log-sum-exp sees a true simplex.
        pi = pi / total
        object.__setattr__(self, "pi", pi)
        object.__setattr__(self, "lam", lam)
        with np.errstate(divide="ignore"):
            object.__setattr__(self, "_log_pi", np.log(np.maximum(pi, _PI_FLOOR)))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        """Number of mixture components ``K``."""
        return int(self.pi.size)

    @property
    def variances(self) -> np.ndarray:
        """Component variances ``1 / lambda_k``."""
        return 1.0 / self.lam

    def component_std(self) -> np.ndarray:
        """Component standard deviations ``lambda_k^{-1/2}``."""
        return 1.0 / np.sqrt(self.lam)

    # ------------------------------------------------------------------
    # Densities
    # ------------------------------------------------------------------
    def component_log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Per-component log densities.

        Parameters
        ----------
        x:
            Evaluation points, shape ``(M,)``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(M, K)`` with ``log N(x_m | 0, lambda_k)``.
        """
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        # (M, 1) broadcast against (K,) precisions.
        x2 = x[:, None] ** 2
        return (
            0.5 * np.log(self.lam)[None, :]
            - _HALF_LOG_TWO_PI
            - 0.5 * self.lam[None, :] * x2
        )

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Log mixture density ``log p(x)`` (Equation (4)), shape ``(M,)``."""
        weighted = self.component_log_pdf(x) + self._log_pi[None, :]
        return _logsumexp(weighted, axis=1)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Mixture density ``p(x)``, shape ``(M,)``."""
        return np.exp(self.log_pdf(x))

    # ------------------------------------------------------------------
    # Responsibilities (Equation (9))
    # ------------------------------------------------------------------
    def responsibilities(self, w: np.ndarray) -> np.ndarray:
        """Posterior component responsibilities ``r_k(w_m)``.

        Implements Equation (9) of the paper,

            r_k(w_m) = pi_k p_k(w_m) / sum_j pi_j p_j(w_m),

        computed in log space for stability.

        Parameters
        ----------
        w:
            Model parameter values, shape ``(M,)`` (any shape is flattened).

        Returns
        -------
        numpy.ndarray
            Responsibility matrix of shape ``(M, K)``; each row sums to 1.
        """
        w = np.asarray(w, dtype=np.float64).reshape(-1)
        weighted = self.component_log_pdf(w) + self._log_pi[None, :]
        log_norm = _logsumexp(weighted, axis=1)
        return np.exp(weighted - log_norm[:, None])

    def estep(
        self,
        w: np.ndarray,
        kernel: str = "exact",
        compute_dtype: Any = np.float64,
        workspace: Any = None,
    ) -> Any:
        """Fused E-step: responsibilities and ``g_reg`` in one evaluation.

        Convenience front-end to :func:`repro.core.fusion.fused_estep` —
        the per-component log-densities are evaluated once and shared
        between Equation (9) and Equation (10)'s second term.  Returns
        an :class:`~repro.core.fusion.EStepResult`; with the default
        ``kernel="exact"`` the responsibilities are bit-identical to
        :meth:`responsibilities`.
        """
        from .fusion import fused_estep

        return fused_estep(
            self,
            np.asarray(w, dtype=np.float64).reshape(-1),
            kernel=kernel,
            compute_dtype=np.dtype(compute_dtype),
            workspace=workspace,
        )

    # ------------------------------------------------------------------
    # Sampling and summaries
    # ------------------------------------------------------------------
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. samples from the mixture."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        components = rng.choice(self.n_components, size=size, p=self.pi)
        std = self.component_std()[components]
        return rng.standard_normal(size) * std

    def effective_components(self, tol: float = 1e-3) -> int:
        """Number of components whose mixing coefficient exceeds ``tol``.

        The paper observes that EM starting from K=4 collapses to one or
        two effective components; this is the counting rule used in the
        case studies (Tables IV and V).
        """
        return int(np.sum(self.pi > tol))

    def crossover_points(self) -> np.ndarray:
        """Positive abscissas where adjacent components have equal density.

        For the two-component case these are the points labelled A/B in
        Figure 3 of the paper: where ``pi_i N(x|0,lam_i)`` equals
        ``pi_j N(x|0,lam_j)``.  Components are compared pairwise after
        sorting by precision; only pairs with a real crossing contribute.
        """
        order = np.argsort(self.lam)
        points = []
        for a, b in zip(order[:-1], order[1:]):
            lam_low, lam_high = self.lam[a], self.lam[b]
            pi_low, pi_high = self.pi[a], self.pi[b]
            if pi_low <= _PI_FLOOR or pi_high <= _PI_FLOOR:
                continue
            delta = lam_high - lam_low
            if delta <= 0.0:
                continue
            # pi_h sqrt(lam_h) exp(-lam_h x^2/2) = pi_l sqrt(lam_l) exp(-lam_l x^2/2)
            log_ratio = (
                math.log(pi_high)
                + 0.5 * math.log(lam_high)
                - math.log(pi_low)
                - 0.5 * math.log(lam_low)
            )
            x2 = 2.0 * log_ratio / delta
            if x2 > 0.0:
                points.append(math.sqrt(x2))
        return np.asarray(sorted(points))

    def with_parameters(self, pi: np.ndarray, lam: np.ndarray) -> "GaussianMixture":
        """Return a new mixture with replaced parameters."""
        return GaussianMixture(pi=np.asarray(pi), lam=np.asarray(lam))


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable log-sum-exp along ``axis``."""
    amax = np.max(a, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(a - amax), axis=axis)) + np.squeeze(amax, axis=axis)
    return out
