"""GM initialization strategies evaluated in Section V-E of the paper.

Fitting a Gaussian Mixture is sensitive to its starting point.  The paper
derives the starting precisions from the precision of the *weight
initializer* of the model being regularized: every component must start
with a precision no larger than the weight-init precision so the initial
regularization is not too strong.  Three strategies are compared:

``identical``
    All component precisions equal the base precision ``min``.
``linear``
    Precisions linearly spaced in ``[min, K * min]`` (paper's best).
``proportional``
    Precision doubles per component: ``min * 2**k``.

The base precision ``min`` is one tenth of the weight-init precision
(paper: weight init precision 100 -> ``min = 10``; for ResNet the per-layer
He-init precision is used).  Mixing coefficients always start uniform.
"""

from __future__ import annotations

import numpy as np

from .gaussian_mixture import GaussianMixture

__all__ = [
    "INIT_METHODS",
    "base_precision_from_weight_init",
    "initialize_mixture",
    "identical_precisions",
    "linear_precisions",
    "proportional_precisions",
]

INIT_METHODS = ("identical", "linear", "proportional")

# Fraction of the weight-init precision used as the smallest GM precision.
_BASE_PRECISION_FRACTION = 0.1


def base_precision_from_weight_init(weight_init_std: float) -> float:
    """Base GM precision ``min`` from the model's weight-init std.

    The paper sets ``min`` to one tenth of the initialized-parameter
    precision, i.e. ``0.1 / std**2``.
    """
    if weight_init_std <= 0.0:
        raise ValueError(f"weight_init_std must be positive, got {weight_init_std}")
    return _BASE_PRECISION_FRACTION / (weight_init_std * weight_init_std)


def identical_precisions(base: float, n_components: int) -> np.ndarray:
    """All components share the base precision."""
    _check(base, n_components)
    return np.full(n_components, base, dtype=np.float64)


def linear_precisions(base: float, n_components: int) -> np.ndarray:
    """Precisions linearly spaced between ``base`` and ``K * base``."""
    _check(base, n_components)
    if n_components == 1:
        return np.array([base], dtype=np.float64)
    return np.linspace(base, n_components * base, n_components)


def proportional_precisions(base: float, n_components: int) -> np.ndarray:
    """Each precision is twice the previous one, starting from ``base``."""
    _check(base, n_components)
    return base * np.power(2.0, np.arange(n_components, dtype=np.float64))


_STRATEGIES = {
    "identical": identical_precisions,
    "linear": linear_precisions,
    "proportional": proportional_precisions,
}


def initialize_mixture(
    n_components: int,
    base_precision: float,
    method: str = "linear",
) -> GaussianMixture:
    """Build the starting :class:`GaussianMixture` for EM.

    Parameters
    ----------
    n_components:
        Initial number of components ``K`` (paper default 4).
    base_precision:
        Smallest component precision ``min``; see
        :func:`base_precision_from_weight_init`.
    method:
        One of ``"identical"``, ``"linear"``, ``"proportional"``.

    Returns
    -------
    GaussianMixture
        Mixture with uniform mixing coefficients and the chosen precisions.
    """
    if method not in _STRATEGIES:
        raise ValueError(
            f"unknown init method {method!r}; expected one of {INIT_METHODS}"
        )
    lam = _STRATEGIES[method](base_precision, n_components)
    pi = np.full(n_components, 1.0 / n_components, dtype=np.float64)
    return GaussianMixture(pi=pi, lam=lam)


def _check(base: float, n_components: int) -> None:
    if base <= 0.0:
        raise ValueError(f"base precision must be positive, got {base}")
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
