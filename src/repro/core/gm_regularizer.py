"""The adaptive GM regularization tool — the paper's core contribution.

:class:`GMRegularizer` plugs into any SGD training loop through the same
interface as the fixed-form baselines (:mod:`repro.core.regularizers`),
but instead of a fixed penalty it maintains a zero-mean Gaussian Mixture
prior over the parameters and *adapts it during training*:

- ``prepare(w, iteration)`` refreshes the cached ``g_reg`` (the E-step,
  Equation (9) + the second term of Equation (10)) when the
  :class:`~repro.core.lazy.LazyUpdateSchedule` says it is due.
- ``gradient(w)`` returns ``g_reg``, reusing the cache between E-steps.
- ``update(w, iteration)`` runs the M-step (Equations (13)/(17)) when
  due — Algorithm 2's exact ordering: E-step, gradient, M-step, SGD.

The three key functions named in Section IV of the paper are exposed
verbatim (PEP 8-cased): :meth:`cal_responsibility`,
:meth:`calc_reg_grad` and :meth:`upt_gm_param`.

**Fused hot path.**  Equations (9) and (10) share the per-component
log-densities, and the M-step consumes the very responsibilities the
E-step just produced.  With ``fused=True`` (the default) the
regularizer evaluates the densities **once** per due iteration through
:mod:`repro.core.fusion` and reuses the responsibility matrix for both
the cached ``g_reg`` and the next due M-step; the legacy double
evaluation is preserved under ``fused=False`` as the benchmark
baseline.  The default ``kernel="exact"`` reproduces the unfused
arithmetic bit-for-bit; ``kernel="fast"`` opts into the single-``exp``
buffered kernel (optionally float32) measured by
``benchmarks/bench_hotpath_fusion.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .em import (
    RegularizerEMState,
    em_step,
    em_step_from_stats,
    gm_loss_terms,
    suffstats_from_responsibilities,
)
from .fusion import KERNELS, EStepResult, Workspace, fused_estep
from .gaussian_mixture import GaussianMixture
from .hyperparams import GMHyperParams
from .initialization import base_precision_from_weight_init, initialize_mixture
from .lazy import LazyUpdateSchedule
from .regularizers import Regularizer

__all__ = ["GMRegularizer"]


class GMRegularizer(Regularizer):
    """Adaptive Gaussian-Mixture regularizer (Sections III and IV).

    Parameters
    ----------
    n_dimensions:
        ``M`` — number of parameter dimensions this instance regularizes
        (for deep models, one instance per layer; Section V-B1).
    weight_init_std:
        Standard deviation used to initialize the regularized weights;
        determines the base GM precision (Section V-E).
    hyperparams:
        The :class:`~repro.core.hyperparams.GMHyperParams` policy; the
        default follows the paper (K=4, ``b = gamma*M``, ``alpha = M^0.5``).
    init_method:
        GM precision initialization: ``"identical"``, ``"linear"``
        (paper's best, the default) or ``"proportional"``.
    schedule:
        Lazy-update schedule (Algorithm 2).  The default of
        ``Im = Ig = 1`` reproduces the eager Algorithm 1.
    prune_components:
        Whether the M-step prunes components whose mixing coefficient is
        driven to zero (paper behaviour; disable for ablation).
    merge_components:
        Whether components whose precisions converge to the same value
        are merged — the mechanism by which K=4 collapses to the 1-2
        components reported in Tables IV/V (disable for ablation).
    fused:
        When True (default) the E-step densities are evaluated once per
        due iteration and the responsibility matrix is shared between
        ``g_reg`` and the next due M-step.  ``False`` restores the
        legacy double evaluation (the benchmark baseline); the training
        trajectory is bit-identical either way under the default
        ``kernel="exact"``.
    kernel:
        ``"exact"`` (default, bit-identical to unfused) or ``"fast"``
        (single-``exp`` buffered kernel; see :mod:`repro.core.fusion`).
    compute_dtype:
        Dtype of the fast kernel's density evaluation — ``np.float64``
        (default) or ``np.float32`` for the reduced-precision fast path.
    accumulate_dtype:
        Dtype in which M-step sufficient statistics are accumulated when
        reusing fused responsibilities; float64 by default so float32
        responsibilities still produce float64-quality GM updates.

    Examples
    --------
    >>> import numpy as np
    >>> reg = GMRegularizer(n_dimensions=100, weight_init_std=0.1)
    >>> w = np.random.default_rng(0).normal(0.0, 0.1, size=100)
    >>> reg.prepare(w, iteration=0)  # E-step: refresh g_reg cache
    >>> g = reg.gradient(w)          # g_reg of Equation (10)
    >>> reg.update(w, iteration=0)   # M-step: refresh pi and lambda
    """

    def __init__(
        self,
        n_dimensions: int,
        weight_init_std: float = 0.1,
        hyperparams: Optional[GMHyperParams] = None,
        init_method: str = "linear",
        schedule: Optional[LazyUpdateSchedule] = None,
        prune_components: bool = True,
        merge_components: bool = True,
        fused: bool = True,
        kernel: str = "exact",
        compute_dtype: Any = np.float64,
        accumulate_dtype: Any = np.float64,
    ) -> None:
        if n_dimensions < 1:
            raise ValueError(f"n_dimensions must be >= 1, got {n_dimensions}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.fused = bool(fused)
        self.kernel = kernel
        self.compute_dtype = np.dtype(compute_dtype)
        self.accumulate_dtype = np.dtype(accumulate_dtype)
        if kernel == "exact" and self.compute_dtype != np.dtype(np.float64):
            raise ValueError(
                "the exact kernel is float64-only; use kernel='fast' for "
                f"compute_dtype={self.compute_dtype}"
            )
        self.n_dimensions = int(n_dimensions)
        self.hyperparams = hyperparams or GMHyperParams()
        self.schedule = schedule or LazyUpdateSchedule()
        self.prune_components = bool(prune_components)
        self.merge_components = bool(merge_components)
        self.init_method = init_method

        self._a = self.hyperparams.gamma_shape(self.n_dimensions)
        self._b = self.hyperparams.gamma_rate(self.n_dimensions)
        self._alpha = self.hyperparams.dirichlet_alpha(self.n_dimensions)

        base = base_precision_from_weight_init(weight_init_std)
        self.mixture = initialize_mixture(
            self.hyperparams.n_components, base, method=init_method
        )

        self._epoch = 0
        self._cached_reg_grad: Optional[np.ndarray] = None
        self._n_estep = 0
        self._n_mstep = 0
        # One (and only one) density evaluation per fused iteration: the
        # fix for the double-count is observable through this counter.
        self._n_density_evals = 0
        self._workspace = Workspace()
        # E-step stash: the responsibility matrix from the last fused
        # E-step, valid for M-step reuse only while the stamped
        # iteration, mixture object and parameter array are all
        # unchanged (Algorithm 2 runs E-step and M-step on the same w
        # before SGD mutates it).
        self._estep_resp: Optional[np.ndarray] = None
        self._estep_iteration: Optional[int] = None
        self._estep_mixture: Optional[GaussianMixture] = None
        self._estep_w_ref: Optional[np.ndarray] = None
        self._pending_resp: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Key functions of the tool (Section IV naming)
    # ------------------------------------------------------------------
    def cal_responsibility(self, w: np.ndarray) -> np.ndarray:
        """``calResponsibility()``: responsibilities ``r_k(w_m)`` (Eq. (9))."""
        return self.mixture.responsibilities(np.asarray(w).reshape(-1))

    def calc_reg_grad(self, w: np.ndarray) -> np.ndarray:
        """``calcRegGrad()``: fresh ``g_reg`` (second term of Eq. (10)).

        ``g_reg_m = sum_k r_k(w_m) * lambda_k * w_m`` — a responsibility-
        weighted precision applied to each parameter, which is what gives
        small parameters strong (high-precision component) regularization
        and large parameters weak regularization.
        """
        flat = np.asarray(w, dtype=np.float64).reshape(-1)
        if flat.size != self.n_dimensions:
            raise ValueError(
                f"expected {self.n_dimensions} parameter dimensions, got {flat.size}"
            )
        if self.fused:
            result = fused_estep(
                self.mixture,
                flat,
                kernel=self.kernel,
                compute_dtype=self.compute_dtype,
                workspace=self._workspace,
            )
            self._stash_estep(result.responsibilities, w)
            grad = result.gradient
        else:
            resp = self.mixture.responsibilities(flat)
            effective_precision = resp @ self.mixture.lam
            grad = effective_precision * flat
        self._n_estep += 1
        self._n_density_evals += 1
        return grad.reshape(np.asarray(w).shape)

    def upt_gm_param(self, w: np.ndarray) -> None:
        """``uptGMParam()``: one M-step on ``pi``/``lambda`` (Eqs. (13),(17)).

        When :meth:`update` has staged fresh fused responsibilities for
        this exact ``(mixture, w, iteration)`` the M-step is evaluated
        on them directly (no second density evaluation — the fusion);
        otherwise it performs the full E+M step of
        :func:`~repro.core.em.em_step`.
        """
        flat = np.asarray(w, dtype=np.float64).reshape(-1)
        alpha = self._alpha[: self.mixture.n_components]
        resp = self._take_pending_responsibilities()
        if resp is not None and resp.shape[1] == self.mixture.n_components:
            resp_sum, weighted_sq = suffstats_from_responsibilities(
                resp, flat, accumulate_dtype=self.accumulate_dtype
            )
            self.mixture = em_step_from_stats(
                self.mixture,
                resp_sum,
                weighted_sq,
                alpha=alpha,
                a=self._a,
                b=self._b,
                prune=self.prune_components,
                merge=self.merge_components,
            )
        else:
            self._n_density_evals += 1
            self.mixture = em_step(
                self.mixture,
                flat,
                alpha=alpha,
                a=self._a,
                b=self._b,
                prune=self.prune_components,
                merge=self.merge_components,
            )
        self._n_mstep += 1

    # ------------------------------------------------------------------
    # Regularizer interface used by the trainers
    # ------------------------------------------------------------------
    def penalty(self, w: np.ndarray) -> float:
        """Negative log prior of ``w`` under the current mixture.

        Monitoring value only — training uses :meth:`gradient`, matching
        the paper where the regularizer contributes through ``g_reg``.
        """
        flat = np.asarray(w, dtype=np.float64).reshape(-1)
        return -float(self.mixture.log_pdf(flat).sum())

    def prepare(self, w: np.ndarray, iteration: int) -> None:
        """E-step of Algorithm 2 (lines 4-7), honouring the lazy schedule.

        Refreshes the cached ``g_reg`` from the current parameters when
        the schedule says this iteration performs the E-step; otherwise
        the stale cache is kept and reused by :meth:`gradient`.
        """
        if self.estep_due(iteration):
            grad = self.calc_reg_grad(w)
            self._cached_reg_grad = np.asarray(grad, dtype=np.float64).reshape(-1)
            self._estep_iteration = iteration

    def estep_due(self, iteration: int) -> bool:
        """Whether :meth:`prepare` would refresh ``g_reg`` this iteration.

        True when there is no cached gradient yet or the lazy schedule
        marks this iteration for an E-step.  The trainer's stacked pass
        (:func:`repro.core.fusion.stacked_prepare`) uses this to decide
        which regularizers join the batched kernel invocation.
        """
        return self._cached_reg_grad is None or (
            self.schedule.should_update_reg_gradient(iteration, self._epoch)
        )

    def adopt_estep(
        self, w: np.ndarray, iteration: int, result: EStepResult
    ) -> None:
        """Install an externally computed fused E-step result.

        The stacked multi-layer pass evaluates one kernel for many
        regularizers and hands each its slice here; the effect (cache,
        stash, counters) is identical to :meth:`prepare` performing the
        E-step itself on a due iteration.
        """
        flat_size = int(np.asarray(w).size)
        if flat_size != self.n_dimensions:
            raise ValueError(
                f"expected {self.n_dimensions} parameter dimensions, "
                f"got {flat_size}"
            )
        if result.gradient.shape != (self.n_dimensions,):
            raise ValueError(
                f"gradient has shape {result.gradient.shape}, expected "
                f"({self.n_dimensions},)"
            )
        self._cached_reg_grad = result.gradient
        self._stash_estep(result.responsibilities, w)
        self._estep_iteration = iteration
        self._n_estep += 1
        self._n_density_evals += 1

    def _stash_estep(self, resp: np.ndarray, w: np.ndarray) -> None:
        """Record the responsibility matrix for same-iteration M-step reuse.

        The stash may be a view into the fused kernel's workspace buffer
        — it stays valid exactly as long as the freshness conditions
        checked by :meth:`update` hold (next E-step overwrites it, next
        M-step replaces the mixture object).
        """
        self._estep_resp = resp
        self._estep_iteration = None
        self._estep_mixture = self.mixture
        self._estep_w_ref = w

    def _take_pending_responsibilities(self) -> Optional[np.ndarray]:
        """Consume responsibilities staged by :meth:`update` (single use)."""
        resp = self._pending_resp
        self._pending_resp = None
        return resp

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """``g_reg`` — the cached value from the last E-step.

        On the very first call (no cache yet) a fresh gradient is
        computed, so the regularizer also works outside a training loop.
        """
        if self._cached_reg_grad is None:
            self.prepare(w, iteration=0)
        if self._cached_reg_grad is None:
            raise RuntimeError(
                "prepare() did not populate the regularizer gradient cache"
            )
        return self._cached_reg_grad.reshape(np.asarray(w).shape)

    def update(self, w: np.ndarray, iteration: int) -> None:
        """M-step of Algorithm 2 (lines 9-11), honouring the lazy schedule.

        If this iteration's E-step stashed responsibilities for the same
        mixture and the same parameter array, the M-step reuses them
        instead of re-evaluating the densities — the fused hot path.
        Any mismatch (a lazy schedule with ``Im != Ig``, a restored
        snapshot, a different array) falls back to the full E+M step.
        """
        if self.schedule.should_update_gm(iteration, self._epoch):
            if (
                self.fused
                and self._estep_resp is not None
                and self._estep_iteration == iteration
                and self._estep_mixture is self.mixture
                and self._estep_w_ref is w
            ):
                self._pending_resp = self._estep_resp
            self.upt_gm_param(w)

    def epoch_end(self, epoch: int) -> None:
        """Advance the epoch counter used by the lazy schedule."""
        self._epoch = epoch + 1

    def telemetry_state(self) -> Dict[str, Any]:
        """Current mixture state for telemetry (Fig. 3 observables).

        ``n_components`` is the *effective* component count after the
        M-step's pruning/merging — the quantity that collapses from
        ``K = 4`` toward the 1-2 components of Tables IV/V.
        """
        return {
            "pi": [float(p) for p in self.mixture.pi],
            "lam": [float(lam_k) for lam_k in self.mixture.lam],
            "n_components": int(self.mixture.n_components),
            "estep_count": self._n_estep,
            "mstep_count": self._n_mstep,
            "density_evals": self._n_density_evals,
            "fused": self.fused,
            "kernel": self.kernel,
        }

    # ------------------------------------------------------------------
    # Typed EM state snapshot/restore (TrainerState's per-parameter unit)
    # ------------------------------------------------------------------
    def em_state(self) -> RegularizerEMState:
        """Snapshot ``pi``/``lambda`` and the refresh counters.

        This is the sanctioned way to capture a regularizer's EM state —
        trainers and checkpoint code build
        :class:`~repro.optim.trainer.TrainerState` from these snapshots
        instead of reaching into private fields.  Subclasses carrying
        extra state (the online trainer's decayed sufficient statistics)
        extend the returned record.
        """
        return RegularizerEMState(
            pi=self.mixture.pi.copy(),
            lam=self.mixture.lam.copy(),
            estep_count=self._n_estep,
            mstep_count=self._n_mstep,
        )

    def load_em_state(self, state: RegularizerEMState) -> None:
        """Restore a snapshot taken by :meth:`em_state`.

        The cached ``g_reg`` is invalidated so the next
        :meth:`prepare` recomputes it under the restored mixture.
        """
        self.mixture = GaussianMixture(
            pi=np.asarray(state.pi, dtype=np.float64),
            lam=np.asarray(state.lam, dtype=np.float64),
        )
        self._n_estep = int(state.estep_count)
        self._n_mstep = int(state.mstep_count)
        self._cached_reg_grad = None
        self._estep_resp = None
        self._estep_iteration = None
        self._estep_mixture = None
        self._estep_w_ref = None
        self._pending_resp = None

    # ------------------------------------------------------------------
    # Introspection helpers used by the experiments and tests
    # ------------------------------------------------------------------
    @property
    def pi(self) -> np.ndarray:
        """Current mixing coefficients of the learned GM."""
        return self.mixture.pi

    @property
    def lam(self) -> np.ndarray:
        """Current precisions of the learned GM."""
        return self.mixture.lam

    @property
    def estep_count(self) -> int:
        """Number of E-step (responsibility + ``g_reg``) evaluations so far."""
        return self._n_estep

    @property
    def mstep_count(self) -> int:
        """Number of M-step (GM parameter) updates so far."""
        return self._n_mstep

    @property
    def density_evals(self) -> int:
        """Number of per-component density evaluations over ``w`` so far.

        The observable fixed by the fusion: a fused iteration running
        both an E-step and an M-step evaluates the densities once;
        the legacy (``fused=False``) path evaluates them once per
        sub-phase, i.e. twice.
        """
        return self._n_density_evals

    def regularization_loss(self, w: np.ndarray) -> float:
        """Full ``-log p(w, pi, lambda | alpha, a, b)`` for monitoring."""
        alpha = self._alpha[: self.mixture.n_components]
        return gm_loss_terms(
            self.mixture, np.asarray(w).reshape(-1), alpha, self._a, self._b
        )

    def __repr__(self) -> str:
        return (
            f"GMRegularizer(M={self.n_dimensions}, K={self.mixture.n_components}, "
            f"init={self.init_method!r}, schedule={self.schedule})"
        )
