"""Hyper-parameter policy for the GM regularizer (paper Section V-B1).

The paper emphasizes that the tool is "easy-to-use" because the GM
hyper-parameters follow a simple rule driven only by ``M``, the number of
model-parameter dimensions being regularized:

- ``K`` (initial component count) is fixed to 4; EM prunes it to 1-2.
- ``b = gamma * M`` with ``gamma`` drawn from a small published grid.
- ``a = 1 + a_scale * b`` with ``a_scale`` either 1e-2 or 1e-1 (the paper
  notes ``a`` is "not a significant parameter").
- ``alpha_k = M ** alpha_exponent`` shared across components; the
  exponent is the x-axis of Figure 4 with best value 0.5.

:class:`GMHyperParams` freezes one concrete setting; :func:`gamma_grid`
exposes the search grid used for cross-validation in Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GMHyperParams", "gamma_grid", "DEFAULT_GAMMA_GRID"]

# Parameter grid for gamma from Section V-B1 of the paper.
DEFAULT_GAMMA_GRID = (0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05)


def gamma_grid() -> tuple:
    """The paper's search grid for the Gamma-prior rate coefficient."""
    return DEFAULT_GAMMA_GRID


@dataclass(frozen=True)
class GMHyperParams:
    """One concrete GM hyper-parameter setting.

    Attributes
    ----------
    n_components:
        Initial number of Gaussian components ``K`` (paper default 4).
    gamma:
        Coefficient of ``M`` in the Gamma rate ``b = gamma * M``.
    a_scale:
        Coefficient in ``a = 1 + a_scale * b`` (paper: 1e-2 or 1e-1).
    alpha_exponent:
        Dirichlet parameters are ``alpha_k = M ** alpha_exponent`` (paper
        default 0.5; Figure 4 sweeps {0.3, 0.5, 0.7, 0.9}).
    """

    n_components: int = 4
    gamma: float = 0.005
    a_scale: float = 0.01
    alpha_exponent: float = 0.5

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {self.n_components}")
        if self.gamma <= 0.0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")
        if self.a_scale < 0.0:
            raise ValueError(f"a_scale must be non-negative, got {self.a_scale}")
        if self.alpha_exponent < 0.0:
            raise ValueError(
                f"alpha_exponent must be non-negative, got {self.alpha_exponent}"
            )

    def gamma_rate(self, n_dimensions: int) -> float:
        """Gamma-prior rate ``b = gamma * M`` for a layer with ``M`` weights."""
        _check_dimensions(n_dimensions)
        return self.gamma * float(n_dimensions)

    def gamma_shape(self, n_dimensions: int) -> float:
        """Gamma-prior shape ``a = 1 + a_scale * b``."""
        return 1.0 + self.a_scale * self.gamma_rate(n_dimensions)

    def dirichlet_alpha(self, n_dimensions: int) -> np.ndarray:
        """Dirichlet concentration vector ``alpha_k = M ** alpha_exponent``.

        Returned per component, shape ``(K,)``.  Values below 1 (typical,
        since ``M ** 0.5`` can still be < M and the update subtracts 1)
        encourage component pruning via the ``alpha_k - 1`` term of
        Equation (17).
        """
        _check_dimensions(n_dimensions)
        value = float(n_dimensions) ** self.alpha_exponent
        return np.full(self.n_components, value, dtype=np.float64)


def _check_dimensions(n_dimensions: int) -> None:
    if n_dimensions < 1:
        raise ValueError(f"n_dimensions must be >= 1, got {n_dimensions}")
