"""Optimization: SGD with momentum and the Algorithm 1/2 training loops."""

from .schedules import ConstantLR, ExponentialDecayLR, LRSchedule, StepDecayLR
from .sgd import SGD
from .trainer import EpochRecord, Parameter, TrainableModel, Trainer, TrainingHistory

__all__ = [
    "SGD",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "ExponentialDecayLR",
    "Parameter",
    "TrainableModel",
    "Trainer",
    "TrainingHistory",
    "EpochRecord",
]
