"""Learning-rate schedules.

The paper uses constant learning rates for its headline numbers but the
ResNet recipe it follows (He et al., 2016) decays the rate at fixed
epochs; both are provided so the deep-learning experiments can reproduce
either behaviour.
"""

from __future__ import annotations

import abc
from typing import Dict

__all__ = ["LRSchedule", "ConstantLR", "StepDecayLR", "ExponentialDecayLR"]


class LRSchedule(abc.ABC):
    """Maps an epoch index to a learning rate."""

    @abc.abstractmethod
    def lr_at(self, epoch: int) -> float:
        """Learning rate to use during ``epoch`` (0-based)."""


class ConstantLR(LRSchedule):
    """A fixed learning rate, the paper's default."""

    def __init__(self, lr: float):
        if lr <= 0.0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def lr_at(self, epoch: int) -> float:
        _check_epoch(epoch)
        return self.lr


class StepDecayLR(LRSchedule):
    """Piecewise-constant decay at given epoch milestones.

    Parameters
    ----------
    base_lr:
        Learning rate before the first milestone.
    milestones:
        Mapping from epoch index to the multiplicative factor applied
        from that epoch on (e.g. ``{80: 0.1, 120: 0.1}`` for the ResNet
        recipe: divide by 10 at epochs 80 and 120).
    """

    def __init__(self, base_lr: float, milestones: Dict[int, float]):
        if base_lr <= 0.0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        for epoch, factor in milestones.items():
            if epoch < 0:
                raise ValueError(f"milestone epochs must be >= 0, got {epoch}")
            if factor <= 0.0:
                raise ValueError(f"milestone factors must be positive, got {factor}")
        self.base_lr = float(base_lr)
        self.milestones = dict(sorted(milestones.items()))

    def lr_at(self, epoch: int) -> float:
        _check_epoch(epoch)
        lr = self.base_lr
        for milestone, factor in self.milestones.items():
            if epoch >= milestone:
                lr *= factor
        return lr


class ExponentialDecayLR(LRSchedule):
    """``lr = base_lr * decay**epoch``."""

    def __init__(self, base_lr: float, decay: float):
        if base_lr <= 0.0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.base_lr = float(base_lr)
        self.decay = float(decay)

    def lr_at(self, epoch: int) -> float:
        _check_epoch(epoch)
        return self.base_lr * self.decay**epoch


def _check_epoch(epoch: int) -> None:
    if epoch < 0:
        raise ValueError(f"epoch must be >= 0, got {epoch}")
