"""Training loop implementing Algorithms 1 and 2 of the paper.

The trainer interleaves SGD on the model parameters with the lightweight
EM on the GM parameters.  Per mini-batch iteration the exact Algorithm 2
ordering is followed:

1. *E-step* (lazy): each adaptive regularizer refreshes its cached
   ``g_reg`` (``Regularizer.prepare``).
2. The data-misfit gradient ``g_ll`` is computed by the model and the
   regularizer gradients are added (Equation (10)).  Because the models
   report the *mean* per-sample loss while the MAP objective (Equation
   (8)) counts the prior once against a likelihood summed over all ``N``
   training samples, the regularizer gradient is scaled by ``1/N``.
   This is the standard weight-decay normalization and is what makes
   the paper's learned precisions (``lambda`` up to ~2000, Table IV)
   compatible with its learning rates: the per-step decay is
   ``lr * lambda / N``.
3. *M-step* (lazy): the GM parameters are updated
   (``Regularizer.update``).
4. *SGD step*: the optimizer applies the combined gradient.

The same loop trains logistic regression and the deep networks; the
model only has to satisfy :class:`TrainableModel`.

**Observability.**  Each of the four phases above runs inside a named
phase timer of the trainer's :class:`~repro.telemetry.metrics.MetricsRegistry`
(``phase/estep``, ``phase/grad``, ``phase/mstep``, ``phase/sgd``), so
the lazy-update savings of Figs. 5-7 are directly measurable per phase
rather than inferred from whole-epoch wall-clock.  ``fit`` additionally
accepts :class:`~repro.telemetry.events.Callback` observers which are
fired around epochs/batches/EM-steps without changing the Algorithm 2
ordering — telemetry reads state the loop already produced, so enabling
it leaves the losses bit-identical.  All timing (including the per-epoch
:class:`EpochRecord`) uses an injectable clock, making timing-dependent
tests deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..core.em import RegularizerEMState
from ..core.fusion import Workspace, stacked_prepare
from ..core.regularizers import Regularizer
from ..rng import default_generator
from ..telemetry.events import (
    BatchInfo,
    Callback,
    CallbackList,
    EMStepInfo,
    RunContext,
)
from ..telemetry.metrics import MetricsRegistry, PhaseTimer
from ..telemetry.runtime import default_callbacks
from ..telemetry.trace import start_span
from .schedules import ConstantLR, LRSchedule
from .sgd import SGD

__all__ = [
    "Parameter",
    "TrainableModel",
    "EpochRecord",
    "TrainingHistory",
    "TrainerState",
    "capture_trainer_state",
    "restore_trainer_state",
    "Trainer",
]


@dataclass
class Parameter:
    """One trainable tensor plus its (optional) regularizer.

    Deep models attach a separate :class:`GMRegularizer` to each layer's
    weights (per-layer GMs, Section V-B1) and leave biases and batch-norm
    scales unregularized, mirroring standard weight-decay practice.
    """

    name: str
    value: np.ndarray
    regularizer: Optional[Regularizer] = None


class TrainableModel(Protocol):
    """What the trainer needs from a model."""

    def parameters(self) -> Sequence[Parameter]:
        """All trainable parameters, in a stable order."""
        ...

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Data-misfit loss and its gradients aligned with ``parameters()``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard label predictions for accuracy evaluation."""
        ...


@dataclass
class EpochRecord:
    """Per-epoch training telemetry."""

    epoch: int
    train_loss: float
    elapsed_seconds: float
    cumulative_seconds: float
    val_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` plus convergence metadata."""

    records: List[EpochRecord] = field(default_factory=list)
    converged_epoch: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        """Total wall-clock training time."""
        return self.records[-1].cumulative_seconds if self.records else 0.0

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].train_loss

    def losses(self) -> np.ndarray:
        """Per-epoch training losses."""
        return np.asarray([r.train_loss for r in self.records])

    def cumulative_times(self) -> np.ndarray:
        """Cumulative wall-clock seconds after each epoch (Fig. 5/7 series)."""
        return np.asarray([r.cumulative_seconds for r in self.records])


@dataclass(frozen=True)
class TrainerState:
    """Typed snapshot of a trainer's resumable EM state.

    Holds the global iteration counter plus, per regularized parameter,
    a :class:`~repro.core.em.RegularizerEMState` (``pi``/``lambda``, the
    refresh counters and — for online trainers — the decayed sufficient
    statistics).  Both :class:`Trainer` and
    :class:`~repro.online.trainer.OnlineTrainer` produce and consume
    this one type through :func:`capture_trainer_state` /
    :func:`restore_trainer_state`, so checkpoint restores and
    batch-to-online handoffs share a single code path instead of
    reaching into private regularizer fields.
    """

    iteration: int
    em: Dict[str, RegularizerEMState]

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form for checkpoint sidecar files."""
        return {
            "iteration": int(self.iteration),
            "em": {
                name: state.to_jsonable() for name, state in self.em.items()
            },
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "TrainerState":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            iteration=int(payload["iteration"]),
            em={
                name: RegularizerEMState.from_jsonable(state)
                for name, state in payload.get("em", {}).items()
            },
        )


def capture_trainer_state(model: TrainableModel, iteration: int) -> TrainerState:
    """Snapshot every regularizer's EM state into a :class:`TrainerState`.

    Parameters without a regularizer (or with one that does not expose
    ``em_state()``, e.g. the fixed-form baselines) are skipped — there
    is nothing EM-resumable about them.
    """
    em: Dict[str, RegularizerEMState] = {}
    for param in model.parameters():
        snapshot = getattr(param.regularizer, "em_state", None)
        if callable(snapshot):
            em[param.name] = snapshot()
    return TrainerState(iteration=int(iteration), em=em)


def restore_trainer_state(model: TrainableModel, state: TrainerState) -> None:
    """Load a :class:`TrainerState` back into the model's regularizers.

    Parameter names present in the snapshot but absent from the model
    (or vice versa) are ignored, mirroring the lenient ``strict=False``
    checkpoint semantics: restoring a partial snapshot resumes what it
    can.
    """
    for param in model.parameters():
        snapshot = state.em.get(param.name)
        if snapshot is None:
            continue
        restore = getattr(param.regularizer, "load_em_state", None)
        if callable(restore):
            restore(snapshot)


#: The Algorithm 2 phases, timed separately as ``phase/<name>``.
PHASES = ("estep", "grad", "mstep", "sgd")


class Trainer:
    """Mini-batch SGD + interleaved EM (Algorithms 1 and 2).

    Parameters
    ----------
    model:
        Any :class:`TrainableModel`.
    lr:
        Learning rate, or an :class:`LRSchedule` for decaying rates.
    momentum:
        SGD momentum (paper: 0.9 for CNNs, 0 for logistic regression).
    batch_size:
        Mini-batch size; the number of mini-batches per epoch is the
        ``B`` of Algorithm 2.
    shuffle:
        Whether to reshuffle the training set every epoch.
    convergence_tol:
        When set, training stops early once the relative improvement of
        the epoch loss falls below this tolerance for ``patience``
        consecutive epochs ("while not converged" in Algorithms 1/2).
    patience:
        Consecutive low-improvement epochs required to declare
        convergence.
    clock:
        Monotonic time source used for every duration this trainer
        records (epoch records and phase timers).  Injectable so tests
        can use a fake clock instead of sleeping; defaults to
        :func:`time.perf_counter`.
    metrics:
        The :class:`~repro.telemetry.metrics.MetricsRegistry` receiving
        phase timers and counters.  A fresh registry (sharing ``clock``)
        is created when omitted.  The registry is reset at the start of
        every :meth:`fit`.
    stacked_em:
        When True (default) the per-parameter E-step loop is routed
        through :func:`repro.core.fusion.stacked_prepare`, which batches
        every due fused GM regularizer into one stacked kernel
        invocation per iteration (bit-identical under the default exact
        kernel).  ``False`` keeps the plain per-parameter loop.
    """

    def __init__(
        self,
        model: TrainableModel,
        lr: float | LRSchedule = 0.1,
        momentum: float = 0.0,
        batch_size: int = 32,
        shuffle: bool = True,
        convergence_tol: Optional[float] = None,
        patience: int = 3,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricsRegistry] = None,
        stacked_em: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.model = model
        self.schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(float(lr))
        self.momentum = float(momentum)
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.convergence_tol = convergence_tol
        self.patience = int(patience)
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry(clock=clock)
        self.stacked_em = bool(stacked_em)
        self._em_workspace = Workspace()
        self._iteration = 0
        self._reg_scale = 1.0

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        rng: Optional[np.random.Generator] = None,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        augment=None,
        callbacks: Optional[Sequence[Callback]] = None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs (early-stops on convergence).

        Parameters
        ----------
        x, y:
            Training inputs and integer labels; first axis is samples.
        epochs:
            Maximum number of passes over the data.
        rng:
            Source of shuffling randomness (seeded for reproducibility).
        x_val, y_val:
            Optional held-out split evaluated after every epoch.
        augment:
            Optional callable ``(batch, rng) -> batch`` applied to each
            mini-batch (the ResNet pad-crop/flip augmentation).
        callbacks:
            :class:`~repro.telemetry.events.Callback` observers.  Any
            ambient callbacks installed through
            :func:`repro.telemetry.runtime.use_callbacks` are appended
            automatically.  Callbacks never alter the computation; a
            callback may request an early stop via
            :meth:`~repro.telemetry.events.RunContext.request_stop`,
            honoured at the end of the epoch.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        n = x.shape[0]
        if y.shape[0] != n:
            raise ValueError(f"x and y disagree on sample count: {n} vs {y.shape[0]}")
        rng = rng if rng is not None else default_generator()
        # Prior counted once vs. likelihood summed over N samples: with a
        # mean per-sample loss the regularizer enters at weight 1/N.
        self._reg_scale = 1.0 / float(n)
        params = list(self.model.parameters())
        optimizer = SGD(
            [p.value for p in params], lr=self.schedule.lr_at(0), momentum=self.momentum
        )

        self.metrics.reset()
        cbs = CallbackList(list(callbacks or ()) + list(default_callbacks()))
        ctx = RunContext(
            model=self.model,
            parameters=params,
            metrics=self.metrics,
            n_samples=n,
            batch_size=self.batch_size,
            max_epochs=epochs,
        )
        emit_em = cbs.wants_em_step
        emit_batch = cbs.wants_batch_end
        timers = {phase: self.metrics.timer(f"phase/{phase}") for phase in PHASES}
        batch_counter = self.metrics.counter("train/batches")
        epoch_counter = self.metrics.counter("train/epochs")
        loss_hist = self.metrics.histogram("train/epoch_loss")

        history = TrainingHistory()
        previous_loss: Optional[float] = None
        stall = 0
        start = self.clock()

        cbs.on_train_start(ctx)
        # One ambient span per fit; each epoch gets a child span whose
        # per-phase breakdown is recorded as synthetic children from the
        # phase-timer deltas (no per-batch span allocation).  Without an
        # ambient tracer these are all inert null spans.
        with start_span(
            "train/fit",
            attributes={"epochs": epochs, "n_samples": n},
        ):
            for epoch in range(epochs):
                with start_span(
                    "train/epoch", attributes={"epoch": epoch}
                ) as epoch_span:
                    phase_base = {
                        phase: timers[phase].total_seconds for phase in PHASES
                    }
                    optimizer.set_lr(self.schedule.lr_at(epoch))
                    self.metrics.gauge("train/lr").set(optimizer.lr)
                    cbs.on_epoch_start(epoch, ctx)
                    epoch_start = self.clock()
                    order = rng.permutation(n) if self.shuffle else np.arange(n)
                    epoch_loss = 0.0
                    n_batches = 0
                    for lo in range(0, n, self.batch_size):
                        batch = order[lo : lo + self.batch_size]
                        xb, yb = x[batch], y[batch]
                        if augment is not None:
                            xb = augment(xb, rng)
                        iteration = self._iteration
                        loss = self._train_step(
                            params, optimizer, xb, yb, timers,
                            cbs if emit_em else None, ctx, epoch,
                        )
                        epoch_loss += loss
                        batch_counter.inc()
                        if emit_batch:
                            cbs.on_batch_end(
                                BatchInfo(
                                    epoch=epoch,
                                    batch_index=n_batches,
                                    iteration=iteration,
                                    size=xb.shape[0],
                                    loss=loss,
                                ),
                                ctx,
                            )
                        n_batches += 1
                    epoch_loss /= max(n_batches, 1)
                    epoch_counter.inc()
                    loss_hist.observe(epoch_loss)

                    for param in params:
                        if param.regularizer is not None:
                            param.regularizer.epoch_end(epoch)
                    self._record_em_totals(params)

                    now = self.clock()
                    val_acc = None
                    if x_val is not None and y_val is not None:
                        val_acc = float(
                            np.mean(self.model.predict(x_val) == y_val)
                        )
                    record = EpochRecord(
                        epoch=epoch,
                        train_loss=epoch_loss,
                        elapsed_seconds=now - epoch_start,
                        cumulative_seconds=now - start,
                        val_accuracy=val_acc,
                    )
                    history.records.append(record)
                    epoch_span.set_attribute("loss", epoch_loss)
                    for phase in PHASES:
                        delta = (
                            timers[phase].total_seconds - phase_base[phase]
                        )
                        if delta > 0.0:
                            epoch_span.record_child(
                                f"train/{phase}", delta
                            )
                    cbs.on_epoch_end(record, ctx)

                if self.convergence_tol is not None and previous_loss is not None:
                    scale = max(abs(previous_loss), 1e-12)
                    if (previous_loss - epoch_loss) / scale < self.convergence_tol:
                        stall += 1
                    else:
                        stall = 0
                    if stall >= self.patience:
                        history.converged_epoch = epoch
                        break
                previous_loss = epoch_loss
                if ctx.stop_requested:
                    break
        cbs.on_train_end(history, ctx)
        return history

    # ------------------------------------------------------------------
    def state(self) -> TrainerState:
        """Snapshot the trainer's resumable EM state (see :class:`TrainerState`).

        Taken after :meth:`fit` this is the final EM state — the handoff
        an :class:`~repro.online.trainer.OnlineTrainer` resumes from.
        """
        return capture_trainer_state(self.model, self._iteration)

    def load_state(self, state: TrainerState) -> None:
        """Resume from a :class:`TrainerState` snapshot.

        Restores every regularizer's ``pi``/``lambda`` and the global
        iteration counter, so a subsequent :meth:`fit` continues the
        lazy-update schedule instead of restarting it.
        """
        restore_trainer_state(self.model, state)
        self._iteration = int(state.iteration)

    # ------------------------------------------------------------------
    def _record_em_totals(self, params: List[Parameter]) -> None:
        """Publish cumulative E-/M-step refresh counts as gauges.

        Summed across parameters so the Figs. 5-7 benchmarks can verify
        measured per-phase savings against the schedule's expected
        refresh fraction.
        """
        esteps = msteps = densities = 0
        seen = False
        for param in params:
            reg = param.regularizer
            if reg is None:
                continue
            e = getattr(reg, "estep_count", None)
            m = getattr(reg, "mstep_count", None)
            if e is None and m is None:
                continue
            seen = True
            esteps += int(e or 0)
            msteps += int(m or 0)
            densities += int(getattr(reg, "density_evals", None) or 0)
        if seen:
            self.metrics.gauge("em/estep_refreshes").set(esteps)
            self.metrics.gauge("em/mstep_refreshes").set(msteps)
            self.metrics.gauge("em/density_evals").set(densities)

    # ------------------------------------------------------------------
    def _train_step(
        self,
        params: List[Parameter],
        optimizer: SGD,
        xb: np.ndarray,
        yb: np.ndarray,
        timers: dict[str, PhaseTimer],
        em_observers: Optional[CallbackList],
        ctx: RunContext,
        epoch: int,
    ) -> float:
        """One Algorithm-2 iteration; returns the batch data-misfit loss."""
        it = self._iteration
        if em_observers is not None:
            counts_before = [
                (
                    getattr(p.regularizer, "estep_count", 0),
                    getattr(p.regularizer, "mstep_count", 0),
                )
                if p.regularizer is not None
                else (0, 0)
                for p in params
            ]
        # E-step (lines 4-7): refresh cached g_reg where due.  The
        # stacked pass fuses all due per-layer GMs into one kernel call;
        # non-fusable regularizers fall back to their own prepare().
        with timers["estep"]:
            if self.stacked_em:
                stacked_prepare(params, it, workspace=self._em_workspace)
            else:
                for param in params:
                    if param.regularizer is not None:
                        param.regularizer.prepare(param.value, it)
        # Data-misfit gradient g_ll plus regularizer gradient (Eq. (10)).
        with timers["grad"]:
            loss, grads = self.model.loss_and_gradients(xb, yb)
            for param, grad in zip(params, grads):
                if param.regularizer is not None:
                    grad += self._reg_scale * param.regularizer.gradient(param.value)
        # M-step (lines 9-11): update pi/lambda where due.
        with timers["mstep"]:
            for param in params:
                if param.regularizer is not None:
                    param.regularizer.update(param.value, it)
        # SGD step (line 12).
        with timers["sgd"]:
            optimizer.step(grads)
        if em_observers is not None:
            for param, (e0, m0) in zip(params, counts_before):
                reg = param.regularizer
                if reg is None:
                    continue
                did_estep = getattr(reg, "estep_count", 0) > e0
                did_mstep = getattr(reg, "mstep_count", 0) > m0
                if did_estep or did_mstep:
                    em_observers.on_em_step(
                        EMStepInfo(
                            epoch=epoch,
                            iteration=it,
                            param_name=param.name,
                            did_estep=did_estep,
                            did_mstep=did_mstep,
                            state=reg.telemetry_state(),
                        ),
                        ctx,
                    )
        self._iteration = it + 1
        return loss
