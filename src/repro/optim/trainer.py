"""Training loop implementing Algorithms 1 and 2 of the paper.

The trainer interleaves SGD on the model parameters with the lightweight
EM on the GM parameters.  Per mini-batch iteration the exact Algorithm 2
ordering is followed:

1. *E-step* (lazy): each adaptive regularizer refreshes its cached
   ``g_reg`` (``Regularizer.prepare``).
2. The data-misfit gradient ``g_ll`` is computed by the model and the
   regularizer gradients are added (Equation (10)).  Because the models
   report the *mean* per-sample loss while the MAP objective (Equation
   (8)) counts the prior once against a likelihood summed over all ``N``
   training samples, the regularizer gradient is scaled by ``1/N``.
   This is the standard weight-decay normalization and is what makes
   the paper's learned precisions (``lambda`` up to ~2000, Table IV)
   compatible with its learning rates: the per-step decay is
   ``lr * lambda / N``.
3. *M-step* (lazy): the GM parameters are updated
   (``Regularizer.update``).
4. *SGD step*: the optimizer applies the combined gradient.

The same loop trains logistic regression and the deep networks; the
model only has to satisfy :class:`TrainableModel`.  The trainer records
a per-epoch :class:`EpochRecord` (loss, wall-clock time, optional
validation accuracy), which is what the timing figures (Figs. 5-7) are
built from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..core.regularizers import Regularizer
from .schedules import ConstantLR, LRSchedule
from .sgd import SGD

__all__ = ["Parameter", "TrainableModel", "EpochRecord", "TrainingHistory", "Trainer"]


@dataclass
class Parameter:
    """One trainable tensor plus its (optional) regularizer.

    Deep models attach a separate :class:`GMRegularizer` to each layer's
    weights (per-layer GMs, Section V-B1) and leave biases and batch-norm
    scales unregularized, mirroring standard weight-decay practice.
    """

    name: str
    value: np.ndarray
    regularizer: Optional[Regularizer] = None


class TrainableModel(Protocol):
    """What the trainer needs from a model."""

    def parameters(self) -> Sequence[Parameter]:
        """All trainable parameters, in a stable order."""
        ...

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Data-misfit loss and its gradients aligned with ``parameters()``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard label predictions for accuracy evaluation."""
        ...


@dataclass
class EpochRecord:
    """Per-epoch training telemetry."""

    epoch: int
    train_loss: float
    elapsed_seconds: float
    cumulative_seconds: float
    val_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` plus convergence metadata."""

    records: List[EpochRecord] = field(default_factory=list)
    converged_epoch: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        """Total wall-clock training time."""
        return self.records[-1].cumulative_seconds if self.records else 0.0

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].train_loss

    def losses(self) -> np.ndarray:
        """Per-epoch training losses."""
        return np.asarray([r.train_loss for r in self.records])

    def cumulative_times(self) -> np.ndarray:
        """Cumulative wall-clock seconds after each epoch (Fig. 5/7 series)."""
        return np.asarray([r.cumulative_seconds for r in self.records])


class Trainer:
    """Mini-batch SGD + interleaved EM (Algorithms 1 and 2).

    Parameters
    ----------
    model:
        Any :class:`TrainableModel`.
    lr:
        Learning rate, or an :class:`LRSchedule` for decaying rates.
    momentum:
        SGD momentum (paper: 0.9 for CNNs, 0 for logistic regression).
    batch_size:
        Mini-batch size; the number of mini-batches per epoch is the
        ``B`` of Algorithm 2.
    shuffle:
        Whether to reshuffle the training set every epoch.
    convergence_tol:
        When set, training stops early once the relative improvement of
        the epoch loss falls below this tolerance for ``patience``
        consecutive epochs ("while not converged" in Algorithms 1/2).
    patience:
        Consecutive low-improvement epochs required to declare
        convergence.
    """

    def __init__(
        self,
        model: TrainableModel,
        lr: float | LRSchedule = 0.1,
        momentum: float = 0.0,
        batch_size: int = 32,
        shuffle: bool = True,
        convergence_tol: Optional[float] = None,
        patience: int = 3,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.model = model
        self.schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(float(lr))
        self.momentum = float(momentum)
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.convergence_tol = convergence_tol
        self.patience = int(patience)
        self._iteration = 0
        self._reg_scale = 1.0

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        rng: Optional[np.random.Generator] = None,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        augment=None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs (early-stops on convergence).

        Parameters
        ----------
        x, y:
            Training inputs and integer labels; first axis is samples.
        epochs:
            Maximum number of passes over the data.
        rng:
            Source of shuffling randomness (seeded for reproducibility).
        x_val, y_val:
            Optional held-out split evaluated after every epoch.
        augment:
            Optional callable ``(batch, rng) -> batch`` applied to each
            mini-batch (the ResNet pad-crop/flip augmentation).
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        n = x.shape[0]
        if y.shape[0] != n:
            raise ValueError(f"x and y disagree on sample count: {n} vs {y.shape[0]}")
        rng = rng or np.random.default_rng()
        # Prior counted once vs. likelihood summed over N samples: with a
        # mean per-sample loss the regularizer enters at weight 1/N.
        self._reg_scale = 1.0 / float(n)
        params = list(self.model.parameters())
        optimizer = SGD(
            [p.value for p in params], lr=self.schedule.lr_at(0), momentum=self.momentum
        )

        history = TrainingHistory()
        previous_loss: Optional[float] = None
        stall = 0
        start = time.perf_counter()

        for epoch in range(epochs):
            optimizer.set_lr(self.schedule.lr_at(epoch))
            epoch_start = time.perf_counter()
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            epoch_loss = 0.0
            n_batches = 0
            for lo in range(0, n, self.batch_size):
                batch = order[lo : lo + self.batch_size]
                xb, yb = x[batch], y[batch]
                if augment is not None:
                    xb = augment(xb, rng)
                epoch_loss += self._train_step(params, optimizer, xb, yb)
                n_batches += 1
            epoch_loss /= max(n_batches, 1)

            for param in params:
                if param.regularizer is not None:
                    param.regularizer.epoch_end(epoch)

            now = time.perf_counter()
            val_acc = None
            if x_val is not None and y_val is not None:
                val_acc = float(np.mean(self.model.predict(x_val) == y_val))
            history.records.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=epoch_loss,
                    elapsed_seconds=now - epoch_start,
                    cumulative_seconds=now - start,
                    val_accuracy=val_acc,
                )
            )

            if self.convergence_tol is not None and previous_loss is not None:
                scale = max(abs(previous_loss), 1e-12)
                if (previous_loss - epoch_loss) / scale < self.convergence_tol:
                    stall += 1
                else:
                    stall = 0
                if stall >= self.patience:
                    history.converged_epoch = epoch
                    break
            previous_loss = epoch_loss
        return history

    # ------------------------------------------------------------------
    def _train_step(
        self,
        params: List[Parameter],
        optimizer: SGD,
        xb: np.ndarray,
        yb: np.ndarray,
    ) -> float:
        """One Algorithm-2 iteration; returns the batch data-misfit loss."""
        it = self._iteration
        # E-step (lines 4-7): refresh cached g_reg where due.
        for param in params:
            if param.regularizer is not None:
                param.regularizer.prepare(param.value, it)
        # Data-misfit gradient g_ll plus regularizer gradient (Eq. (10)).
        loss, grads = self.model.loss_and_gradients(xb, yb)
        for param, grad in zip(params, grads):
            if param.regularizer is not None:
                grad += self._reg_scale * param.regularizer.gradient(param.value)
        # M-step (lines 9-11): update pi/lambda where due.
        for param in params:
            if param.regularizer is not None:
                param.regularizer.update(param.value, it)
        # SGD step (line 12).
        optimizer.step(grads)
        self._iteration = it + 1
        return loss
