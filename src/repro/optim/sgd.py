"""Stochastic Gradient Descent with momentum.

The paper trains every model with SGD: plain SGD for logistic regression
and SGD with momentum 0.9 for the deep models (Section V-A).  The
optimizer here operates on *lists of parameter arrays* so the same code
drives the single-vector logistic-regression model and the many-tensor
neural networks; parameters are updated in place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["SGD"]


class SGD:
    """SGD with (optional) classical momentum.

    Update rule with momentum ``mu`` and learning rate ``L``::

        v <- mu * v - L * grad
        w <- w + v

    With ``momentum=0`` this reduces to the vanilla rule used in
    Algorithms 1/2 of the paper: ``w <- w - L * grad``.

    Parameters
    ----------
    params:
        Parameter arrays updated in place on :meth:`step`.
    lr:
        Learning rate ``L`` (paper: 0.001 for Alex-CIFAR-10, 0.1 for
        ResNet, tuned per dataset for logistic regression).
    momentum:
        Momentum coefficient ``mu`` in [0, 1) (paper: 0.9 for CNNs).
    """

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float,
        momentum: float = 0.0,
    ):
        if lr <= 0.0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self._params: List[np.ndarray] = list(params)
        if not self._params:
            raise ValueError("params must be non-empty")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: Optional[List[np.ndarray]] = None
        if self.momentum > 0.0:
            self._velocity = [np.zeros_like(p) for p in self._params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``params``."""
        if len(grads) != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} gradients, got {len(grads)}"
            )
        if self._velocity is None:
            for p, g in zip(self._params, grads):
                p -= self.lr * g
        else:
            for p, g, v in zip(self._params, grads, self._velocity):
                v *= self.momentum
                v -= self.lr * g
                p += v

    def set_lr(self, lr: float) -> None:
        """Replace the learning rate (used by schedules)."""
        if lr <= 0.0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    @property
    def params(self) -> List[np.ndarray]:
        """The parameter arrays this optimizer updates (shared, not copies)."""
        return self._params
