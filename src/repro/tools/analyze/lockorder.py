"""Cross-class lock-acquisition-order graph and deadlock-cycle detection.

Deadlock needs two ingredients: more than one lock, and two code paths
that acquire them in opposite orders.  The graph built here records the
orders the code *can* exhibit:

- **nested ``with`` edges** — ``with self._a:`` containing
  ``with self._b:`` adds the edge ``Class._a -> Class._b``;
- **call edges** — a method that calls ``self.registry.activate(...)``
  while holding ``self._close_lock`` adds edges from ``_close_lock`` to
  every lock ``activate`` may acquire, computed as a fixed point over
  the symbol table's call sites (``self.method`` stays in-class,
  ``self.attr.method`` crosses to the attribute's inferred class).

Nodes are ``Class.lock_attr`` — *instance-free*, because lock ordering
is a property of code paths, not of objects.  Re-entry of the same
attribute (the registry's RLock) is therefore not an edge.  Every cycle
in the graph is a ``LOCK-ORDER-CYCLE`` finding anchored at one of the
cycle's acquisition sites; :func:`LockOrderGraph.to_dot` renders the
whole graph (cycle edges highlighted) for the CI artifact.

What the static graph cannot see — locks reached through untyped
locals, containers of handles, or dynamic dispatch — is exactly what
the runtime sanitizer (:mod:`repro.tools.analyze.lockcheck`) observes
live, so the two tools bracket the problem from both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lint.engine import Finding
from .symbols import ClassInfo, SymbolTable

__all__ = [
    "LOCK_ORDER_CYCLE",
    "LockNode",
    "LockEdge",
    "LockOrderGraph",
    "build_lock_graph",
]

LOCK_ORDER_CYCLE = "LOCK-ORDER-CYCLE"

#: Call-graph expansion depth bound: a chain of calls longer than this
#: between a held lock and a nested acquisition is treated as
#: unreachable (prevents nontermination on recursive call cycles).
_MAX_FIXPOINT_ROUNDS = 64


@dataclass(frozen=True)
class LockNode:
    """One lock *attribute* of one class (instance-free identity)."""

    cls: str  # bare class name (display) — unique per qualified below
    qualified: str  # "module.Class.lock_attr"
    attr: str

    @property
    def label(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass(frozen=True)
class LockEdge:
    """``src`` held while ``dst`` is (possibly transitively) acquired."""

    src: LockNode
    dst: LockNode
    path: str
    line: int
    col: int
    kind: str  # "nested-with" | "call"
    detail: str = ""


@dataclass
class LockOrderGraph:
    """The acquisition-order graph plus its cycle analysis."""

    nodes: List[LockNode] = field(default_factory=list)
    edges: List[LockEdge] = field(default_factory=list)

    def successors(self) -> Dict[LockNode, Set[LockNode]]:
        adjacency: Dict[LockNode, Set[LockNode]] = {n: set() for n in self.nodes}
        for edge in self.edges:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
            adjacency.setdefault(edge.dst, set())
        return adjacency

    def cycles(self) -> List[List[LockNode]]:
        """Strongly-connected components with at least one real cycle.

        Tarjan's algorithm, iterative (analyzer runs inside pytest with
        a default recursion limit).  Each returned component is sorted
        for deterministic reporting.
        """
        adjacency = self.successors()
        index: Dict[LockNode, int] = {}
        lowlink: Dict[LockNode, int] = {}
        on_stack: Set[LockNode] = set()
        stack: List[LockNode] = []
        components: List[List[LockNode]] = []
        counter = 0

        for root in sorted(adjacency, key=lambda n: n.qualified):
            if root in index:
                continue
            work: List[Tuple[LockNode, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                children = sorted(adjacency[node], key=lambda n: n.qualified)
                advanced = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work[-1] = (node, position + 1)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[LockNode] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is node:
                            break
                    if len(component) > 1:
                        components.append(
                            sorted(component, key=lambda n: n.qualified)
                        )
        components.sort(key=lambda comp: comp[0].qualified)
        return components

    def cycle_edges(self) -> List[Tuple[LockEdge, List[LockNode]]]:
        """Every edge inside a cycle, with the component it belongs to."""
        involved: List[Tuple[LockEdge, List[LockNode]]] = []
        for component in self.cycles():
            members = set(component)
            for edge in self.edges:
                if edge.src in members and edge.dst in members:
                    involved.append((edge, component))
        return involved

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def findings(
        self, sources: Optional[Dict[str, Sequence[str]]] = None
    ) -> List[Finding]:
        """One LOCK-ORDER-CYCLE finding per edge participating in a cycle.

        Anchoring at the edge site (rather than one synthetic location
        per cycle) gives every inverted acquisition its own suppressible
        line — breaking *any* edge of the cycle fixes the deadlock, and
        the finding names the full cycle so the choice is informed.
        """
        findings: List[Finding] = []
        for edge, component in self.cycle_edges():
            ring = " -> ".join(node.label for node in component)
            lines: Sequence[str] = (sources or {}).get(edge.path, ())
            source_line = (
                lines[edge.line - 1] if 1 <= edge.line <= len(lines) else ""
            )
            detail = f" via {edge.detail}" if edge.detail else ""
            findings.append(
                Finding(
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                    rule=LOCK_ORDER_CYCLE,
                    message=(
                        f"acquiring `{edge.dst.label}` while holding "
                        f"`{edge.src.label}`{detail} closes the cycle "
                        f"[{ring} -> {component[0].label}] — opposite-order "
                        "acquisition can deadlock"
                    ),
                    source_line=source_line,
                )
            )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings

    def to_dot(self) -> str:
        """Graphviz DOT rendering; cycle edges are red and bold."""
        hot = {
            (edge.src, edge.dst, edge.path, edge.line)
            for edge, _comp in self.cycle_edges()
        }
        lines = [
            "digraph lock_order {",
            '  rankdir="LR";',
            '  node [shape=box, fontname="monospace"];',
        ]
        for node in sorted(self.nodes, key=lambda n: n.qualified):
            lines.append(f'  "{node.label}";')
        for edge in sorted(
            self.edges, key=lambda e: (e.src.qualified, e.dst.qualified, e.line)
        ):
            style = (
                ' color="red" penwidth=2.0'
                if (edge.src, edge.dst, edge.path, edge.line) in hot
                else ""
            )
            label = f"{edge.path}:{edge.line} ({edge.kind})"
            lines.append(
                f'  "{edge.src.label}" -> "{edge.dst.label}" '
                f'[label="{label}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _method_key(cls: ClassInfo, method: str) -> str:
    return f"{cls.qualified}.{method}"


def build_lock_graph(table: SymbolTable) -> LockOrderGraph:
    """The acquisition-order graph over every class in the table."""
    nodes: Dict[str, LockNode] = {}

    def node_for(cls: ClassInfo, attr: str) -> LockNode:
        qualified = f"{cls.qualified}.{attr}"
        existing = nodes.get(qualified)
        if existing is None:
            existing = LockNode(cls=cls.name, qualified=qualified, attr=attr)
            nodes[qualified] = existing
        return existing

    ordered = sorted(table.classes.values(), key=lambda c: (c.path, c.lineno))
    for cls in ordered:
        for attr in sorted(cls.lock_attrs):
            node_for(cls, attr)

    # ------------------------------------------------------------------
    # Fixed point: which lock nodes can each method (transitively)
    # acquire?  Direct acquisitions seed the sets; call sites propagate
    # callee sets (self.method stays in-class, self.attr.method follows
    # the inferred attribute type).
    # ------------------------------------------------------------------
    may_acquire: Dict[str, Set[LockNode]] = {}
    for cls in ordered:
        for method in cls.methods.values():
            direct = {
                node_for(cls, acq.lock) for acq in method.acquisitions
            }
            may_acquire[_method_key(cls, method.name)] = direct

    def callee_key(cls: ClassInfo, call_receiver: str, call_method: str) -> Optional[str]:
        if call_receiver == "self":
            target: Optional[ClassInfo] = cls
        else:
            target = table.attr_class(cls, call_receiver)
        if target is None or call_method not in target.methods:
            return None
        return _method_key(target, call_method)

    for _round in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for cls in ordered:
            for method in cls.methods.values():
                key = _method_key(cls, method.name)
                acquired = may_acquire[key]
                before = len(acquired)
                for call in method.calls:
                    target_key = callee_key(cls, call.receiver, call.method)
                    if target_key is not None:
                        acquired |= may_acquire[target_key]
                if len(acquired) != before:
                    changed = True
        if not changed:
            break

    # ------------------------------------------------------------------
    # Edges.
    # ------------------------------------------------------------------
    edges: List[LockEdge] = []
    seen: Set[Tuple[LockNode, LockNode, str, int, int]] = set()

    def add_edge(
        src: LockNode,
        dst: LockNode,
        cls: ClassInfo,
        line: int,
        col: int,
        kind: str,
        detail: str = "",
    ) -> None:
        if src == dst:
            return  # re-entry (RLock) is not an ordering edge
        key = (src, dst, cls.path, line, col)
        if key in seen:
            return
        seen.add(key)
        edges.append(
            LockEdge(
                src=src, dst=dst, path=cls.path, line=line, col=col,
                kind=kind, detail=detail,
            )
        )

    for cls in ordered:
        for method in cls.methods.values():
            for acq in method.acquisitions:
                dst = node_for(cls, acq.lock)
                for held in sorted(acq.held):
                    add_edge(
                        node_for(cls, held), dst, cls,
                        acq.line, acq.col, "nested-with",
                    )
            for call in method.calls:
                if not call.held:
                    continue
                target_key = callee_key(cls, call.receiver, call.method)
                if target_key is None:
                    continue
                receiver = (
                    f"self.{call.method}"
                    if call.receiver == "self"
                    else f"self.{call.receiver}.{call.method}"
                )
                for dst in sorted(
                    may_acquire[target_key], key=lambda n: n.qualified
                ):
                    for held in sorted(call.held):
                        add_edge(
                            node_for(cls, held), dst, cls,
                            call.line, call.col, "call",
                            detail=f"{receiver}(...)",
                        )

    graph = LockOrderGraph(
        nodes=sorted(nodes.values(), key=lambda n: n.qualified), edges=edges
    )
    return graph
