"""Project-wide class/attribute symbol table for concurrency analysis.

One :class:`SymbolTable` holds every class found in the analyzed files,
and for each class everything the guard and lock-order analyses need:

- ``lock_attrs`` — attributes assigned ``threading.Lock()`` /
  ``RLock()`` / ``Condition()`` anywhere in the class;
- per-method :class:`Access` records — every ``self.X`` read or write
  together with the *held set*, the class's locks held at that point
  (tracked through nested ``with self._lock:`` bodies);
- per-method :class:`Acquisition` records — every ``with self._lock:``
  entry with the locks already held when it is entered (the nested-
  ``with`` edges of the lock-order graph);
- per-method :class:`CallSite` records — ``self.method(...)`` and
  ``self.attr.method(...)`` calls with the held set at the call point
  (the interprocedural edges);
- ``attr_types`` — best-effort attribute type inference from
  ``self.X = ClassName(...)`` construction, ``self.X: ClassName``
  annotations and ``self.X = param`` where the parameter is annotated,
  resolved through each file's import table so cross-module call edges
  land on the right class.

The table is deliberately *syntactic*: it resolves only what the
project's own idioms make unambiguous (attributes of ``self``, classes
constructed or annotated by name).  Locals, containers of handles and
module-level locks are out of scope — the runtime sanitizer in
:mod:`repro.tools.analyze.lockcheck` covers what static resolution
cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..lint.engine import LintContext

__all__ = [
    "Access",
    "Acquisition",
    "CallSite",
    "ClassInfo",
    "MethodInfo",
    "SymbolTable",
    "EXEMPT_METHODS",
    "LOCK_FACTORIES",
    "MUTATORS",
]

#: Constructors whose result makes an attribute a lock.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Method names that mutate their receiver in place.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "move_to_end",
        "rotate",
    }
)

#: Methods exempt from guard checks: no concurrent reader can exist
#: before the constructor returns, and ``__del__``/``__repr__`` are not
#: exempt — PR 7 fixed exactly such a ``__repr__`` race.
EXEMPT_METHODS = frozenset({"__init__", "__new__"})


@dataclass(frozen=True)
class Access:
    """One read or write of ``self.<attr>`` at one location."""

    attr: str
    kind: str  # "read" | "write"
    line: int
    col: int
    held: FrozenSet[str]


@dataclass(frozen=True)
class Acquisition:
    """One ``with self.<lock>:`` entry and the locks already held."""

    lock: str
    line: int
    col: int
    held: FrozenSet[str]


@dataclass(frozen=True)
class CallSite:
    """One ``self.method(...)`` / ``self.attr.method(...)`` call.

    ``receiver`` is ``"self"`` for own-method calls, otherwise the
    ``self`` attribute the call goes through (``self.registry.activate``
    has receiver ``"registry"``).  Calls through locals or chains the
    table cannot type are not recorded.
    """

    receiver: str
    method: str
    line: int
    col: int
    held: FrozenSet[str]


@dataclass
class MethodInfo:
    """Everything recorded about one method body."""

    name: str
    lineno: int
    accesses: List[Access] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)

    @property
    def exempt(self) -> bool:
        """Whether guard checks skip this method entirely.

        Constructors have no concurrent readers yet; ``*_locked``
        helpers are called with the lock already held by convention
        (``MicroBatcher._take_matching_locked``).
        """
        return self.name in EXEMPT_METHODS or self.name.endswith("_locked")


@dataclass
class ClassInfo:
    """One class: its locks, methods, and inferred attribute types."""

    module: Optional[str]
    name: str
    path: str
    lineno: int
    lock_attrs: Set[str] = field(default_factory=set)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    #: attribute name -> bare class name it was constructed from.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: local/imported name -> dotted module target (the file's imports).
    imports: Dict[str, str] = field(default_factory=dict)

    @property
    def qualified(self) -> str:
        """``module.Class`` when the module is known, else the bare name."""
        return f"{self.module}.{self.name}" if self.module else self.name

    def guarded_attrs(self) -> Dict[str, FrozenSet[str]]:
        """``{attr: locks that guard it}`` from this class's own writes.

        An attribute is guarded when any non-``*_locked`` method writes
        it while holding a lock; the guard set is the union of locks
        held across those writes (an attribute consistently written
        under two locks accepts either).
        """
        guards: Dict[str, Set[str]] = {}
        for method in self.methods.values():
            if method.name.endswith("_locked"):
                # Held set inside *_locked helpers is statically
                # unknowable (the caller holds it); their writes are
                # neither guard evidence nor violations.
                continue
            for access in method.accesses:
                if access.kind == "write" and access.held:
                    guards.setdefault(access.attr, set()).update(access.held)
        return {attr: frozenset(locks) for attr, locks in guards.items()}


def _is_lock_factory(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``Lock()`` (and RLock/Condition)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    return False


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """The ``X`` in a chain rooted at ``self.X`` (through subscripts,
    attribute hops and call results), else ``None``."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _unpack_targets(target: ast.expr) -> List[ast.expr]:
    """Flatten tuple/list/starred assignment targets into leaves."""
    if isinstance(target, (ast.Tuple, ast.List)):
        leaves: List[ast.expr] = []
        for element in target.elts:
            leaves.extend(_unpack_targets(element))
        return leaves
    if isinstance(target, ast.Starred):
        return _unpack_targets(target.value)
    return [target]


#: typing-module wrappers that appear in annotations but never name the
#: concrete class an attribute holds.
_TYPING_NAMES = frozenset(
    {
        "Optional",
        "Union",
        "List",
        "Dict",
        "Set",
        "FrozenSet",
        "Tuple",
        "Sequence",
        "Iterable",
        "Iterator",
        "Mapping",
        "MutableMapping",
        "Callable",
        "Any",
        "Type",
        "ClassVar",
        "Final",
        "Annotated",
        "None",
    }
)


def _annotation_names(node: ast.AST) -> List[str]:
    """Candidate class names mentioned in a type annotation.

    Handles ``ClassName``, ``mod.ClassName``, ``Optional[ClassName]``,
    ``"ClassName"`` string annotations and unions — every identifier in
    the annotation is a candidate; the caller keeps the first one that
    resolves to a known class.
    """
    names: List[str] = []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in _TYPING_NAMES:
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute) and sub.attr not in _TYPING_NAMES:
            names.append(sub.attr)
    return names


def _imports_of(tree: ast.Module, module: Optional[str]) -> Dict[str, str]:
    """Local name -> dotted module, resolving relative imports."""
    table: Dict[str, str] = {}
    package_parts = (module or "").split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


class _MethodWalker:
    """Walk one method body tracking the currently-held own-class locks."""

    def __init__(self, lock_attrs: Set[str], info: MethodInfo) -> None:
        self.lock_attrs = lock_attrs
        self.info = info
        #: line numbers already recorded as writes, so the Load half of
        #: an AugAssign (or the receiver read of ``self._q.append``)
        #: does not double as a read at the same spot.
        self._written_at: Set[Tuple[str, int, int]] = set()

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, frozenset())

    # ------------------------------------------------------------------
    def _record_write(self, attr: str, node: ast.AST, held: FrozenSet[str]) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.info.accesses.append(Access(attr, "write", line, col, held))
        self._written_at.add((attr, line, col))

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, ast.With):
            acquired: Set[str] = set()
            for item in node.items:
                root = _self_attr_root(item.context_expr)
                if root is not None and root in self.lock_attrs:
                    acquired.add(root)
                    self.info.acquisitions.append(
                        Acquisition(
                            root,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            held,
                        )
                    )
                else:
                    # `with self.metrics.timer(...)` etc: the context
                    # expression still contains reads and calls.
                    self._visit(item.context_expr, held)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested function bodies run later, under unknown locks;
            # analyzing them with the current held set would be wrong in
            # both directions.  Skip them (their defaults still belong
            # to this scope).
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in _unpack_targets(target):
                    root = _self_attr_root(leaf)
                    if root is not None and root not in self.lock_attrs:
                        self._record_write(root, node, held)
            if node.value is not None:
                self._visit(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                root = _self_attr_root(target)
                if root is not None and root not in self.lock_attrs:
                    self._record_write(root, node, held)
                self._visit(target, held)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                attr = node.attr
                if attr not in self.lock_attrs:
                    key = (attr, node.lineno, node.col_offset)
                    if key not in self._written_at:
                        self.info.accesses.append(
                            Access(attr, "read", node.lineno, node.col_offset, held)
                        )
                return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit_call(self, node: ast.Call, held: FrozenSet[str]) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.method(...)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.info.calls.append(
                    CallSite("self", func.attr, node.lineno, node.col_offset, held)
                )
            # self.attr.method(...): a call edge through a typed
            # attribute, and (for mutators) a write to that attribute.
            elif (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                receiver = func.value.attr
                self.info.calls.append(
                    CallSite(receiver, func.attr, node.lineno, node.col_offset, held)
                )
                if receiver not in self.lock_attrs:
                    if func.attr in MUTATORS:
                        self._record_write(receiver, node, held)
                    else:
                        self.info.accesses.append(
                            Access(
                                receiver, "read", func.value.lineno,
                                func.value.col_offset, held,
                            )
                        )
            else:
                root = _self_attr_root(func.value)
                if root is not None and root not in self.lock_attrs:
                    # self._q[k].append / self._entries.popitem chains:
                    # mutators write the root attribute.
                    if func.attr in MUTATORS:
                        self._record_write(root, node, held)
                self._visit(func.value, held)
        else:
            self._visit(func, held)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._visit(arg, held)


def _infer_attr_types(
    cls: ast.ClassDef, imports: Dict[str, str]
) -> Dict[str, str]:
    """``self.X`` -> bare class name, from constructions and annotations."""
    types: Dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Parameter annotations: `def __init__(self, registry: ModelRegistry)`.
        param_types: Dict[str, List[str]] = {}
        args = method.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                param_types[arg.arg] = _annotation_names(arg.annotation)
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            candidates: List[str] = []
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Name):
                    candidates.append(func.id)
                elif isinstance(func, ast.Attribute):
                    candidates.append(func.attr)
            elif isinstance(value, ast.Name) and value.id in param_types:
                candidates.extend(param_types[value.id])
            if annotation is not None:
                candidates.extend(_annotation_names(annotation))
            if candidates and attr not in types:
                types[attr] = candidates[0]
                # Prefer a resolvable candidate over the first one.
                for name in candidates:
                    if name in imports or name[:1].isupper():
                        types[attr] = name
                        break
    return types


class SymbolTable:
    """Every class in the analyzed files, indexed for cross-class lookup."""

    def __init__(self) -> None:
        #: qualified name ("module.Class" or bare) -> info.
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> every info carrying it.
        self.by_name: Dict[str, List[ClassInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[LintContext]) -> "SymbolTable":
        """Build the table from parsed files (see :class:`LintContext`)."""
        table = cls()
        for ctx in contexts:
            table.add_context(ctx)
        return table

    def add_context(self, ctx: LintContext) -> None:
        """Index every class defined in one parsed file."""
        imports = _imports_of(ctx.tree, ctx.module)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                info = self._build_class(node, ctx, imports)
                self.classes[info.qualified] = info
                self.by_name.setdefault(info.name, []).append(info)

    def _build_class(
        self, cls_node: ast.ClassDef, ctx: LintContext, imports: Dict[str, str]
    ) -> ClassInfo:
        info = ClassInfo(
            module=ctx.module,
            name=cls_node.name,
            path=ctx.path,
            lineno=cls_node.lineno,
            imports=imports,
        )
        for node in ast.walk(cls_node):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    root = _self_attr_root(target)
                    if root is not None:
                        info.lock_attrs.add(root)
        info.attr_types = _infer_attr_types(cls_node, imports)
        for stmt in cls_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = MethodInfo(name=stmt.name, lineno=stmt.lineno)
                _MethodWalker(info.lock_attrs, method).walk(stmt.body)
                info.methods[stmt.name] = method
        return info

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_class(
        self, name: str, from_class: Optional[ClassInfo] = None
    ) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a bare name refers to, if unambiguous.

        Resolution prefers the importing file's import table, then a
        same-module class, then a project-wide unique bare name; an
        ambiguous bare name resolves to nothing rather than guessing.
        """
        if from_class is not None:
            target = from_class.imports.get(name)
            if target is not None and target in self.classes:
                return self.classes[target]
            if from_class.module:
                qualified = f"{from_class.module}.{name}"
                if qualified in self.classes:
                    return self.classes[qualified]
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def attr_class(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """The class of ``self.<attr>`` inside ``cls``, when inferable."""
        type_name = cls.attr_types.get(attr)
        if type_name is None:
            return None
        return self.resolve_class(type_name, from_class=cls)
