"""Analyzer runner: parse, build the table, run both analyses.

Unlike the linter — whose rules are independent per-file passes — the
concurrency analyses need the *whole* project parsed before the first
finding can be computed (a call edge in ``serve/server.py`` may reach a
lock defined in ``telemetry/metrics.py``).  So the runner parses every
file into the linter's :class:`~repro.tools.lint.engine.LintContext`
(reusing its module inference and per-line suppressions), builds one
:class:`~repro.tools.analyze.symbols.SymbolTable`, and only then asks
the guard and lock-order analyses for findings.  Suppressions and the
fingerprint baseline apply exactly as for lint findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..lint.baseline import Baseline
from ..lint.engine import Finding, LintContext, collect_python_files
from .guards import guard_findings
from .lockorder import LockOrderGraph, build_lock_graph
from .symbols import SymbolTable

__all__ = ["AnalysisResult", "analyze_contexts", "analyze_source", "run_analysis"]


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    graph: LockOrderGraph = field(default_factory=LockOrderGraph)
    table: SymbolTable = field(default_factory=SymbolTable)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        return list(self.parse_errors) + list(self.findings)


def analyze_contexts(
    contexts: Sequence[LintContext],
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Run both analyses over already-parsed files."""
    result = AnalysisResult(files_checked=len(contexts))
    table = SymbolTable.build(contexts)
    result.table = table
    result.graph = build_lock_graph(table)
    by_path: Dict[str, LintContext] = {ctx.path: ctx for ctx in contexts}
    sources: Dict[str, Sequence[str]] = {
        ctx.path: ctx.lines for ctx in contexts
    }
    matcher = baseline.matcher() if baseline is not None else None
    raw = guard_findings(table, sources) + result.graph.findings(sources)
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressed(finding):
            result.suppressed.append(finding)
        elif matcher is not None and matcher.absorb(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def analyze_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
) -> AnalysisResult:
    """Analyze one in-memory snippet (the fixture tests use this)."""
    return analyze_contexts([LintContext(path, source, module=module)])


def run_analysis(
    paths: Iterable[str],
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Analyze every Python file under ``paths``."""
    import os

    contexts: List[LintContext] = []
    parse_errors: List[Finding] = []
    for path in collect_python_files(paths):
        display = os.path.relpath(path)
        try:
            with open(path, encoding="utf-8") as handle:
                contexts.append(LintContext(display, handle.read()))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="SYNTAX-ERROR",
                    message=f"file does not parse: {exc.msg}",
                )
            )
    result = analyze_contexts(contexts, baseline=baseline)
    result.files_checked += len(parse_errors)
    result.parse_errors.extend(parse_errors)
    return result
