"""Whole-project concurrency analyzer.

The repository's worst real bugs have all been concurrency bugs — the
PhaseTimer thread-safety bug, PredictionCache stats read outside the
lock, MicroBatcher shutdown stranding queued waiters.  The per-file
``LOCK-DISCIPLINE`` heuristic in :mod:`repro.tools.lint` cannot see
*which* attributes a lock actually guards or in what order locks nest,
so this package builds the project-wide view:

- :mod:`repro.tools.analyze.symbols` — a class/attribute symbol table
  over every file under analysis: lock attributes, per-method attribute
  reads/writes with the set of locks held at each access, lock
  acquisitions, call sites and inferred attribute types (the call-edge
  substrate);
- :mod:`repro.tools.analyze.guards` — guard-set inference: an attribute
  written under ``with self._lock:`` anywhere in a class is *guarded*,
  and every read or write of it outside a lock body (or under a
  different lock) is a ``GUARD-VIOLATION``;
- :mod:`repro.tools.analyze.lockorder` — a cross-class
  lock-acquisition-order graph from nested ``with`` bodies and call
  edges; every cycle is a ``LOCK-ORDER-CYCLE`` (potential deadlock),
  exportable as Graphviz DOT;
- :mod:`repro.tools.analyze.lockcheck` — the runtime side: a
  :class:`~repro.tools.analyze.lockcheck.CheckedLock` sanitizer that
  records per-thread acquisition stacks during the test suite and
  raises on any lock-order inversion observed live.

Findings reuse the lint engine's plumbing — per-line ``# reprolint:
disable=RULE`` suppressions, fingerprint baselines, JSON output and
0/1/2 exit codes — so ``python -m repro.tools.analyze src/`` drops into
CI exactly like the linter.
"""

from .engine import AnalysisResult, analyze_source, run_analysis
from .guards import GUARD_VIOLATION, GuardViolation, guard_findings
from .lockcheck import CheckedLock, LockInversion, LockOrderError, LockOrderTracker
from .lockorder import LOCK_ORDER_CYCLE, LockOrderGraph, build_lock_graph
from .symbols import ClassInfo, MethodInfo, SymbolTable

__all__ = [
    "AnalysisResult",
    "CheckedLock",
    "ClassInfo",
    "GUARD_VIOLATION",
    "GuardViolation",
    "LOCK_ORDER_CYCLE",
    "LockInversion",
    "LockOrderError",
    "LockOrderGraph",
    "LockOrderTracker",
    "MethodInfo",
    "SymbolTable",
    "analyze_source",
    "build_lock_graph",
    "guard_findings",
    "run_analysis",
]
