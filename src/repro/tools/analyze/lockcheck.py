"""Runtime lock-order sanitizer: CheckedLock and the install() patch.

The static lock-order graph (:mod:`repro.tools.analyze.lockorder`) can
only follow acquisitions it can resolve syntactically.  This module is
the dynamic complement: a :class:`CheckedLock` records, per thread, the
stack of locks currently held, and maintains a process-wide order graph
of *observed* acquisition pairs — lock A held while lock B is acquired.
The first acquisition that inverts an already-observed pair raises
:class:`LockOrderError` naming both sites, which turns "this deadlock
needs two threads to interleave just wrong" into "any single test that
exercises both paths fails loudly".

Lock identity is the **creation site** (file:line of the constructor
call), not the instance: every ``PredictionCache`` allocates its own
``self._lock``, but they are all the *same* lock for ordering purposes
— exactly the instance-free node identity the static graph uses.

:func:`install` monkeypatches ``threading.Lock`` / ``threading.RLock``
/ ``threading.Condition`` so that locks created *by this project's
modules* (caller's ``__name__`` under ``repro``) come back checked;
stdlib and third-party locks are left untouched — their internals are
not ours to police, and wrapping them would tax every queue and
executor in the test suite.  The pytest wiring looks like::

    @pytest.fixture(autouse=True)
    def lock_order_sanitizer():
        with lockcheck.installed() as tracker:
            yield tracker
        assert not tracker.inversions

Inversions raise in the acquiring thread *and* are recorded on the
tracker, because a raise inside a daemon worker dies with the worker —
the fixture's teardown assertion is what makes the suite red.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

import contextlib

__all__ = [
    "CheckedLock",
    "LockInversion",
    "LockOrderError",
    "LockOrderTracker",
    "get_tracker",
    "install",
    "installed",
    "uninstall",
]

# The real factories, captured at import time so CheckedLock keeps
# working while threading.* is patched.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition


class LockOrderError(RuntimeError):
    """Two locks were observed acquired in both orders (deadlock risk)."""


@dataclass(frozen=True)
class LockInversion:
    """One observed order inversion between two lock creation sites."""

    first: str  # lock held
    second: str  # lock being acquired
    site: str  # where the inverting acquisition happened
    prior_site: str  # where the opposite order was first observed
    thread: str

    def describe(self) -> str:
        return (
            f"lock-order inversion: acquiring {self.second!r} while "
            f"holding {self.first!r} (at {self.site}, thread "
            f"{self.thread}), but the opposite order was observed at "
            f"{self.prior_site}"
        )


def _call_site(depth: int = 2) -> str:
    """``file:line`` of the frame ``depth`` levels up (best effort)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stack
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class LockOrderTracker:
    """Process-wide observed-order graph plus per-thread held stacks."""

    def __init__(self, raise_on_inversion: bool = True) -> None:
        self.raise_on_inversion = raise_on_inversion
        #: (held_name, acquired_name) -> site where first observed.
        self._edges: Dict[Tuple[str, str], str] = {}
        self._edges_lock = _REAL_LOCK()
        self._local = threading.local()
        self.inversions: List[LockInversion] = []
        self.acquisitions = 0

    # ------------------------------------------------------------------
    def _stack(self) -> List["CheckedLock"]:
        stack: Optional[List["CheckedLock"]] = getattr(
            self._local, "stack", None
        )
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_names(self) -> List[str]:
        """Order names of locks the calling thread currently holds."""
        return [lock.order_name for lock in self._stack()]

    def edges(self) -> Dict[Tuple[str, str], str]:
        """Snapshot of the observed-order graph (edge -> first site)."""
        with self._edges_lock:
            return dict(self._edges)

    # ------------------------------------------------------------------
    def note_acquired(self, lock: "CheckedLock", site: str) -> None:
        """Record an acquisition; raises on an observed inversion.

        Called *after* the underlying lock is acquired.  On inversion
        the acquisition is rolled back (the inner lock is released and
        nothing is pushed) before raising, so a ``with`` statement that
        never runs its body does not leak a held lock.
        """
        stack = self._stack()
        name = lock.order_name
        held = {prior.order_name for prior in stack}
        self.acquisitions += 1  # single-writer per field is fine: stats only
        if name not in held:
            for prior_name in held:
                inversion = self._record_edge(prior_name, name, site)
                if inversion is not None:
                    self.inversions.append(inversion)
                    if self.raise_on_inversion:
                        lock._inner.release()
                        raise LockOrderError(inversion.describe())
        stack.append(lock)

    def _record_edge(
        self, prior_name: str, name: str, site: str
    ) -> Optional[LockInversion]:
        with self._edges_lock:
            self._edges.setdefault((prior_name, name), site)
            reverse = self._edges.get((name, prior_name))
        if reverse is None:
            return None
        return LockInversion(
            first=prior_name,
            second=name,
            site=site,
            prior_site=reverse,
            thread=threading.current_thread().name,
        )

    def note_released(self, lock: "CheckedLock", all_levels: bool = False) -> None:
        """Pop ``lock`` from the holder stack (last occurrence first)."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is lock:
                del stack[position]
                if not all_levels:
                    return
        # A release of a lock acquired on another thread (permitted for
        # plain Locks) just isn't tracked — nothing to pop here.


_default_tracker = LockOrderTracker()


def get_tracker() -> LockOrderTracker:
    """The tracker new :class:`CheckedLock` instances attach to."""
    return _default_tracker


class CheckedLock:
    """A ``threading.Lock``/``RLock`` that reports to a tracker.

    Drop-in for the stdlib primitives (``acquire``/``release``/context
    manager/``locked``), including use as the lock behind a
    ``threading.Condition`` — the ``_is_owned``/``_release_save``/
    ``_acquire_restore`` protocol keeps the holder stack consistent
    across ``Condition.wait`` releasing and re-acquiring.
    """

    def __init__(
        self,
        reentrant: bool = False,
        name: Optional[str] = None,
        tracker: Optional[LockOrderTracker] = None,
    ) -> None:
        self._inner: Any = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self.reentrant = reentrant
        self.order_name = name if name is not None else _call_site(2)
        self._tracker = tracker if tracker is not None else get_tracker()

    # ------------------------------------------------------------------
    # Lock protocol
    # ------------------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._tracker.note_acquired(self, _call_site(2))
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._tracker.note_released(self)

    def __enter__(self) -> bool:
        acquired = bool(self._inner.acquire())
        if acquired:
            self._tracker.note_acquired(self, _call_site(2))
        return acquired

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return bool(inner_locked())
        # RLock before 3.12 has no locked(); probe non-destructively.
        if self._inner.acquire(False):  # pragma: no cover - version shim
            self._inner.release()
            return False
        return True  # pragma: no cover - version shim

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()

    # ------------------------------------------------------------------
    # Condition-variable protocol (used when this lock backs a
    # threading.Condition): wait() fully releases and later restores.
    # ------------------------------------------------------------------
    def _release_save(self) -> Any:
        state = (
            self._inner._release_save()
            if hasattr(self._inner, "_release_save")
            else (self._inner.release() or None)
        )
        self._tracker.note_released(self, all_levels=True)
        return state

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        # Re-acquisition after wait() re-establishes orders the thread
        # already exhibited before waiting; record without raising (a
        # raise inside Condition.wait would strand the condition).
        stack = self._tracker._stack()
        stack.append(self)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"CheckedLock({kind}, site={self.order_name!r})"


# ----------------------------------------------------------------------
# Monkeypatch installation
# ----------------------------------------------------------------------
def _caller_module(depth: int = 2) -> str:
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stack
        return ""
    return str(frame.f_globals.get("__name__", ""))


def _in_packages(module: str, packages: Tuple[str, ...]) -> bool:
    top = module.split(".", 1)[0]
    return top in packages


_install_depth = 0
_saved: Dict[str, Any] = {}
_active_tracker: Optional[LockOrderTracker] = None


def install(
    packages: Tuple[str, ...] = ("repro",),
    tracker: Optional[LockOrderTracker] = None,
) -> LockOrderTracker:
    """Patch ``threading`` so project-created locks are checked.

    Only calls whose *caller* module sits under ``packages`` get a
    :class:`CheckedLock`; everything else receives the real primitive.
    ``threading.Condition()`` created by project code with no explicit
    lock gets a checked reentrant lock so the batcher's condition
    participates in order tracking.  Nested installs share the first
    install's tracker; :func:`uninstall` restores the real factories
    when the outermost install unwinds.
    """
    global _install_depth, _active_tracker
    if _install_depth > 0:
        _install_depth += 1
        if _active_tracker is None:  # pragma: no cover - depth>0 implies set
            raise RuntimeError("lockcheck install depth out of sync")
        return _active_tracker
    active = tracker if tracker is not None else get_tracker()
    _active_tracker = active
    _saved["Lock"] = threading.Lock
    _saved["RLock"] = threading.RLock
    _saved["Condition"] = threading.Condition

    def make_lock() -> Any:
        if _in_packages(_caller_module(2), packages):
            return CheckedLock(
                reentrant=False, name=_call_site(2), tracker=active
            )
        return _REAL_LOCK()

    def make_rlock() -> Any:
        if _in_packages(_caller_module(2), packages):
            return CheckedLock(
                reentrant=True, name=_call_site(2), tracker=active
            )
        return _REAL_RLOCK()

    def make_condition(lock: Any = None) -> Any:
        if lock is None and _in_packages(_caller_module(2), packages):
            lock = CheckedLock(
                reentrant=True, name=_call_site(2), tracker=active
            )
        return _REAL_CONDITION(lock)

    # setattr (not plain assignment) keeps the module's declared types
    # out of it: the factories intentionally do not share a signature
    # with the C-level primitives they stand in for.
    setattr(threading, "Lock", make_lock)
    setattr(threading, "RLock", make_rlock)
    setattr(threading, "Condition", make_condition)
    _install_depth = 1
    return active


def uninstall() -> None:
    """Undo one :func:`install`; restores ``threading`` at depth zero."""
    global _install_depth, _active_tracker
    if _install_depth == 0:
        return
    _install_depth -= 1
    if _install_depth == 0:
        setattr(threading, "Lock", _saved["Lock"])
        setattr(threading, "RLock", _saved["RLock"])
        setattr(threading, "Condition", _saved["Condition"])
        _active_tracker = None


@contextlib.contextmanager
def installed(
    packages: Tuple[str, ...] = ("repro",),
    tracker: Optional[LockOrderTracker] = None,
) -> Iterator[LockOrderTracker]:
    """Context-managed :func:`install`/:func:`uninstall` pair.

    Yields a **fresh** tracker by default so each ``with`` block (each
    test) starts with an empty observed-order graph — orders observed
    by one test must not convict an unrelated later test.
    """
    active = tracker if tracker is not None else LockOrderTracker()
    install(packages=packages, tracker=active)
    try:
        yield active
    finally:
        uninstall()
