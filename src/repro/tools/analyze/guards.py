"""Guard-set inference: GUARD-VIOLATION findings.

The invariant, per class: *an attribute ever written under*
``with self._lock:`` *is guarded by that lock* — every other read or
write of it must hold the same lock.  The per-file ``LOCK-DISCIPLINE``
lint rule checks the write half of this; the analyzer checks reads too,
because the repository's actual bugs were torn *reads* — the
``PredictionCache.hit_rate`` pairing a fresh ``hits`` with a stale
``misses``, the ``PhaseTimer`` summary reading ``total_seconds`` and
``count`` from different moments.

Violations are reported with the guard that was inferred and where the
guarding write lives, so the finding reads as an argument, not an
accusation::

    cache.py:181:9: GUARD-VIOLATION: `self.hits` is guarded by
    `self._lock` (written under it in PredictionCache) but read here
    without holding it

Escapes: ``__init__``/``__new__`` bodies (no concurrent reader exists
yet), ``*_locked`` helpers (callers hold the lock by convention), and
per-line ``# reprolint: disable=GUARD-VIOLATION`` suppressions with a
justification for the deliberate unguarded fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..lint.engine import Finding
from .symbols import Access, ClassInfo, SymbolTable

__all__ = ["GUARD_VIOLATION", "GuardViolation", "guard_findings"]

GUARD_VIOLATION = "GUARD-VIOLATION"


@dataclass(frozen=True)
class GuardViolation:
    """One unguarded access to a guarded attribute."""

    cls: ClassInfo
    method: str
    access: Access
    guards: FrozenSet[str]

    def message(self) -> str:
        guard = "`self." + "`/`self.".join(sorted(self.guards)) + "`"
        verb = "written" if self.access.kind == "write" else "read"
        clause = (
            "under a different lock"
            if self.access.held
            else "without holding it"
        )
        return (
            f"`self.{self.access.attr}` is guarded by {guard} (written "
            f"under it in {self.cls.name}) but {verb} here {clause}"
        )


def class_violations(cls: ClassInfo) -> List[GuardViolation]:
    """Every unguarded access to a guarded attribute of one class."""
    if not cls.lock_attrs:
        return []
    guards = cls.guarded_attrs()
    if not guards:
        return []
    violations: List[GuardViolation] = []
    seen: Set[Tuple[str, int, str]] = set()
    for method in cls.methods.values():
        if method.exempt:
            continue
        for access in method.accesses:
            guard_locks = guards.get(access.attr)
            if guard_locks is None:
                continue
            if access.held & guard_locks:
                continue
            # One finding per attribute per line: an AugAssign's read
            # half, or a mutator call's receiver read, must not double
            # the report of the write at the same spot.
            key = (access.attr, access.line, method.name)
            if key in seen:
                continue
            seen.add(key)
            violations.append(
                GuardViolation(cls, method.name, access, guard_locks)
            )
    violations.sort(key=lambda v: (v.access.line, v.access.col, v.access.attr))
    return violations


def guard_findings(
    table: SymbolTable,
    sources: Optional[Dict[str, Sequence[str]]] = None,
) -> List[Finding]:
    """GUARD-VIOLATION findings over every class in the table.

    ``sources`` maps path -> source lines (used for the finding's
    ``source_line``, which the baseline fingerprints); the engine
    passes the parsed contexts' lines so nothing is re-read from disk.
    """
    findings: List[Finding] = []
    # Deterministic order: by path, then class line.
    ordered = sorted(table.classes.values(), key=lambda c: (c.path, c.lineno))
    for cls in ordered:
        lines: Sequence[str] = (sources or {}).get(cls.path, ())
        for violation in class_violations(cls):
            access = violation.access
            source_line = (
                lines[access.line - 1] if 1 <= access.line <= len(lines) else ""
            )
            findings.append(
                Finding(
                    path=cls.path,
                    line=access.line,
                    col=access.col,
                    rule=GUARD_VIOLATION,
                    message=violation.message(),
                    source_line=source_line,
                )
            )
    return findings
