"""Command-line front end: ``python -m repro.tools.analyze [paths...]``.

Exit codes mirror the linter: 0 = clean (every finding suppressed or
baselined, or none), 1 = at least one fresh finding or parse error,
2 = usage error.  ``--json`` emits the machine-readable report CI
gates on; ``--dot FILE`` writes the lock-acquisition-order graph as
Graphviz DOT (cycle edges highlighted) for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..lint.baseline import Baseline
from ..lint.engine import Finding
from .engine import AnalysisResult, run_analysis
from .guards import GUARD_VIOLATION
from .lockorder import LOCK_ORDER_CYCLE

__all__ = ["build_parser", "main", "DEFAULT_BASELINE_NAME"]

#: The analyzer keeps its accepted-debt file separate from the linter's
#: so `--write-baseline` on one tool can never eat the other's entries.
DEFAULT_BASELINE_NAME = ".reproanalyze-baseline.json"

_RULES = (GUARD_VIOLATION, LOCK_ORDER_CYCLE)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analyze",
        description=(
            "Whole-project concurrency analysis: lock-guard inference "
            "(GUARD-VIOLATION) and deadlock-cycle detection "
            "(LOCK-ORDER-CYCLE) over the class/attribute symbol table."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--dot",
        default=None,
        metavar="FILE",
        help="write the lock-acquisition-order graph as Graphviz DOT "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to report "
        f"(default: all of {', '.join(_RULES)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def _filter_rules(
    findings: List[Finding], selected: Optional[Sequence[str]]
) -> List[Finding]:
    if selected is None:
        return findings
    allowed = set(selected)
    return [f for f in findings if f.rule in allowed]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(f"{GUARD_VIOLATION:20s} guarded attribute accessed "
              "outside its lock")
        print(f"{LOCK_ORDER_CYCLE:20s} locks acquired in a cyclic order "
              "(potential deadlock)")
        return 0

    selected: Optional[List[str]] = None
    if options.select:
        selected = [name.strip() for name in options.select.split(",")]
        unknown = [name for name in selected if name not in _RULES]
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(unknown)}; known "
                f"rules: {', '.join(_RULES)}",
                file=sys.stderr,
            )
            return 2

    baseline_path = options.baseline or os.path.join(
        os.getcwd(), DEFAULT_BASELINE_NAME
    )
    baseline: Optional[Baseline] = None
    if not options.no_baseline and not options.write_baseline:
        if os.path.isfile(baseline_path):
            baseline = Baseline.load(baseline_path)

    try:
        result = run_analysis(options.paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result.findings = _filter_rules(result.findings, selected)
    result.baselined = _filter_rules(result.baselined, selected)
    result.suppressed = _filter_rules(result.suppressed, selected)

    if options.dot:
        dot = result.graph.to_dot()
        if options.dot == "-":
            sys.stdout.write(dot)
        else:
            with open(options.dot, "w", encoding="utf-8") as handle:
                handle.write(dot)

    if options.write_baseline:
        snapshot = Baseline.from_findings(result.all_findings())
        snapshot.dump(baseline_path)
        print(
            f"wrote {len(snapshot.entries)} baseline entrie(s) to "
            f"{baseline_path}"
        )
        return 0

    if options.json:
        print(json.dumps(_json_report(result), indent=2))
        return 0 if result.clean else 1

    for finding in result.all_findings():
        print(finding.render())
    summary = (
        f"{result.files_checked} file(s) checked, "
        f"{len(result.all_findings())} finding(s)"
    )
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    summary += (
        f"; lock graph: {len(result.graph.nodes)} lock(s), "
        f"{len(result.graph.edges)} order edge(s), "
        f"{len(result.graph.cycles())} cycle(s)"
    )
    print(summary)
    return 0 if result.clean else 1


def _json_report(result: AnalysisResult) -> dict:
    return {
        "version": 1,
        "tool": "repro.tools.analyze",
        "files_checked": result.files_checked,
        "rules": list(_RULES),
        "findings": [f.to_json() for f in result.all_findings()],
        "baselined": [f.to_json() for f in result.baselined],
        "suppressed": [f.to_json() for f in result.suppressed],
        "lock_graph": {
            "nodes": [n.label for n in result.graph.nodes],
            "edges": [
                {
                    "src": e.src.label,
                    "dst": e.dst.label,
                    "path": e.path,
                    "line": e.line,
                    "kind": e.kind,
                    "detail": e.detail,
                }
                for e in result.graph.edges
            ],
            "cycles": [
                [n.label for n in cycle] for cycle in result.graph.cycles()
            ],
        },
        "clean": result.clean,
    }


def _entry_point() -> None:
    raise SystemExit(main())
