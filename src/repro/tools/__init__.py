"""Developer tooling that ships with the library (``repro.tools.lint``)."""
