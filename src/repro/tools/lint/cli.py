"""Command-line front end: ``python -m repro.tools.lint [paths...]``.

Exit codes: 0 = clean (every finding baselined or none), 1 = at least
one fresh finding or parse error, 2 = usage error.  ``--json`` emits a
machine-readable report for CI; ``--write-baseline`` snapshots the
current findings as accepted debt (hand-edit the justifications
afterwards).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import run_lint
from .rules import ALL_RULES, default_rules, rules_by_name

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description=(
            "Project-specific static analysis: RNG determinism, lock "
            "discipline, telemetry coverage and general hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:20s} {rule.description}")
        return 0

    try:
        rules = (
            rules_by_name([n.strip() for n in options.select.split(",")])
            if options.select
            else default_rules()
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path = options.baseline or os.path.join(
        os.getcwd(), DEFAULT_BASELINE_NAME
    )
    baseline: Optional[Baseline] = None
    if not options.no_baseline and not options.write_baseline:
        if os.path.isfile(baseline_path):
            baseline = Baseline.load(baseline_path)

    try:
        result = run_lint(options.paths, rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if options.write_baseline:
        snapshot = Baseline.from_findings(result.all_findings())
        snapshot.dump(baseline_path)
        print(
            f"wrote {len(snapshot.entries)} baseline entrie(s) to "
            f"{baseline_path}"
        )
        return 0

    if options.json:
        report = {
            "version": 1,
            "files_checked": result.files_checked,
            "rules": [rule.name for rule in rules],
            "findings": [f.to_json() for f in result.all_findings()],
            "baselined": [f.to_json() for f in result.baselined],
            "clean": result.clean,
        }
        print(json.dumps(report, indent=2))
        return 0 if result.clean else 1

    for finding in result.all_findings():
        print(finding.render())
    fresh = len(result.all_findings())
    summary = (
        f"{result.files_checked} file(s) checked, {fresh} finding(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    print(summary)
    return 0 if result.clean else 1


def _entry_point() -> None:
    raise SystemExit(main())
