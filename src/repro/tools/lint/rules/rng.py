"""RNG-DETERMINISM: every random number must come from an injected
``numpy.random.Generator``.

The paper's claims are statements about *seeded* runs — Table 2
accuracies, the Fig. 5/6 lazy-update speedup curves — so any draw from
NumPy's hidden global state (``np.random.seed`` / ``rand`` / ``randn``
/ ...) makes a result silently irreproducible: the global stream is
shared across the whole process, and its position depends on import
order and whatever ran before.  Two violations are flagged:

- any call through the legacy global-state API
  (``np.random.<seed|rand|randn|randint|...>`` or
  ``np.random.RandomState``);
- ``np.random.default_rng()`` called with **no seed** anywhere outside
  the sanctioned :mod:`repro.rng` module, which owns the project's one
  root ``SeedSequence`` and spawns deterministic child streams.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Finding, LintContext, Rule

__all__ = ["RngDeterminismRule"]

# The legacy numpy.random functions that read/write hidden global state.
_LEGACY_GLOBAL_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
        "poisson",
        "beta",
        "gamma",
        "exponential",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "get_state",
        "set_state",
    }
)

# Module(s) allowed to create unseeded generators: the single place the
# project's default stream is rooted.
_SANCTIONED_MODULES = frozenset({"repro.rng"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class RngDeterminismRule(Rule):
    name = "RNG-DETERMINISM"
    description = (
        "No global-state np.random.* calls; unseeded default_rng() only "
        "inside repro.rng"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        sanctioned = ctx.module in _SANCTIONED_MODULES
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            head, _, fn = dotted.rpartition(".")
            if head not in ("np.random", "numpy.random"):
                continue
            if fn in _LEGACY_GLOBAL_FNS or fn == "RandomState":
                yield self.finding(
                    ctx,
                    node,
                    f"call to global-state RNG `{dotted}`; inject a "
                    "numpy.random.Generator (see repro.rng) so the draw "
                    "is seeded and isolated",
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                if not sanctioned:
                    yield self.finding(
                        ctx,
                        node,
                        "unseeded `default_rng()`; pass an explicit seed "
                        "or use repro.rng.default_generator() so the "
                        "stream is reproducible",
                    )
