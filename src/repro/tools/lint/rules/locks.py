"""LOCK-DISCIPLINE: attributes guarded by a lock stay guarded.

The serving layer's correctness argument (atomic hot-swap in
``ModelRegistry``, LRU consistency in ``PredictionCache``, bounded
queue in ``MicroBatcher``) rests on a convention no generic linter
checks: *if an attribute is ever mutated under* ``with self._lock:``,
*every* mutation of it must hold that lock.  A single unguarded write
is a data race that no test reliably catches.

Mechanics, per class:

1. find lock attributes: ``self.X = threading.Lock()`` (also
   ``RLock`` / ``Condition``, with or without the ``threading.``
   prefix) assigned anywhere in the class;
2. collect the *guarded set*: every ``self.Y`` that is assigned,
   aug-assigned, deleted, or mutated through a known mutating method
   (``append`` / ``pop`` / ``setdefault`` / ...) inside a
   ``with self.X:`` block;
3. flag any such write to a guarded attribute outside a ``with``
   holding one of the class's locks.

Two escapes encode legitimate patterns: ``__init__`` / ``__new__`` are
exempt (no concurrent readers can exist before the constructor
returns), and methods whose name ends in ``_locked`` are assumed to be
called with the lock already held — the convention
``MicroBatcher._take_matching_locked`` established.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..engine import Finding, LintContext, Rule

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

# Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "move_to_end",
        "rotate",
    }
)

_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _is_lock_factory(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``Lock()`` (and RLock/Condition)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """The ``X`` in a chain rooted at ``self.X`` (through subscripts,
    attribute hops and call results), else ``None``."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _with_held_locks(node: ast.With, lock_attrs: Set[str]) -> Set[str]:
    """Which of the class's locks a ``with`` statement acquires."""
    held: Set[str] = set()
    for item in node.items:
        root = _self_attr_root(item.context_expr)
        if root in lock_attrs:
            held.add(root)
    return held


class _WriteCollector:
    """Walk one method body tracking whether a class lock is held."""

    def __init__(self, lock_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        # (attr, node, locked) for every self.X write encountered.
        self.writes: List[Tuple[str, ast.AST, bool]] = []

    def collect(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, locked=False)

    def _visit(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            inner = locked or bool(_with_held_locks(node, self.lock_attrs))
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                root = _self_attr_root(target)
                if root is not None and root not in self.lock_attrs:
                    self.writes.append((root, node, locked))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _self_attr_root(target)
                if root is not None and root not in self.lock_attrs:
                    self.writes.append((root, node, locked))
        elif isinstance(node, ast.Call):
            # Mutating method calls count as writes wherever they appear
            # (statement or expression position: `self._q.append(...)`,
            # `slot = self._memory.setdefault(...)`, ...).
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _self_attr_root(func.value)
                if root is not None and root not in self.lock_attrs:
                    self.writes.append((root, node, locked))
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked)


class LockDisciplineRule(Rule):
    name = "LOCK-DISCIPLINE"
    description = (
        "Attributes mutated under a class lock must always be mutated "
        "under it (except __init__ and *_locked helpers)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    root = _self_attr_root(target)
                    if root is not None:
                        lock_attrs.add(root)
        if not lock_attrs:
            return

        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        per_method: List[Tuple[ast.FunctionDef, _WriteCollector]] = []
        guarded: Set[str] = set()
        for method in methods:
            collector = _WriteCollector(lock_attrs)
            collector.collect(method.body)
            per_method.append((method, collector))
            for attr, _node, locked in collector.writes:
                if locked:
                    guarded.add(attr)

        reported: Set[Tuple[str, int]] = set()
        for method, collector in per_method:
            if method.name in _EXEMPT_METHODS:
                continue
            if method.name.endswith("_locked"):
                continue
            for attr, node, locked in collector.writes:
                key = (attr, getattr(node, "lineno", 0))
                if attr in guarded and not locked and key not in reported:
                    reported.add(key)
                    yield self.finding(
                        ctx,
                        node,
                        f"`self.{attr}` is mutated under a lock elsewhere "
                        f"in `{cls.name}` but written here without holding "
                        "one; wrap in `with self."
                        f"{sorted(lock_attrs)[0]}:` (or rename the method "
                        "*_locked if callers hold it)",
                    )
