"""LOCK-DISCIPLINE: attributes guarded by a lock stay guarded.

The serving layer's correctness argument (atomic hot-swap in
``ModelRegistry``, LRU consistency in ``PredictionCache``, bounded
queue in ``MicroBatcher``) rests on a convention no generic linter
checks: *if an attribute is ever mutated under* ``with self._lock:``,
*every* mutation of it must hold that lock.  A single unguarded write
is a data race that no test reliably catches.

The guard-set inference itself lives in the concurrency analyzer's
symbol table (:mod:`repro.tools.analyze.symbols`): lock-attribute
discovery, write collection (assignments, aug-assignments, deletes and
mutating method calls), and held-lock tracking through ``with self.X:``
bodies are all computed there, once, and shared with the project-wide
analyses (``GUARD-VIOLATION`` / ``LOCK-ORDER-CYCLE``).  This rule is
the per-file, writes-only subset of that machinery: it flags a write to
a guarded attribute made while holding *no* class lock.  The analyzer's
``GUARD-VIOLATION`` is the stricter superset (reads too, and
wrong-lock accesses); keeping this rule separate keeps its ID — and
every existing suppression and baseline fingerprint — stable.

Two escapes encode legitimate patterns: ``__init__`` / ``__new__`` are
exempt (no concurrent readers can exist before the constructor
returns), and methods whose name ends in ``_locked`` are assumed to be
called with the lock already held — the convention
``MicroBatcher._take_matching_locked`` established.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ...analyze.symbols import ClassInfo, SymbolTable
from ..engine import Finding, LintContext, Rule

__all__ = ["LockDisciplineRule"]


class LockDisciplineRule(Rule):
    name = "LOCK-DISCIPLINE"
    description = (
        "Attributes mutated under a class lock must always be mutated "
        "under it (except __init__ and *_locked helpers)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        table = SymbolTable.build([ctx])
        for cls in table.classes.values():
            if cls.path == ctx.path:
                yield from self._check_class(ctx, cls)

    def _check_class(
        self, ctx: LintContext, cls: ClassInfo
    ) -> Iterator[Finding]:
        if not cls.lock_attrs:
            return
        guarded = cls.guarded_attrs()
        if not guarded:
            return
        default_lock = sorted(cls.lock_attrs)[0]
        reported: Set[Tuple[str, int]] = set()
        for method in cls.methods.values():
            if method.exempt:
                continue
            for access in method.accesses:
                if access.kind != "write" or access.attr not in guarded:
                    continue
                if access.held:
                    # The old rule accepted *any* class lock here; the
                    # wrong-lock case is GUARD-VIOLATION's to report.
                    continue
                key = (access.attr, access.line)
                if key in reported:
                    continue
                reported.add(key)
                source_line = ""
                if 1 <= access.line <= len(ctx.lines):
                    source_line = ctx.lines[access.line - 1]
                yield Finding(
                    path=ctx.path,
                    line=access.line,
                    col=access.col,
                    rule=self.name,
                    message=(
                        f"`self.{access.attr}` is mutated under a lock "
                        f"elsewhere in `{cls.name}` but written here "
                        "without holding one; wrap in `with self."
                        f"{default_lock}:` (or rename the method *_locked "
                        "if callers hold it)"
                    ),
                    source_line=source_line,
                )
