"""The project rule set.

``ALL_RULES`` is the canonical ordering used by the CLI and the
self-check test; ``rules_by_name`` supports ``--select``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..engine import Rule
from .docstrings import DocstringPublicRule
from .general import (
    AssertRuntimeRule,
    BareExceptRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
from .locks import LockDisciplineRule
from .rng import RngDeterminismRule
from .telemetry import TelemetryCoverageRule

__all__ = [
    "ALL_RULES",
    "AssertRuntimeRule",
    "BareExceptRule",
    "DocstringPublicRule",
    "FloatEqualityRule",
    "LockDisciplineRule",
    "MutableDefaultRule",
    "RngDeterminismRule",
    "TelemetryCoverageRule",
    "default_rules",
    "rules_by_name",
]

ALL_RULES = (
    RngDeterminismRule,
    LockDisciplineRule,
    TelemetryCoverageRule,
    DocstringPublicRule,
    MutableDefaultRule,
    BareExceptRule,
    FloatEqualityRule,
    AssertRuntimeRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every rule, in canonical order."""
    return [rule() for rule in ALL_RULES]


def rules_by_name(names: Sequence[str]) -> List[Rule]:
    """Instantiate the subset of rules named in ``names``."""
    table: Dict[str, type] = {rule.name: rule for rule in ALL_RULES}
    selected: List[Rule] = []
    for name in names:
        if name not in table:
            known = ", ".join(sorted(table))
            raise KeyError(f"unknown rule {name!r}; known rules: {known}")
        selected.append(table[name]())
    return selected
