"""DOCSTRING-PUBLIC: public core/serve/telemetry API carries docstrings.

The serving and telemetry subsystems are the repo's operator-facing
surface — the runbook (``docs/RUNBOOK.md``) and architecture notes
lean on their docstrings, and ``help()`` at a debugging prompt is the
operator's first tool.  ``repro.core`` is the paper's algorithmic
surface (mixtures, regularizers, the fused E-step kernels) and is held
to the same bar.  This rule keeps that surface documented for the
``repro.core``, ``repro.serve`` and ``repro.telemetry`` packages:

- every public module-level **class** and **function** needs a
  docstring;
- every public **method** of a public class needs one too;
- anything underscore-prefixed (including dunders), nested functions,
  and ``@x.setter`` / ``@x.deleter`` companions (the getter holds the
  doc) are exempt.

Like every rule here it is baseline-budgeted: pre-existing gaps can be
absorbed into ``.reprolint-baseline.json``, but new undocumented API
fails CI.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Union

from ..engine import Finding, LintContext, Rule

__all__ = ["DocstringPublicRule"]

_SCOPED_PACKAGES = ("repro.core", "repro.serve", "repro.telemetry")

_DefNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_accessor_companion(node: _DefNode) -> bool:
    """Whether ``node`` is a ``@x.setter`` / ``@x.deleter`` overload."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            "setter",
            "deleter",
        ):
            return True
    return False


def _public_defs(
    tree: ast.Module,
) -> Iterator[Tuple[Union[_DefNode, ast.ClassDef], str]]:
    """Yield ``(node, kind)`` for every public top-level def/class/method."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node, "function"
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield node, "class"
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name.startswith("_"):
                    continue
                if _is_accessor_companion(item):
                    continue
                yield item, f"method `{node.name}.{item.name}`"


class DocstringPublicRule(Rule):
    name = "DOCSTRING-PUBLIC"
    description = (
        "public classes/functions/methods in repro.core, repro.serve "
        "and repro.telemetry must carry docstrings"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SCOPED_PACKAGES):
            return
        for node, kind in _public_defs(ctx.tree):
            if ast.get_docstring(node) is not None:
                continue
            label = kind if kind.startswith("method") else (
                f"{kind} `{node.name}`"
            )
            yield self.finding(
                ctx,
                node,
                f"public {label} has no docstring; document the "
                "operator-facing API (or underscore-prefix genuinely "
                "internal helpers)",
            )
