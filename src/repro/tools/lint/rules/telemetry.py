"""TELEMETRY-COVERAGE: metrics flow through the sanctioned accessors.

The Fig. 5-7 reproduction reads *phase-attributed* timings out of
:class:`repro.telemetry.metrics.MetricsRegistry` snapshots, and the
serving benchmarks read their QPS/latency numbers from the same place.
That only works if every hot path plays by three rules — checked here
for the ``repro.serve`` and ``repro.optim`` packages:

- **no registry internals**: touching ``_counters`` / ``_gauges`` /
  ``_histograms`` / ``_timers`` directly bypasses the kind check and
  the create-on-first-access sharing; use ``counter()`` / ``gauge()``
  / ``histogram()`` / ``timer()``;
- **no orphan instruments**: instantiating ``Counter(...)`` /
  ``PhaseTimer(...)`` directly creates an instrument invisible to
  ``snapshot()`` and the BENCH exporters;
- **no raw wall clocks**: calling ``time.time()`` /
  ``time.perf_counter()`` in these packages sidesteps the registry's
  *injectable* clock, which is what lets the timing tests substitute a
  fake clock instead of sleeping.  (``time.monotonic`` is allowed —
  scheduling waits are not measurements.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, Rule
from .rng import _dotted_name

__all__ = ["TelemetryCoverageRule"]

_SCOPED_PACKAGES = ("repro.serve", "repro.optim")

_REGISTRY_INTERNALS = frozenset(
    {"_counters", "_gauges", "_histograms", "_timers"}
)

_INSTRUMENT_TYPES = frozenset(
    {"Counter", "Gauge", "Histogram", "PhaseTimer"}
)

_RAW_CLOCKS = frozenset({"time.time", "time.perf_counter"})


class TelemetryCoverageRule(Rule):
    name = "TELEMETRY-COVERAGE"
    description = (
        "serve/optim hot paths must use MetricsRegistry accessors and its "
        "injected clock, never registry internals or raw wall clocks"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in _REGISTRY_INTERNALS:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct access to registry internal `{node.attr}`; "
                        "go through counter()/gauge()/histogram()/timer() "
                        "so kind checks and snapshots stay correct",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                tail = dotted.rpartition(".")[2]
                if dotted in _RAW_CLOCKS:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw `{dotted}()` in a telemetry-covered package; "
                        "use the registry's injected clock "
                        "(`metrics.clock()`) or a `with metrics.timer(...)` "
                        "block so fake clocks keep tests deterministic",
                    )
                elif tail in _INSTRUMENT_TYPES and dotted in (
                    tail,
                    f"metrics.{tail}",
                    f"telemetry.{tail}",
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct `{tail}(...)` instantiation; obtain "
                        "instruments from a MetricsRegistry accessor so "
                        "they appear in snapshot() and the BENCH exports",
                    )
