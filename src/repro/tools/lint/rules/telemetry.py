"""TELEMETRY-COVERAGE: metrics flow through the sanctioned accessors.

The Fig. 5-7 reproduction reads *phase-attributed* timings out of
:class:`repro.telemetry.metrics.MetricsRegistry` snapshots, and the
serving benchmarks read their QPS/latency numbers from the same place.
That only works if every hot path plays by three rules — checked here
for the ``repro.serve``, ``repro.optim`` and ``repro.online``
packages:

- **no registry internals**: touching ``_counters`` / ``_gauges`` /
  ``_histograms`` / ``_timers`` directly bypasses the kind check and
  the create-on-first-access sharing; use ``counter()`` / ``gauge()``
  / ``histogram()`` / ``timer()``;
- **no orphan instruments**: instantiating ``Counter(...)`` /
  ``PhaseTimer(...)`` directly creates an instrument invisible to
  ``snapshot()`` and the BENCH exporters;
- **no raw wall clocks**: calling ``time.time()`` /
  ``time.perf_counter()`` in these packages sidesteps the registry's
  *injectable* clock, which is what lets the timing tests substitute a
  fake clock instead of sleeping.  (``time.monotonic`` is allowed —
  scheduling waits are not measurements.)

A fourth rule covers tracing, for ``repro.serve`` and
``repro.online``:

- **no invisible entry points**: every public entry-point method
  (serving: ``request``, ``predict``, ``predict_proba``,
  ``decision_function``, ``predict_many``; continuous learning:
  ``partial_fit``, ``publish``, ``maybe_publish``, ``observe``,
  ``decide``, ``step``, ``run``) must either open a span (any call
  whose name ends in ``start_span`` — directly or via a helper like
  ``self._start_span``) or visibly delegate to another entry point on
  ``self`` that does.  Otherwise requests — or train/publish/promote
  decisions — through that method never appear in trace logs, and the
  promotion history stops being reconstructable from telemetry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, Rule
from .rng import _dotted_name

__all__ = ["TelemetryCoverageRule"]

_SCOPED_PACKAGES = ("repro.serve", "repro.optim", "repro.online")

_REGISTRY_INTERNALS = frozenset(
    {"_counters", "_gauges", "_histograms", "_timers"}
)

_INSTRUMENT_TYPES = frozenset(
    {"Counter", "Gauge", "Histogram", "PhaseTimer"}
)

_RAW_CLOCKS = frozenset({"time.time", "time.perf_counter"})

# Public serving entry points that must be visible to tracing.
_SERVE_ENTRY_POINTS = frozenset(
    {"request", "predict", "predict_proba", "decision_function",
     "predict_many"}
)

# Continuous-learning entry points: the train/publish/shadow/promote
# surface whose span events make the decision history reconstructable.
_ONLINE_ENTRY_POINTS = frozenset(
    {"partial_fit", "publish", "maybe_publish", "observe", "decide",
     "step", "run"}
)


def _opens_span_or_delegates(
    func: ast.FunctionDef, entry_points: frozenset
) -> bool:
    """True if ``func`` starts a span or calls a sibling entry point."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is None:
            continue
        tail = dotted.rpartition(".")[2]
        if tail.endswith("start_span"):
            return True
        if (
            tail in entry_points
            and tail != func.name
            and dotted == f"self.{tail}"
        ):
            return True
    return False


class TelemetryCoverageRule(Rule):
    name = "TELEMETRY-COVERAGE"
    description = (
        "serve/optim hot paths must use MetricsRegistry accessors and its "
        "injected clock, never registry internals or raw wall clocks"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SCOPED_PACKAGES):
            return
        if ctx.in_package("repro.serve"):
            yield from self._check_span_coverage(
                ctx, _SERVE_ENTRY_POINTS, "serving"
            )
        if ctx.in_package("repro.online"):
            yield from self._check_span_coverage(
                ctx, _ONLINE_ENTRY_POINTS, "continuous-learning"
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in _REGISTRY_INTERNALS:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct access to registry internal `{node.attr}`; "
                        "go through counter()/gauge()/histogram()/timer() "
                        "so kind checks and snapshots stay correct",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                tail = dotted.rpartition(".")[2]
                if dotted in _RAW_CLOCKS:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw `{dotted}()` in a telemetry-covered package; "
                        "use the registry's injected clock "
                        "(`metrics.clock()`) or a `with metrics.timer(...)` "
                        "block so fake clocks keep tests deterministic",
                    )
                elif tail in _INSTRUMENT_TYPES and dotted in (
                    tail,
                    f"metrics.{tail}",
                    f"telemetry.{tail}",
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct `{tail}(...)` instantiation; obtain "
                        "instruments from a MetricsRegistry accessor so "
                        "they appear in snapshot() and the BENCH exports",
                    )

    def _check_span_coverage(
        self, ctx: LintContext, entry_points: frozenset, kind: str
    ) -> Iterator[Finding]:
        """Public entry points must open (or delegate to) a span."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name not in entry_points:
                    continue
                if _opens_span_or_delegates(item, entry_points):
                    continue
                yield self.finding(
                    ctx,
                    item,
                    f"{kind} entry point `{node.name}.{item.name}` opens "
                    "no span: call start_span (directly or via a helper) "
                    "or delegate to an entry point that does, so requests "
                    "stay visible to trace logs",
                )
