"""General numerical-library hygiene rules.

These four are classics, but each maps to a concrete failure mode this
reproduction has to care about:

- **MUTABLE-DEFAULT** — a shared default list/dict turns two
  independently constructed trainers into secretly coupled ones.
- **BARE-EXCEPT** — ``except:`` swallows ``KeyboardInterrupt`` /
  ``SystemExit``; a serving worker that catches those can never be
  shut down cleanly.
- **FLOAT-EQUALITY** — ``x == 0.3`` style comparisons against float
  literals are order-of-operations lotteries; the server's own
  docstring documents that batched and unbatched paths differ by ulps.
- **ASSERT-RUNTIME** — ``assert`` compiles away under ``python -O``,
  so using it to validate runtime state in library code means the
  check silently vanishes in optimized deployments; raise a real
  exception instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, Rule

__all__ = [
    "AssertRuntimeRule",
    "BareExceptRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})


class MutableDefaultRule(Rule):
    name = "MUTABLE-DEFAULT"
    description = "No mutable default argument values"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "default to None and create the value in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
        return False


class BareExceptRule(Rule):
    name = "BARE-EXCEPT"
    description = "No bare `except:` clauses"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` also catches KeyboardInterrupt/"
                    "SystemExit; name the exception type (use "
                    "`except Exception:` at minimum)",
                )


class FloatEqualityRule(Rule):
    name = "FLOAT-EQUALITY"
    description = "No == / != against float literals"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, (left, right) in zip(
                node.ops, zip(operands, operands[1:])
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    for side in (left, right)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= against a float literal; use "
                        "math.isclose/np.isclose, or an inequality for "
                        "zero-sentinel checks",
                    )
                    break


class AssertRuntimeRule(Rule):
    name = "ASSERT-RUNTIME"
    description = "No `assert` for runtime validation in library code"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "`assert` is stripped under python -O; raise "
                    "ValueError/TypeError/RuntimeError for runtime "
                    "validation in library code",
                )
