"""Project-specific static analysis for the GM-regularizer reproduction.

Generic linters cannot state this project's invariants — that every
random draw comes from an injected seeded ``Generator``, that the
serving layer's lock-guarded attributes stay guarded, that metrics go
through the sanctioned :class:`~repro.telemetry.metrics.MetricsRegistry`
accessors.  This package encodes them as AST rules with CI-friendly
plumbing (JSON output, exit codes, per-line suppressions, a committed
baseline for accepted debt).

Run it as ``python -m repro.tools.lint src/``.
"""

from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .engine import (
    Finding,
    LintContext,
    LintResult,
    Rule,
    fingerprint,
    lint_source,
    run_lint,
)
from .rules import ALL_RULES, default_rules, rules_by_name

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "default_rules",
    "fingerprint",
    "lint_source",
    "rules_by_name",
    "run_lint",
]
