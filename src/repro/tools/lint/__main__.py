"""Module entry point: ``python -m repro.tools.lint src/``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
