"""Committed baseline of accepted findings.

Pre-existing debt (or deliberate exceptions) should not make CI red —
but any *new* violation must.  The baseline file records accepted
findings by fingerprint (path + rule + stripped source line, so line
drift does not invalidate it) with an explicit ``justification`` string
per entry.  ``python -m repro.tools.lint src/ --write-baseline``
regenerates the file from the current findings; hand-edit the
justifications afterwards.

Matching is counted: an entry with ``count: 2`` absorbs at most two
identical findings, so duplicating a baselined violation still fails.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Finding

__all__ = ["Baseline", "BaselineMatcher", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    line_content: str
    count: int = 1
    justification: str = ""


class BaselineMatcher:
    """Mutable per-run view: each finding consumes one unit of budget."""

    def __init__(self, budgets: Dict[str, int]):
        self._budgets = dict(budgets)

    def absorb(self, finding: "Finding") -> bool:
        from .engine import fingerprint

        key = fingerprint(finding)
        remaining = self._budgets.get(key, 0)
        if remaining <= 0:
            return False
        self._budgets[key] = remaining - 1
        return True


class Baseline:
    """The committed set of accepted findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)

    def matcher(self) -> BaselineMatcher:
        budgets: Dict[str, int] = {}
        for entry in self.entries:
            budgets[entry.fingerprint] = budgets.get(entry.fingerprint, 0) + max(
                entry.count, 0
            )
        return BaselineMatcher(budgets)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        entries = [
            BaselineEntry(
                fingerprint=item["fingerprint"],
                rule=item.get("rule", ""),
                path=item.get("path", ""),
                line_content=item.get("line_content", ""),
                count=int(item.get("count", 1)),
                justification=item.get("justification", ""),
            )
            for item in payload.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def load_default(cls, start_dir: str = ".") -> "Baseline":
        """Baseline from ``.reprolint-baseline.json`` in ``start_dir`` (or
        an empty baseline when the file does not exist)."""
        path = os.path.join(start_dir, DEFAULT_BASELINE_NAME)
        if os.path.isfile(path):
            return cls.load(path)
        return cls()

    @classmethod
    def from_findings(cls, findings: Sequence["Finding"]) -> "Baseline":
        from .engine import fingerprint

        grouped: Dict[str, BaselineEntry] = {}
        for finding in findings:
            key = fingerprint(finding)
            entry = grouped.get(key)
            if entry is None:
                grouped[key] = BaselineEntry(
                    fingerprint=key,
                    rule=finding.rule,
                    path=finding.path,
                    line_content=finding.source_line.strip(),
                    count=1,
                    justification="TODO: justify or fix",
                )
            else:
                entry.count += 1
        return cls(sorted(grouped.values(), key=lambda e: (e.path, e.rule)))

    def dump(self, path: str) -> None:
        payload = {
            "version": 1,
            "tool": "repro.tools.lint",
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "line_content": entry.line_content,
                    "count": entry.count,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
