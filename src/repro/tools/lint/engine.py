"""Core machinery of the project linter: contexts, findings, the runner.

``repro.tools.lint`` exists because the invariants this reproduction
depends on — seeded RNG streams, lock-guarded mutation in the serving
layer, metrics flowing through the sanctioned registry accessors — are
*project* rules that generic linters cannot express.  Each rule is a
small AST pass (see :mod:`repro.tools.lint.rules`); this module owns
everything around them:

- :class:`LintContext` — one parsed file (source, AST, dotted module
  name, per-line suppressions);
- :class:`Finding` — one rule violation at one location;
- :func:`run_lint` — walk paths, parse, run every rule, apply
  ``# reprolint: disable=RULE`` suppressions and the committed
  baseline, and return a :class:`LintResult`.

Suppressions are per line::

    t0 = time.time()  # reprolint: disable=TELEMETRY-COVERAGE -- wall clock is the point here

``disable=all`` silences every rule on that line.  The text after
``--`` is a free-form justification (encouraged, not enforced).
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "collect_python_files",
    "fingerprint",
    "lint_file",
    "lint_source",
    "run_lint",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\-]+|all)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    source_line: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": fingerprint(self),
        }


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding for baseline matching.

    Hashes the *stripped source line* rather than the line number, so a
    baselined finding keeps matching when unrelated edits shift the file
    up or down.
    """
    normalized = finding.source_line.strip()
    payload = f"{finding.path}::{finding.rule}::{normalized}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class Rule:
    """Base class for one lint rule.

    Subclasses set ``name`` / ``description`` and implement
    :meth:`check` as a generator of findings over ``ctx.tree``.
    """

    name: str = ""
    description: str = ""

    def check(self, ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "LintContext", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source_line = ""
        if 1 <= line <= len(ctx.lines):
            source_line = ctx.lines[line - 1]
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            source_line=source_line,
        )


class LintContext:
    """One parsed Python file plus everything rules need to inspect it."""

    def __init__(self, path: str, source: str, module: Optional[str] = None):
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.module = module if module is not None else _infer_module(path)
        self._suppressions: Dict[int, Set[str]] = _parse_suppressions(self.lines)

    def suppressed(self, finding: Finding) -> bool:
        rules = self._suppressions.get(finding.line)
        if not rules:
            return False
        return "all" in rules or finding.rule in rules

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file's dotted module sits under any prefix."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        spec = match.group(1)
        if spec == "all":
            table[number] = {"all"}
        else:
            table[number] = {part.strip() for part in spec.split(",") if part.strip()}
    return table


def _infer_module(path: str) -> Optional[str]:
    """Dotted module name from the filesystem (``.../src/repro/x.py`` ->
    ``repro.x``), by walking up while ``__init__.py`` files are present."""
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    stem, ext = os.path.splitext(filename)
    if ext != ".py":
        return None
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else None


@dataclass
class LintResult:
    """Outcome of a lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        return list(self.parse_errors) + list(self.findings)


def collect_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                collected.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(root, filename))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(set(collected))


def lint_source(
    source: str,
    rules: Sequence[Rule],
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Finding]:
    """Run ``rules`` over in-memory source (fixture tests use this)."""
    ctx = LintContext(path, source, module=module)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str, rules: Sequence[Rule]) -> List[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    display = os.path.relpath(path)
    return lint_source(source, rules, path=display)


def run_lint(
    paths: Iterable[str],
    rules: Sequence[Rule],
    baseline: Optional["Baseline"] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and split findings into
    fresh ones versus those covered by the committed baseline."""
    result = LintResult()
    matcher = baseline.matcher() if baseline is not None else None
    for path in collect_python_files(paths):
        result.files_checked += 1
        try:
            findings = lint_file(path, rules)
        except SyntaxError as exc:
            result.parse_errors.append(
                Finding(
                    path=os.path.relpath(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="SYNTAX-ERROR",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for finding in findings:
            if matcher is not None and matcher.absorb(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    return result


# Imported at the bottom to avoid a cycle (baseline needs Finding).
from .baseline import Baseline  # noqa: E402,F401
