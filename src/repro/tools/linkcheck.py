"""Offline markdown link checker for the repository's docs.

The operator docs (``README.md``, ``DESIGN.md``, ``docs/``) cross-link
heavily — runbook sections reference architecture diagrams, the README
links into both — and dead links rot silently until a reader hits
them.  This tool makes the docs graph a CI invariant:

- every **relative link** must resolve to an existing file or
  directory (resolved against the linking file's own directory);
- every **anchor fragment** (``#queue-saturation``, in-page or
  cross-page) must match a heading in the target markdown file, using
  GitHub's heading-to-slug rules (lowercase, punctuation stripped,
  spaces to hyphens, ``-N`` suffixes for duplicates);
- links inside fenced code blocks and inline code spans are ignored
  (they are examples, not navigation);
- **external** links (``http://``, ``https://``, ``mailto:``) are
  skipped — CI runs offline, and flaky third-party servers must not
  fail the build.

Usage::

    python -m repro.tools.linkcheck README.md DESIGN.md docs/

Directories are walked recursively for ``*.md``.  Exit code 0 means
every checked link resolves; 1 means at least one is broken (each is
reported as ``file:line: target -- reason``); 2 is a usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Problem",
    "check_file",
    "collect_markdown",
    "extract_links",
    "heading_slugs",
    "main",
    "slugify",
]

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Inline links/images: [text](target) / ![alt](target "title").  The
# target stops at whitespace or the closing paren, which rejects the
# rare nested-paren URL but never a repository-relative path.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?[^)]*\)")
# Reference-style definitions: [label]: target
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")
_INLINE_CODE = re.compile(r"`[^`]*`")
# Markdown emphasis/links inside heading text, removed before slugging.
_HEADING_MARKUP = re.compile(r"\[([^\]]*)\]\([^)]*\)")
_SLUG_DROP = re.compile(r"[^\w\- ]", flags=re.UNICODE)


@dataclass(frozen=True)
class Problem:
    """One broken link: where it is, what it points at, what's wrong."""

    file: str
    line: int
    target: str
    reason: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: {self.target} -- {self.reason}"


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading's text.

    Link markup is reduced to its text, inline code markers dropped,
    then: lowercase, strip everything but word characters / hyphens /
    spaces, and turn spaces into hyphens.
    """
    text = _HEADING_MARKUP.sub(r"\1", heading)
    text = text.replace("`", "").replace("*", "")
    text = _SLUG_DROP.sub("", text.lower())
    return text.strip().replace(" ", "-")


def _masked_lines(text: str) -> List[str]:
    """The file's lines with fenced blocks and inline code blanked.

    Line numbering is preserved (blanked lines stay present) so link
    positions keep pointing at the real source line.
    """
    masked: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            masked.append("")
            continue
        if in_fence:
            masked.append("")
            continue
        masked.append(_INLINE_CODE.sub("", line))
    return masked


def heading_slugs(text: str) -> Set[str]:
    """Every anchor slug defined by ``text``'s markdown headings.

    Duplicate headings get GitHub's ``-1``, ``-2`` suffixes, so both
    the bare slug and the suffixed variants are valid anchors.
    """
    slugs: Set[str] = set()
    seen: Dict[str, int] = {}
    for line in _masked_lines(text):
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def extract_links(text: str) -> List[Tuple[int, str]]:
    """``(line_number, target)`` for every link outside code regions."""
    links: List[Tuple[int, str]] = []
    for number, line in enumerate(_masked_lines(text), start=1):
        for match in _INLINE_LINK.finditer(line):
            links.append((number, match.group(1)))
        reference = _REFERENCE_DEF.match(line)
        if reference is not None:
            links.append((number, reference.group(1)))
    return links


def _split_fragment(target: str) -> Tuple[str, Optional[str]]:
    if "#" in target:
        path, fragment = target.split("#", 1)
        return path, fragment
    return target, None


def _slugs_of(path: str, cache: Dict[str, Set[str]]) -> Set[str]:
    resolved = os.path.realpath(path)
    if resolved not in cache:
        with open(resolved, "r", encoding="utf-8") as handle:
            cache[resolved] = heading_slugs(handle.read())
    return cache[resolved]


def check_file(
    path: str, slug_cache: Optional[Dict[str, Set[str]]] = None
) -> List[Problem]:
    """Validate every relative link and anchor in one markdown file."""
    if slug_cache is None:
        slug_cache = {}
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    base = os.path.dirname(os.path.abspath(path))
    problems: List[Problem] = []
    for line, target in extract_links(text):
        lowered = target.lower()
        if lowered.startswith(_EXTERNAL_SCHEMES):
            continue
        rel_path, fragment = _split_fragment(target)
        if not rel_path:
            # Pure in-page anchor: #section
            if fragment and fragment.lower() not in _slugs_of(
                path, slug_cache
            ):
                problems.append(
                    Problem(path, line, target, "no such heading anchor")
                )
            continue
        resolved = os.path.normpath(os.path.join(base, rel_path))
        if not os.path.exists(resolved):
            problems.append(
                Problem(path, line, target, "file does not exist")
            )
            continue
        if fragment:
            if not resolved.endswith(".md"):
                problems.append(
                    Problem(
                        path, line, target,
                        "anchor on a non-markdown target",
                    )
                )
            elif fragment.lower() not in _slugs_of(resolved, slug_cache):
                problems.append(
                    Problem(path, line, target, "no such heading anchor")
                )
    return problems


def collect_markdown(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into the markdown files to check.

    Directories are walked recursively for ``*.md``; explicit file
    arguments are taken as-is (so a missing one is a loud error rather
    than a silent skip).
    """
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.linkcheck",
        description=(
            "Check relative markdown links and heading anchors offline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="markdown files or directories to walk for *.md",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-file summary; print only problems",
    )
    options = parser.parse_args(argv)

    slug_cache: Dict[str, Set[str]] = {}
    problems: List[Problem] = []
    checked = 0
    for path in collect_markdown(options.paths):
        if not os.path.exists(path):
            problems.append(Problem(path, 0, path, "file does not exist"))
            continue
        checked += 1
        problems.extend(check_file(path, slug_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not options.quiet:
        print(
            f"linkcheck: {checked} file(s) checked, "
            f"{len(problems)} broken link(s)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
