"""``python -m repro`` entry point: the experiment CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
