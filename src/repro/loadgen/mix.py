"""Traffic mixes: seeded, replayable request schedules for load tests.

A load test is only evidence if it can be replayed: the same mix, seed
and request count must produce the *same* schedule — same rows, same
methods, same inter-arrival gaps, same burst positions, same slow
clients — on every run and every machine.  So a
:class:`TrafficMix` is pure configuration, :func:`build_schedule`
expands it into a concrete list of :class:`ScheduledRequest` using only
:func:`repro.rng.spawn` streams, and the runner replays that list
verbatim.  Nothing about timing is decided at replay time.

The shapes modeled here are the ones that actually break serving tiers:

- **heavy-tail inter-arrivals** — lognormal gaps (a tame mean hiding
  occasional multi-sigma stalls and pile-ups) instead of a polite
  constant rate;
- **bursts** — every ``burst_every``-th request opens a train of
  ``burst_size`` back-to-back arrivals with zero gap, the pattern that
  tests queue headroom and shedding;
- **hot keys** — a configurable fraction of requests drawn from a tiny
  row pool, which concentrates load on one shard (by design: routing
  is content-hashed) and exercises the prediction cache;
- **slow clients** — a fraction of requests whose caller stalls after
  the reply, holding a worker slot the way a slow reader holds a
  socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import rng as repro_rng

__all__ = ["TrafficMix", "ScheduledRequest", "build_schedule"]


@dataclass(frozen=True)
class TrafficMix:
    """Declarative description of one traffic pattern.

    Parameters
    ----------
    name:
        Label carried into reports and bench JSON.
    methods:
        ``(method, weight)`` pairs the generator samples from.
    hot_fraction / hot_pool:
        Fraction of requests drawn from the first ``hot_pool`` rows of
        the row pool (the hot keyset); the rest draw uniformly from the
        whole pool.
    mean_gap:
        Mean inter-arrival gap in seconds (0 = closed loop, replay as
        fast as the workers can go).
    gap_sigma:
        Lognormal sigma of the gap distribution; larger = heavier tail.
    burst_every / burst_size:
        Every ``burst_every``-th request begins a train of
        ``burst_size`` arrivals with zero gap (0 disables bursts).
    slow_fraction / slow_delay:
        Fraction of requests whose client stalls ``slow_delay`` seconds
        after receiving its answer.
    """

    name: str = "steady"
    methods: Tuple[Tuple[str, float], ...] = (("predict", 1.0),)
    hot_fraction: float = 0.0
    hot_pool: int = 4
    mean_gap: float = 0.0
    gap_sigma: float = 1.0
    burst_every: int = 0
    burst_size: int = 0
    slow_fraction: float = 0.0
    slow_delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.methods:
            raise ValueError("methods must not be empty")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction must be in [0, 1], got {self.slow_fraction}"
            )
        if self.hot_pool < 1:
            raise ValueError(f"hot_pool must be >= 1, got {self.hot_pool}")

    @classmethod
    def heavy_tail(cls, mean_gap: float = 0.0005) -> "TrafficMix":
        """The default stress mix: tail gaps, bursts, hot keys, slow clients."""
        return cls(
            name="heavy_tail",
            hot_fraction=0.3,
            hot_pool=4,
            mean_gap=mean_gap,
            gap_sigma=1.5,
            burst_every=50,
            burst_size=8,
            slow_fraction=0.02,
            slow_delay=0.005,
        )

    @classmethod
    def closed_loop(cls) -> "TrafficMix":
        """Maximum-pressure mix: no gaps at all (throughput measurement)."""
        return cls(name="closed_loop")


@dataclass(frozen=True)
class ScheduledRequest:
    """One concrete request in a replayable schedule.

    ``gap`` is the seconds the generator waits *before* issuing this
    request (relative to the previous one claimed by the same worker);
    ``slow`` is the post-reply client stall in seconds (0 = normal
    client).
    """

    index: int
    row_id: int
    method: str
    gap: float
    slow: float


def build_schedule(
    mix: TrafficMix,
    n_requests: int,
    n_rows: int,
    seed: int = repro_rng.REPRO_DEFAULT_SEED,
) -> List[ScheduledRequest]:
    """Expand ``mix`` into ``n_requests`` concrete requests.

    ``n_rows`` is the size of the row pool the runner indexes with
    ``row_id``.  Fully deterministic: the same ``(mix, n_requests,
    n_rows, seed)`` produce an identical schedule on every run — the
    replay-determinism test asserts exactly this.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    rows_rng = repro_rng.spawn(seed, 0x10AD, 0)
    method_rng = repro_rng.spawn(seed, 0x10AD, 1)
    gap_rng = repro_rng.spawn(seed, 0x10AD, 2)
    slow_rng = repro_rng.spawn(seed, 0x10AD, 3)

    names = [method for method, _weight in mix.methods]
    weights = np.asarray(
        [weight for _method, weight in mix.methods], dtype=np.float64
    )
    if np.any(weights < 0) or float(weights.sum()) <= 0.0:
        raise ValueError(f"method weights must be >= 0 and sum > 0: {weights}")
    probs = weights / weights.sum()

    hot_pool = min(mix.hot_pool, n_rows)
    # Lognormal with unit median scaled to the requested mean: heavy
    # tail without pathological variance at sigma ~1.5.
    if mix.mean_gap > 0.0:
        raw_gaps = gap_rng.lognormal(
            mean=0.0, sigma=mix.gap_sigma, size=n_requests
        )
        gaps = mix.mean_gap * raw_gaps / float(np.exp(mix.gap_sigma**2 / 2.0))
    else:
        gaps = np.zeros(n_requests, dtype=np.float64)

    schedule: List[ScheduledRequest] = []
    burst_left = 0
    for index in range(n_requests):
        if mix.burst_every and index % mix.burst_every == 0 and index:
            burst_left = mix.burst_size
        if burst_left > 0:
            gap = 0.0
            burst_left -= 1
        else:
            gap = float(gaps[index])
        if mix.hot_fraction and rows_rng.random() < mix.hot_fraction:
            row_id = int(rows_rng.integers(0, hot_pool))
        else:
            row_id = int(rows_rng.integers(0, n_rows))
        method = names[int(method_rng.choice(len(names), p=probs))]
        slow = (
            mix.slow_delay
            if mix.slow_fraction and slow_rng.random() < mix.slow_fraction
            else 0.0
        )
        schedule.append(
            ScheduledRequest(
                index=index, row_id=row_id, method=method, gap=gap, slow=slow
            )
        )
    return schedule
