"""Seeded load-test harness for the serving tiers.

Split into a *pure* planning half and a *replay* half so load tests
are reproducible evidence rather than one-off anecdotes:

- :mod:`~repro.loadgen.mix` — :class:`~repro.loadgen.mix.TrafficMix`
  (heavy-tail gaps, bursts, hot keys, slow clients) expanded by
  :func:`~repro.loadgen.mix.build_schedule` into a deterministic,
  seed-keyed request schedule;
- :mod:`~repro.loadgen.runner` —
  :class:`~repro.loadgen.runner.LoadGenerator` replays a schedule with
  a client-thread pool (optional chaos overlay, optional deterministic
  kill-one-worker drill) and condenses the run into a
  :class:`~repro.loadgen.runner.LoadReport` with per-shard
  QPS / p50 / p99 tables.
"""

from .mix import ScheduledRequest, TrafficMix, build_schedule
from .runner import LoadGenerator, LoadReport, RequestOutcome, ShardStats

__all__ = [
    "ScheduledRequest",
    "TrafficMix",
    "build_schedule",
    "LoadGenerator",
    "LoadReport",
    "RequestOutcome",
    "ShardStats",
]
