"""Load generator: replay a schedule against a server, report per shard.

:class:`LoadGenerator` drives any ``ModelServer``-shaped object (the
single-process server or the sharded tier) with a schedule built by
:func:`repro.loadgen.mix.build_schedule`.  A pool of client threads
claims requests in schedule order, honors each request's inter-arrival
gap and slow-client stall, and records a per-request outcome; the run
condenses into a :class:`LoadReport` with aggregate and per-shard
QPS / p50 / p99 tables.

Shard attribution uses the server's own consistent-hash ring (when it
has one) on the same content key the server routes by, so the report's
per-shard rows reflect *intended* placement — against a single-process
server everything lands on shard 0 and the table degenerates to the
aggregate row.

Two overlays turn a measurement into a drill:

- ``fault_injector`` — each request is routed through the
  ``"loadgen"`` site of an existing
  :class:`~repro.serve.resilience.FaultInjector`, so client-visible
  chaos (latency spikes, injected errors) composes with the server's
  own chaos sites;
- ``kill_shard_at`` — at a fixed *schedule position* (deterministic,
  not wall clock), SIGKILL one worker of a sharded server mid-run: the
  zero-dropped-requests acceptance drill.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.resilience import FaultInjector
from ..telemetry import trace as tracing
from ..telemetry.metrics import MetricsRegistry
from .mix import ScheduledRequest

__all__ = ["RequestOutcome", "ShardStats", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class RequestOutcome:
    """One replayed request: where it went and how long it took."""

    index: int
    shard: int
    latency: float
    error: Optional[str] = None


@dataclass(frozen=True)
class ShardStats:
    """Aggregates for one shard's slice of the run."""

    shard: int
    requests: int
    qps: float
    p50_ms: float
    p99_ms: float


@dataclass
class LoadReport:
    """Result of one load-generation run.

    ``errors`` counts requests that raised (after any injected chaos);
    every scheduled request appears exactly once in ``outcomes`` — the
    generator never drops one, so ``n_requests`` is also the number of
    answers observed.
    """

    mix_name: str
    n_requests: int
    errors: int
    duration_seconds: float
    qps: float
    p50_ms: float
    p99_ms: float
    shards: List[ShardStats] = field(default_factory=list)
    outcomes: List[RequestOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (outcomes elided — they are per-request)."""
        return {
            "mix": self.mix_name,
            "n_requests": self.n_requests,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "shards": [
                {
                    "shard": s.shard,
                    "requests": s.requests,
                    "qps": s.qps,
                    "p50_ms": s.p50_ms,
                    "p99_ms": s.p99_ms,
                }
                for s in self.shards
            ],
        }

    def format_table(self) -> str:
        """Fixed-width per-shard table (the CLI's human-facing output)."""
        header = (
            f"{'shard':>6} {'requests':>9} {'qps':>10} "
            f"{'p50_ms':>9} {'p99_ms':>9}"
        )
        lines = [header, "-" * len(header)]
        for s in self.shards:
            lines.append(
                f"{s.shard:>6} {s.requests:>9} {s.qps:>10.1f} "
                f"{s.p50_ms:>9.3f} {s.p99_ms:>9.3f}"
            )
        lines.append(
            f"{'all':>6} {self.n_requests:>9} {self.qps:>10.1f} "
            f"{self.p50_ms:>9.3f} {self.p99_ms:>9.3f}"
        )
        if self.errors:
            lines.append(f"errors: {self.errors}")
        return "\n".join(lines)


def _percentiles_ms(latencies: Sequence[float]) -> Tuple[float, float]:
    if not latencies:
        return 0.0, 0.0
    arr = np.sort(np.asarray(latencies, dtype=np.float64))
    p50 = float(arr[min(len(arr) - 1, int(0.50 * len(arr)))])
    p99 = float(arr[min(len(arr) - 1, int(0.99 * len(arr)))])
    return p50 * 1e3, p99 * 1e3


class LoadGenerator:
    """Replay one schedule against one server with a client-thread pool.

    Parameters
    ----------
    server:
        Anything exposing ``request(method, row)`` — both server tiers
        qualify.  Shard attribution additionally uses ``server.ring``
        when present.
    schedule:
        The :func:`~repro.loadgen.mix.build_schedule` output to replay.
    rows:
        Row pool indexed by each request's ``row_id``.
    workers:
        Concurrent client threads.
    mix_name:
        Label for the report.
    time_scale:
        Multiplier on every gap/stall (0 collapses the schedule to a
        closed loop without rebuilding it).
    fault_injector:
        Optional chaos overlay; requests run through its ``"loadgen"``
        site.
    kill_shard_at:
        Optional ``(position, shard_id)``: when the request at that
        schedule position is claimed, SIGKILL that shard's worker
        first (requires a server with a ``supervisor``).
    metrics:
        Optional registry for ``loadgen/...`` instruments.
    """

    def __init__(
        self,
        server: Any,
        schedule: Sequence[ScheduledRequest],
        rows: np.ndarray,
        workers: int = 4,
        mix_name: str = "custom",
        time_scale: float = 1.0,
        fault_injector: Optional[FaultInjector] = None,
        kill_shard_at: Optional[Tuple[int, int]] = None,
        metrics: Optional[MetricsRegistry] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not schedule:
            raise ValueError("schedule must not be empty")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.server = server
        self.schedule = list(schedule)
        self.rows = np.asarray(rows, dtype=np.float64)
        self.workers = int(workers)
        self.mix_name = mix_name
        self.time_scale = float(time_scale)
        self.fault_injector = fault_injector
        self.kill_shard_at = kill_shard_at
        self.metrics = metrics
        self._sleep = sleep
        self._cursor = 0
        self._cursor_lock = threading.Lock()
        self._killed = False

    def _claim(self) -> Optional[ScheduledRequest]:
        with self._cursor_lock:
            if self._cursor >= len(self.schedule):
                return None
            request = self.schedule[self._cursor]
            self._cursor += 1
        return request

    def _intended_shard(self, method: str, row: np.ndarray) -> int:
        ring = getattr(self.server, "ring", None)
        if ring is None:
            return 0
        from ..serve.sharding.hashing import routing_key

        key = routing_key(method, np.ascontiguousarray(row).tobytes())
        return int(ring.route(key))

    def _maybe_kill(self, request: ScheduledRequest) -> None:
        # Double-checked peek: a stale False only costs re-validating
        # under _cursor_lock below; a stale True is impossible (the
        # flag is set exactly once, under that lock).
        if self.kill_shard_at is None or self._killed:  # reprolint: disable=GUARD-VIOLATION
            return
        position, shard = self.kill_shard_at
        if request.index < position:
            return
        with self._cursor_lock:
            if self._killed:
                return
            self._killed = True
        supervisor = getattr(self.server, "supervisor", None)
        if supervisor is None:
            raise RuntimeError(
                "kill_shard_at requires a sharded server (no supervisor)"
            )
        supervisor.kill(shard)

    def _issue(self, request: ScheduledRequest) -> RequestOutcome:
        row = self.rows[request.row_id % len(self.rows)]
        shard = self._intended_shard(request.method, row)
        call: Callable[[], Any] = (
            lambda: self.server.request(request.method, row)
        )
        started = time.monotonic()
        error: Optional[str] = None
        try:
            if self.fault_injector is not None:
                self.fault_injector.call(
                    "loadgen", self.server.request, request.method, row
                )
            else:
                call()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        latency = time.monotonic() - started
        if request.slow:
            self._sleep(request.slow * self.time_scale)
        if self.metrics is not None:
            self.metrics.counter("loadgen/requests_total").inc()
            self.metrics.histogram("loadgen/latency_seconds").observe(latency)
            if error is not None:
                self.metrics.counter("loadgen/errors_total").inc()
        return RequestOutcome(
            index=request.index, shard=shard, latency=latency, error=error
        )

    def _worker_loop(self, outcomes: List[Optional[RequestOutcome]]) -> None:
        while True:
            request = self._claim()
            if request is None:
                return
            self._maybe_kill(request)
            if request.gap and self.time_scale:
                self._sleep(request.gap * self.time_scale)
            outcomes[request.index] = self._issue(request)

    def run(self) -> LoadReport:
        """Replay the whole schedule; block until every answer arrived."""
        with tracing.start_span(
            "loadgen/run",
            attributes={
                "mix": self.mix_name,
                "n_requests": len(self.schedule),
                "workers": self.workers,
            },
        ):
            outcomes: List[Optional[RequestOutcome]] = (
                [None] * len(self.schedule)
            )
            started = time.monotonic()
            threads = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(outcomes,),
                    name=f"loadgen-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            duration = max(time.monotonic() - started, 1e-9)
        done = [outcome for outcome in outcomes if outcome is not None]
        latencies = [outcome.latency for outcome in done]
        p50, p99 = _percentiles_ms(latencies)
        by_shard: Dict[int, List[RequestOutcome]] = {}
        for outcome in done:
            by_shard.setdefault(outcome.shard, []).append(outcome)
        shards = [
            ShardStats(
                shard=shard,
                requests=len(group),
                qps=len(group) / duration,
                p50_ms=_percentiles_ms([o.latency for o in group])[0],
                p99_ms=_percentiles_ms([o.latency for o in group])[1],
            )
            for shard, group in sorted(by_shard.items())
        ]
        return LoadReport(
            mix_name=self.mix_name,
            n_requests=len(done),
            errors=sum(1 for outcome in done if outcome.error is not None),
            duration_seconds=duration,
            qps=len(done) / duration,
            p50_ms=p50,
            p99_ms=p99,
            shards=shards,
            outcomes=done,
        )
