"""Aggregation and summarization (the epiC stage of the GEMINI stack).

epiC is the paper's big-data processing system providing "aggregation
and summarization" upstream of deep analytics.  This module provides a
small group-by/aggregate engine over :class:`Table` plus per-column
summary statistics, enough for the cohort example and for feature
profiling before model training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.table import Column, ColumnType, Table

__all__ = ["Aggregation", "group_by", "summarize", "ColumnSummary"]

# value-array -> scalar
_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.nanmean(v)) if v.size else float("nan"),
    "sum": lambda v: float(np.nansum(v)),
    "min": lambda v: float(np.nanmin(v)) if v.size else float("nan"),
    "max": lambda v: float(np.nanmax(v)) if v.size else float("nan"),
    "count": lambda v: float(v.size),
    "std": lambda v: float(np.nanstd(v)) if v.size else float("nan"),
}


@dataclass(frozen=True)
class Aggregation:
    """One aggregate: ``func`` over ``column``, output named ``alias``."""

    column: str
    func: str
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.func!r}; have {sorted(_AGGREGATORS)}"
            )

    @property
    def output_name(self) -> str:
        return self.alias or f"{self.func}({self.column})"


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregations: Sequence[Aggregation],
) -> Table:
    """SQL-style ``GROUP BY keys`` with the given aggregates.

    Key columns may be categorical or continuous; groups are ordered by
    first appearance.  ``count`` may target any column; the numeric
    aggregators require continuous columns.
    """
    if not keys:
        raise ValueError("need at least one group-by key")
    if not aggregations:
        raise ValueError("need at least one aggregation")
    key_columns = [table.column(k) for k in keys]
    groups: Dict[Tuple, List[int]] = {}
    order: List[Tuple] = []
    for i in range(table.n_rows):
        key = tuple(col.values[i] for col in key_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)

    out_columns: List[Column] = []
    for pos, key_col in enumerate(key_columns):
        values = [key[pos] for key in order]
        if key_col.is_continuous:
            out_columns.append(
                Column(key_col.name, ColumnType.CONTINUOUS,
                       np.asarray(values, dtype=np.float64))
            )
        else:
            out_columns.append(
                Column(key_col.name, ColumnType.CATEGORICAL,
                       np.asarray(values, dtype=object))
            )
    for agg in aggregations:
        source = table.column(agg.column)
        if agg.func != "count" and not source.is_continuous:
            raise TypeError(
                f"aggregator {agg.func!r} needs a continuous column, "
                f"{agg.column!r} is {source.ctype}"
            )
        fn = _AGGREGATORS[agg.func]
        results = []
        for key in order:
            idx = np.asarray(groups[key], dtype=np.int64)
            values = source.values[idx]
            if agg.func == "count" and source.is_categorical:
                values = np.asarray(
                    [1.0 for v in values if v is not None], dtype=np.float64
                )
            results.append(fn(np.asarray(values, dtype=np.float64)))
        out_columns.append(
            Column(agg.output_name, ColumnType.CONTINUOUS,
                   np.asarray(results, dtype=np.float64))
        )
    return Table(out_columns)


@dataclass(frozen=True)
class ColumnSummary:
    """Profile of one column, used for data-quality review."""

    name: str
    ctype: str
    n_missing: int
    n_distinct: int
    mean: Optional[float] = None
    std: Optional[float] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None


def summarize(table: Table) -> List[ColumnSummary]:
    """Per-column summaries (the "summarization" epiC provides)."""
    summaries = []
    for col in table.columns():
        if col.is_continuous:
            present = col.values[~np.isnan(col.values)]
            summaries.append(
                ColumnSummary(
                    name=col.name,
                    ctype=col.ctype,
                    n_missing=col.n_missing(),
                    n_distinct=int(np.unique(present).size),
                    mean=float(present.mean()) if present.size else None,
                    std=float(present.std()) if present.size else None,
                    minimum=float(present.min()) if present.size else None,
                    maximum=float(present.max()) if present.size else None,
                )
            )
        else:
            summaries.append(
                ColumnSummary(
                    name=col.name,
                    ctype=col.ctype,
                    n_missing=col.n_missing(),
                    n_distinct=len(col.categories()),
                )
            )
    return summaries
