"""Cohort analysis (the CohAna stage of the GEMINI stack).

CohAna supports "cohort analysis" over patient data (paper reference
[21]): partitioning a population into cohorts by attributes and
comparing outcome statistics across them.  This module implements the
two operations the healthcare example uses:

- :func:`build_cohorts` — partition a table into named cohorts by a
  categorical attribute or a continuous attribute bucketed by
  thresholds;
- :class:`CohortComparison` — outcome rates per cohort with group sizes
  so differences can be eyeballed for significance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.table import Table

__all__ = ["Cohort", "build_cohorts", "CohortComparison", "compare_outcome"]


@dataclass(frozen=True)
class Cohort:
    """A named subset of rows."""

    name: str
    indices: np.ndarray

    @property
    def size(self) -> int:
        return int(self.indices.size)


def build_cohorts(
    table: Table,
    attribute: str,
    thresholds: Optional[Sequence[float]] = None,
) -> List[Cohort]:
    """Partition rows into cohorts by ``attribute``.

    Categorical attributes produce one cohort per observed value
    (missing values form their own ``<missing>`` cohort).  Continuous
    attributes require ``thresholds`` and produce the half-open buckets
    ``(-inf, t1], (t1, t2], ..., (tk, inf)``.
    """
    column = table.column(attribute)
    cohorts: List[Cohort] = []
    if column.is_categorical:
        if thresholds is not None:
            raise ValueError("thresholds apply only to continuous attributes")
        buckets: Dict[object, List[int]] = {}
        for i, value in enumerate(column.values):
            key = "<missing>" if value is None else value
            buckets.setdefault(key, []).append(i)
        for key in sorted(buckets, key=repr):
            cohorts.append(
                Cohort(str(key), np.asarray(buckets[key], dtype=np.int64))
            )
    else:
        if not thresholds:
            raise ValueError("continuous attributes need bucketing thresholds")
        cuts = sorted(float(t) for t in thresholds)
        values = column.values
        edges = [-np.inf] + cuts + [np.inf]
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (values > lo) & (values <= hi)
            name = f"{attribute} in ({lo:g}, {hi:g}]"
            idx = np.flatnonzero(mask & ~np.isnan(values))
            if idx.size:
                cohorts.append(Cohort(name, idx.astype(np.int64)))
    if not cohorts:
        raise ValueError(f"attribute {attribute!r} produced no cohorts")
    return cohorts


@dataclass(frozen=True)
class CohortComparison:
    """Outcome statistics per cohort."""

    cohort: str
    size: int
    outcome_rate: float


def compare_outcome(
    cohorts: Sequence[Cohort],
    outcome: np.ndarray,
) -> List[CohortComparison]:
    """Binary outcome rate per cohort (e.g. 30-day readmission rate)."""
    outcome = np.asarray(outcome).reshape(-1)
    comparisons = []
    for cohort in cohorts:
        if cohort.indices.size and cohort.indices.max() >= outcome.size:
            raise IndexError(
                f"cohort {cohort.name!r} indexes beyond the outcome vector"
            )
        rate = float(outcome[cohort.indices].mean()) if cohort.size else 0.0
        comparisons.append(
            CohortComparison(cohort=cohort.name, size=cohort.size,
                             outcome_rate=rate)
        )
    return comparisons
