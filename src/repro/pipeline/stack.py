"""End-to-end analytics stack orchestration (GEMINI, Figure 1).

Ties the substrate stages together the way the paper's Figure 1 does:
raw data is committed to immutable storage, cleaned (DICE), profiled
and aggregated (epiC), optionally cohort-analyzed (CohAna), and finally
modelled with the adaptive GM regularization tool plugged into the
training stage.  Every intermediate dataset is a commit, so the whole
run is reproducible and auditable.

:meth:`AnalyticsStack.serve` closes the loop with the deployment stage:
the trained model is published into a
:class:`~repro.serve.registry.ModelRegistry` and fronted by a
micro-batching :class:`~repro.serve.server.ModelServer`, so one object
covers the paper's full train → commit → serve story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.registry import ModelRegistry
    from ..serve.server import ModelServer

import numpy as np

from ..core.regularizers import Regularizer
from ..datasets.preprocessing import TabularEncoder
from ..datasets.table import Table
from ..linear.logistic import LogisticRegression
from ..linear.metrics import accuracy
from ..linear.model_selection import stratified_train_test_split
from ..optim.trainer import Trainer, TrainingHistory
from .analytics import ColumnSummary, summarize
from .cleaning import CleaningReport, DataCleaner
from .storage import VersionedStore

__all__ = ["StackResult", "AnalyticsStack"]


@dataclass
class StackResult:
    """Everything an end-to-end run produces."""

    cleaning_report: CleaningReport
    profile: List[ColumnSummary]
    test_accuracy: float
    history: TrainingHistory
    model: LogisticRegression
    commits: Dict[str, str] = field(default_factory=dict)  # stage -> version
    encoder: Optional[TabularEncoder] = None  # fitted feature encoder


class AnalyticsStack:
    """A small GEMINI: storage + cleaning + profiling + modelling.

    Parameters
    ----------
    cleaner:
        The DICE stage; its rules define what "clean" means for the
        incoming data.
    regularizer_factory:
        Builds the regularizer for the model's weight vector given the
        encoded feature dimension — plug in the GM tool here, ideally
        through the paper's hyper-parameter guidance
        (``lambda m: make_recommended_regularizer(m, n_train)``), or
        any fixed baseline.
    lr, epochs, batch_size:
        Training-stage settings.
    """

    def __init__(
        self,
        cleaner: DataCleaner,
        regularizer_factory: Callable[[int], Optional[Regularizer]],
        lr: float = 0.5,
        epochs: int = 60,
        batch_size: int = 64,
    ):
        self.cleaner = cleaner
        self.regularizer_factory = regularizer_factory
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.store = VersionedStore()

    def run(
        self,
        raw: Table,
        labels: np.ndarray,
        label_alignment: str = "prefix",
        seed: int = 0,
        drop_columns: Optional[List[str]] = None,
    ) -> StackResult:
        """Execute the full pipeline on raw data.

        Parameters
        ----------
        raw:
            The raw (dirty) feature table.
        labels:
            Binary outcome labels.  With ``label_alignment="prefix"``
            they correspond to the first ``len(labels)`` *cleaned* rows
            (the convention of the synthetic raw hospital data, whose
            duplicates are appended at the end and removed by cleaning).
        seed:
            Controls the train/test split and training shuffling.
        drop_columns:
            Identifier columns (e.g. ``patient_id``) excluded from the
            feature matrix after cleaning.
        """
        commits: Dict[str, str] = {}
        commits["raw"] = self.store.commit("main", raw, "ingest raw data").version

        cleaned, report = self.cleaner.clean(raw)
        commits["cleaned"] = self.store.commit(
            "main", cleaned, "DICE cleaning"
        ).version

        if cleaned.n_rows < labels.shape[0]:
            raise ValueError(
                f"cleaning left {cleaned.n_rows} rows but there are "
                f"{labels.shape[0]} labels"
            )
        if label_alignment == "prefix":
            cleaned = cleaned.take(np.arange(labels.shape[0]))
        elif label_alignment != "exact":
            raise ValueError(f"unknown label_alignment {label_alignment!r}")
        if label_alignment == "exact" and cleaned.n_rows != labels.shape[0]:
            raise ValueError("exact alignment requires matching row count")

        features = (
            cleaned.without_columns(drop_columns) if drop_columns else cleaned
        )
        profile = summarize(features)

        rng = np.random.default_rng(seed)
        train_idx, test_idx = stratified_train_test_split(
            labels, test_fraction=0.2, rng=rng
        )
        encoder = TabularEncoder()
        x_train = encoder.fit_transform(features.take(train_idx))
        x_test = encoder.transform(features.take(test_idx))
        y_train, y_test = labels[train_idx], labels[test_idx]

        regularizer = self.regularizer_factory(x_train.shape[1])
        model = LogisticRegression(
            x_train.shape[1],
            regularizer=regularizer,
            rng=np.random.default_rng(seed + 1),
        )
        trainer = Trainer(
            model, lr=self.lr, batch_size=self.batch_size
        )
        history = trainer.fit(
            x_train, y_train, epochs=self.epochs,
            rng=np.random.default_rng(seed + 2),
        )
        test_accuracy = accuracy(y_test, model.predict(x_test))
        return StackResult(
            cleaning_report=report,
            profile=profile,
            test_accuracy=test_accuracy,
            history=history,
            model=model,
            commits=commits,
            encoder=encoder,
        )

    def serve(
        self,
        result: StackResult,
        name: str = "readmission-risk",
        registry: "Optional[ModelRegistry]" = None,
        registry_dir: Optional[str] = None,
        **server_kwargs,
    ) -> "ModelServer":
        """Publish ``result.model`` and return a running model server.

        The model is committed to ``registry`` (a fresh one is created
        when omitted — on disk under ``registry_dir``, otherwise
        in-memory) as the next version of ``name`` and activated, then
        fronted by a :class:`~repro.serve.server.ModelServer` whose
        micro-batching/caching knobs pass through ``server_kwargs``.
        The server scores *encoded* feature rows; use ``result.encoder``
        to transform cleaned tables into its input space.  Close the
        returned server (it is a context manager) to stop the worker
        pool.
        """
        from ..serve.registry import ModelRegistry
        from ..serve.server import ModelServer

        if registry is None:
            registry = ModelRegistry(registry_dir)
        n_features = result.model.n_features
        registry.register(
            name, lambda: LogisticRegression(n_features, weight_init_std=0.0)
        )
        registry.publish(
            name,
            result.model,
            metadata={
                "test_accuracy": result.test_accuracy,
                "commits": dict(result.commits),
            },
        )
        return ModelServer(registry=registry, name=name, **server_kwargs)
