"""GEMINI-style analytics pipeline substrate (Figure 1 of the paper).

Lightweight but functional implementations of the stack stages the
regularization tool plugs into: immutable versioned storage (Forkbase),
rule-based cleaning (DICE), aggregation/summarization (epiC), cohort
analysis (CohAna) and the orchestrating :class:`AnalyticsStack`.
"""

from .analytics import Aggregation, ColumnSummary, group_by, summarize
from .cleaning import (
    CleaningAction,
    CleaningReport,
    CleaningRule,
    DataCleaner,
    DeduplicateRows,
    DropHighMissingColumns,
    RangeRule,
    VocabularyRule,
)
from .cohort import Cohort, CohortComparison, build_cohorts, compare_outcome
from .stack import AnalyticsStack, StackResult
from .visualization import bar_chart, density_plot, histogram, render_cohorts
from .storage import Commit, VersionedStore

__all__ = [
    "VersionedStore",
    "Commit",
    "CleaningRule",
    "CleaningAction",
    "CleaningReport",
    "DataCleaner",
    "DeduplicateRows",
    "RangeRule",
    "VocabularyRule",
    "DropHighMissingColumns",
    "Aggregation",
    "group_by",
    "summarize",
    "ColumnSummary",
    "Cohort",
    "build_cohorts",
    "CohortComparison",
    "compare_outcome",
    "AnalyticsStack",
    "StackResult",
    "histogram",
    "bar_chart",
    "density_plot",
    "render_cohorts",
]
