"""Immutable, content-addressed, versioned dataset store (Forkbase-like).

The GEMINI stack (Figure 1 of the paper) keeps all data in Forkbase, "a
universal immutable storage system" with git-like version semantics.
This module provides the behaviours the analytics pipeline relies on:

- **content addressing**: a stored table is identified by a digest of
  its contents, so identical data deduplicates;
- **immutability**: committed versions can never be altered; writing
  produces new versions;
- **branching**: named branches point at version hashes and can be
  forked, advanced, and compared;
- **lineage**: every commit records its parent and a message, so any
  derived dataset (e.g. "cleaned") can be traced to its source.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..datasets.table import Table

__all__ = ["Commit", "VersionedStore"]


def _digest_table(table: Table) -> str:
    """Deterministic content hash of a table (names, types, values)."""
    hasher = hashlib.sha256()
    for column in table.columns():
        hasher.update(column.name.encode())
        hasher.update(column.ctype.encode())
        if column.is_continuous:
            hasher.update(np.ascontiguousarray(column.values).tobytes())
        else:
            for value in column.values:
                hasher.update(repr(value).encode())
                hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True)
class Commit:
    """One immutable version of a dataset."""

    version: str  # content digest of the table
    message: str
    parent: Optional[str]  # version hash of the parent commit, if any
    commit_id: str = field(init=False)

    def __post_init__(self) -> None:
        hasher = hashlib.sha256()
        hasher.update(self.version.encode())
        hasher.update(self.message.encode())
        hasher.update((self.parent or "").encode())
        object.__setattr__(self, "commit_id", hasher.hexdigest()[:16])


class VersionedStore:
    """In-memory Forkbase-style store for :class:`Table` datasets."""

    def __init__(self) -> None:
        self._objects: Dict[str, Table] = {}
        self._commits: Dict[str, Commit] = {}
        self._branches: Dict[str, str] = {}  # branch -> commit_id

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def commit(
        self, branch: str, table: Table, message: str
    ) -> Commit:
        """Store ``table`` as the new head of ``branch``.

        The table is deep-copied on ingest, so later mutation of the
        caller's arrays cannot violate immutability.  Identical content
        deduplicates to the same object version.
        """
        snapshot = table.take(np.arange(table.n_rows))  # deep copy
        version = _digest_table(snapshot)
        if version not in self._objects:
            self._objects[version] = snapshot
        parent_commit = self._branches.get(branch)
        parent_version = (
            self._commits[parent_commit].version if parent_commit else None
        )
        commit = Commit(version=version, message=message, parent=parent_version)
        self._commits[commit.commit_id] = commit
        self._branches[branch] = commit.commit_id
        return commit

    def fork(self, source_branch: str, new_branch: str) -> None:
        """Create ``new_branch`` pointing at the head of ``source_branch``."""
        if source_branch not in self._branches:
            raise KeyError(f"unknown branch {source_branch!r}")
        if new_branch in self._branches:
            raise ValueError(f"branch {new_branch!r} already exists")
        self._branches[new_branch] = self._branches[source_branch]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def branches(self) -> List[str]:
        """All branch names."""
        return sorted(self._branches)

    def head(self, branch: str) -> Commit:
        """The latest commit on ``branch``."""
        if branch not in self._branches:
            raise KeyError(f"unknown branch {branch!r}; have {self.branches()}")
        return self._commits[self._branches[branch]]

    def get(self, version: str) -> Table:
        """The table stored under a content ``version`` hash.

        A defensive copy is returned so callers cannot mutate history.
        """
        if version not in self._objects:
            raise KeyError(f"unknown version {version[:12]}...")
        table = self._objects[version]
        return table.take(np.arange(table.n_rows))

    def checkout(self, branch: str) -> Table:
        """The table at the head of ``branch``."""
        return self.get(self.head(branch).version)

    def log(self, branch: str) -> List[Commit]:
        """Commits reachable from the head of ``branch``, newest first."""
        commits = []
        current: Optional[Commit] = self.head(branch)
        # Walk parents by version; build an index once.
        by_version = {c.version: c for c in self._commits.values()}
        seen = set()
        while current is not None and current.commit_id not in seen:
            commits.append(current)
            seen.add(current.commit_id)
            current = by_version.get(current.parent) if current.parent else None
        return commits

    def diff_versions(self, version_a: str, version_b: str) -> Dict[str, object]:
        """Structural comparison of two stored versions."""
        a, b = self.get(version_a), self.get(version_b)
        return {
            "rows": (a.n_rows, b.n_rows),
            "columns_only_in_a": sorted(set(a.column_names) - set(b.column_names)),
            "columns_only_in_b": sorted(set(b.column_names) - set(a.column_names)),
            "identical": a.equals(b),
        }
