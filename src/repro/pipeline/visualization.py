"""Text visualization (the iDat stage of the GEMINI stack, Figure 1).

The paper's pipeline ends in iDat, the visualization front-end.  In an
offline terminal library the equivalent surface is plain-text charts;
this module renders the artefacts the other stages produce:

- :func:`histogram` — ASCII histogram of a continuous column;
- :func:`bar_chart` — horizontal bars for categorical counts or cohort
  outcome rates;
- :func:`density_plot` — the Figure 3 mixture-density curve as rows of
  bars over the weight axis;
- :func:`render_cohorts` — the CohAna comparison as a chart.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..datasets.table import Column
from .cohort import CohortComparison

__all__ = ["histogram", "bar_chart", "density_plot", "render_cohorts"]

_BAR = "#"


def _scaled_bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0.0:
        return ""
    return _BAR * max(0, int(round(width * value / maximum)))


def histogram(
    column: Column, bins: int = 10, width: int = 40
) -> str:
    """ASCII histogram of a continuous column (missing values skipped)."""
    if not column.is_continuous:
        raise TypeError(f"histogram needs a continuous column, got {column.ctype}")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    values = column.values[~np.isnan(column.values)]
    if values.size == 0:
        return f"{column.name}: (no data)"
    counts, edges = np.histogram(values, bins=bins)
    top = counts.max()
    lines = [f"{column.name} (n={values.size}, missing={column.n_missing()})"]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = _scaled_bar(count, top, width)
        lines.append(f"  [{lo:8.3f}, {hi:8.3f})  {count:6d}  {bar}")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 40,
    fmt: str = ".3f",
) -> str:
    """Horizontal bar chart from ``{label: value}``."""
    if not values:
        raise ValueError("values must be non-empty")
    top = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = _scaled_bar(value, top, width)
        lines.append(f"  {str(label):{label_width}s}  {value:{fmt}}  {bar}")
    return "\n".join(lines)


def density_plot(
    grid: np.ndarray,
    density: np.ndarray,
    crossovers: Optional[np.ndarray] = None,
    rows: int = 21,
    width: int = 40,
    title: str = "mixture density",
) -> str:
    """Figure-3-style density curve as text.

    Downsamples the density to ``rows`` positions along the weight axis
    and draws one horizontal bar per position; crossover points A/B are
    marked with ``<`` on the nearest row.
    """
    grid = np.asarray(grid).reshape(-1)
    density = np.asarray(density).reshape(-1)
    if grid.shape != density.shape or grid.size < 2:
        raise ValueError("grid and density must be equal-length (>= 2)")
    idx = np.linspace(0, grid.size - 1, rows).round().astype(int)
    top = density.max()
    marks = set()
    if crossovers is not None:
        for point in np.asarray(crossovers).reshape(-1):
            for sign in (-1.0, 1.0):
                marks.add(int(np.argmin(np.abs(grid[idx] - sign * point))))
    lines = [title]
    for row, i in enumerate(idx):
        bar = _scaled_bar(density[i], top, width)
        marker = " <- A/B" if row in marks else ""
        lines.append(f"  w={grid[i]:8.3f}  {bar}{marker}")
    return "\n".join(lines)


def render_cohorts(
    comparisons: Sequence[CohortComparison],
    title: str = "outcome rate by cohort",
) -> str:
    """CohAna comparison as a bar chart with group sizes."""
    if not comparisons:
        raise ValueError("comparisons must be non-empty")
    values = {
        f"{c.cohort} (n={c.size})": c.outcome_rate for c in comparisons
    }
    return bar_chart(values, title=title)
