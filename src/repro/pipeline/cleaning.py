"""Rule-based data cleaning (the DICE stage of the GEMINI stack).

In the paper's pipeline (Figure 1), raw healthcare data first passes
through DICE, the data cleaning and integration system, before any
analytics runs.  This module implements the cleaning operations the
healthcare example needs as composable rules:

- :class:`DeduplicateRows` — drop exact duplicate records (keeping the
  first occurrence), optionally keyed by an id column;
- :class:`RangeRule` — null out continuous values outside a physically
  plausible range (they become missing and are later mean-imputed);
- :class:`VocabularyRule` — null out categorical values outside an
  allowed vocabulary;
- :class:`DropHighMissingColumns` — remove columns that are mostly
  missing and carry no signal.

Each rule transforms a table and returns a :class:`CleaningReport`
entry, so the pipeline's provenance (what was changed and why) is
auditable — the property a clinical deployment needs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..datasets.table import Column, Table

__all__ = [
    "CleaningRule",
    "CleaningAction",
    "CleaningReport",
    "DeduplicateRows",
    "RangeRule",
    "VocabularyRule",
    "DropHighMissingColumns",
    "DataCleaner",
]


@dataclass(frozen=True)
class CleaningAction:
    """One rule application: what changed and how much."""

    rule: str
    detail: str
    cells_changed: int = 0
    rows_removed: int = 0
    columns_removed: int = 0


@dataclass
class CleaningReport:
    """Accumulated audit trail of a cleaning run."""

    actions: List[CleaningAction] = field(default_factory=list)

    @property
    def total_cells_changed(self) -> int:
        return sum(a.cells_changed for a in self.actions)

    @property
    def total_rows_removed(self) -> int:
        return sum(a.rows_removed for a in self.actions)

    def summary(self) -> str:
        lines = [f"{len(self.actions)} cleaning actions:"]
        lines.extend(
            f"  [{a.rule}] {a.detail}: cells={a.cells_changed} "
            f"rows-={a.rows_removed} cols-={a.columns_removed}"
            for a in self.actions
        )
        return "\n".join(lines)


class CleaningRule(abc.ABC):
    """A table -> table transform with an audit record."""

    @abc.abstractmethod
    def apply(self, table: Table) -> Tuple[Table, CleaningAction]:
        """Return the cleaned table and what was done."""


class DeduplicateRows(CleaningRule):
    """Drop exact duplicate rows, keeping the first occurrence.

    When ``key`` is given, duplication is judged on that column alone
    (e.g. one record per ``patient_id``); otherwise the whole row is
    the identity.
    """

    def __init__(self, key: Optional[str] = None):
        self.key = key

    def apply(self, table: Table) -> Tuple[Table, CleaningAction]:
        seen = set()
        keep: List[int] = []
        if self.key is not None:
            values = table.column(self.key).values
            for i, value in enumerate(values):
                if value not in seen:
                    seen.add(value)
                    keep.append(i)
        else:
            for i, row in enumerate(table.iter_rows()):
                signature = tuple(
                    (k, None if _is_missing(v) else repr(v))
                    for k, v in sorted(row.items())
                )
                if signature not in seen:
                    seen.add(signature)
                    keep.append(i)
        removed = table.n_rows - len(keep)
        cleaned = table.take(np.asarray(keep, dtype=np.int64))
        detail = f"key={self.key!r}" if self.key else "whole-row identity"
        return cleaned, CleaningAction(
            rule="deduplicate", detail=detail, rows_removed=removed
        )


class RangeRule(CleaningRule):
    """Null out continuous values outside ``[low, high]``.

    Values become NaN ("missing") so the standard mean-imputation of
    the preprocessing stage repairs them — matching how the paper's
    preprocessing handles missing continuous values.
    """

    def __init__(self, columns: Iterable[str], low: float, high: float):
        if low > high:
            raise ValueError(f"low must be <= high, got [{low}, {high}]")
        self.columns = list(columns)
        self.low = float(low)
        self.high = float(high)

    def apply(self, table: Table) -> Tuple[Table, CleaningAction]:
        changed = 0
        out = table
        for name in self.columns:
            col = out.column(name)
            if not col.is_continuous:
                raise TypeError(f"RangeRule applies to continuous columns, "
                                f"{name!r} is {col.ctype}")
            values = col.values.copy()
            bad = (~np.isnan(values)) & ((values < self.low) | (values > self.high))
            if bad.any():
                values[bad] = np.nan
                changed += int(bad.sum())
                out = out.with_column(Column(name, col.ctype, values))
        return out, CleaningAction(
            rule="range",
            detail=f"{len(self.columns)} cols clipped to [{self.low}, {self.high}]",
            cells_changed=changed,
        )


class VocabularyRule(CleaningRule):
    """Null out categorical values outside an allowed vocabulary."""

    def __init__(self, column: str, allowed: Iterable[object]):
        self.column = column
        self.allowed = set(allowed)
        if not self.allowed:
            raise ValueError("allowed vocabulary must be non-empty")

    def apply(self, table: Table) -> Tuple[Table, CleaningAction]:
        col = table.column(self.column)
        if not col.is_categorical:
            raise TypeError(f"VocabularyRule applies to categorical columns, "
                            f"{self.column!r} is {col.ctype}")
        values = col.values.copy()
        changed = 0
        for i, value in enumerate(values):
            if value is not None and value not in self.allowed:
                values[i] = None
                changed += 1
        out = table.with_column(Column(self.column, col.ctype, values))
        return out, CleaningAction(
            rule="vocabulary",
            detail=f"{self.column!r} restricted to {len(self.allowed)} values",
            cells_changed=changed,
        )


class DropHighMissingColumns(CleaningRule):
    """Remove feature columns whose missing fraction exceeds a threshold."""

    def __init__(self, max_missing_fraction: float = 0.5,
                 protect: Iterable[str] = ()):
        if not 0.0 <= max_missing_fraction <= 1.0:
            raise ValueError("max_missing_fraction must be in [0, 1]")
        self.max_missing_fraction = float(max_missing_fraction)
        self.protect = set(protect)

    def apply(self, table: Table) -> Tuple[Table, CleaningAction]:
        to_drop = []
        for col in table.columns():
            if col.name in self.protect:
                continue
            if col.n_missing() / max(len(col), 1) > self.max_missing_fraction:
                to_drop.append(col.name)
        if len(to_drop) == table.n_columns:
            raise ValueError("rule would drop every column")
        out = table.without_columns(to_drop) if to_drop else table
        return out, CleaningAction(
            rule="drop-high-missing",
            detail=f"dropped {to_drop}" if to_drop else "nothing to drop",
            columns_removed=len(to_drop),
        )


class DataCleaner:
    """Apply a sequence of rules and accumulate the audit report."""

    def __init__(self, rules: List[CleaningRule]):
        if not rules:
            raise ValueError("need at least one cleaning rule")
        self.rules = list(rules)

    def clean(self, table: Table) -> Tuple[Table, CleaningReport]:
        """Run all rules in order on ``table``."""
        report = CleaningReport()
        out = table
        for rule in self.rules:
            out, action = rule.apply(out)
            report.actions.append(action)
        return out, report


def _is_missing(value: object) -> bool:
    if value is None:
        return True
    return isinstance(value, float) and np.isnan(value)
