"""Shallow models: logistic regression, metrics and model selection."""

from .logistic import LogisticRegression, sigmoid
from .softmax_regression import SoftmaxRegression
from .metrics import (
    accuracy,
    confusion_counts,
    error_rate,
    mean_and_standard_error,
    precision_recall_f1,
)
from .model_selection import (
    GridSearchResult,
    cross_val_accuracy,
    grid_search,
    stratified_k_fold,
    stratified_train_test_split,
)

__all__ = [
    "LogisticRegression",
    "SoftmaxRegression",
    "sigmoid",
    "accuracy",
    "error_rate",
    "mean_and_standard_error",
    "confusion_counts",
    "precision_recall_f1",
    "stratified_train_test_split",
    "stratified_k_fold",
    "cross_val_accuracy",
    "grid_search",
    "GridSearchResult",
]
