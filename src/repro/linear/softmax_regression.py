"""Multi-class (softmax) regression with pluggable regularization.

Generalizes :class:`~repro.linear.logistic.LogisticRegression` to K
classes, completing the shallow-model family: the GM tool attaches to
the flattened weight matrix exactly as it does to a deep layer's
kernel, so the same adaptive regularization drives multi-class tabular
tasks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.regularizers import Regularizer
from ..rng import default_generator
from ..nn.layers.loss import softmax
from ..optim.trainer import Parameter

__all__ = ["SoftmaxRegression"]


class SoftmaxRegression:
    """Linear K-class classifier trained with softmax cross-entropy.

    Parameters
    ----------
    n_features, n_classes:
        Input width and number of classes (``n_classes >= 2``).
    regularizer:
        Penalty on the weight matrix (biases stay unregularized).
    weight_init_std:
        Std of the Gaussian weight init (default matches the paper's
        shallow-model precision of 100).
    rng:
        Seeded generator.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        regularizer: Optional[Regularizer] = None,
        weight_init_std: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        rng = rng if rng is not None else default_generator()
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.weights = rng.normal(
            0.0, weight_init_std, size=(n_features, n_classes)
        )
        self.bias = np.zeros(n_classes)
        self.regularizer = regularizer
        self._params = [
            Parameter("weights", self.weights, regularizer),
            Parameter("bias", self.bias, None),
        ]

    # ------------------------------------------------------------------
    # TrainableModel interface
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return self._params

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Mean cross-entropy and its gradients."""
        self._check_input(x)
        n = x.shape[0]
        if y.shape != (n,):
            raise ValueError(f"labels must have shape ({n},), got {y.shape}")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError(
                f"labels out of range [0, {self.n_classes}): "
                f"[{y.min()}, {y.max()}]"
            )
        probs = softmax(x @ self.weights + self.bias)
        nll = -np.log(probs[np.arange(n), y] + 1e-12)
        loss = float(nll.mean())
        grad_logits = probs
        grad_logits[np.arange(n), y] -= 1.0
        grad_logits /= n
        return loss, [x.T @ grad_logits, grad_logits.sum(axis=0)]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.predict_proba(x), axis=1)

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability matrix ``(n, n_classes)``."""
        x = self._prepare_input(x)
        return softmax(x @ self.weights + self.bias)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected input of shape (n, {self.n_features}), got {x.shape}"
            )

    def _prepare_input(self, x: np.ndarray) -> np.ndarray:
        """Lift a single 1-D feature row to a 1-row batch (see
        :meth:`LogisticRegression._prepare_input`)."""
        x = np.asarray(x)
        if x.ndim == 1 and x.shape[0] == self.n_features:
            x = x.reshape(1, -1)
        self._check_input(x)
        return x
