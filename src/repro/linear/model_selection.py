"""Model-selection utilities for the small-dataset study (Table VII).

The paper's protocol for each small dataset (Section V-C):

1. Draw 5 subsamples via **stratified sampling** with an 80-20
   train/test split.
2. For each regularizer, pick its strength (and shape parameters) by
   **cross-validation** on the training split.
3. Report the mean and standard error of test accuracy over the 5
   subsamples.

This module provides the stratified splitters, k-fold iterator and a
small grid-search driver that the experiment runners build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .metrics import accuracy

__all__ = [
    "stratified_train_test_split",
    "stratified_k_fold",
    "cross_val_accuracy",
    "GridSearchResult",
    "grid_search",
]


def stratified_train_test_split(
    y: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Index split preserving the class proportions of ``y``.

    Parameters
    ----------
    y:
        Integer class labels, shape ``(N,)``.
    test_fraction:
        Fraction of each class assigned to the test split (paper: 0.2).
    rng:
        Seeded generator; different seeds give the paper's 5 subsamples.

    Returns
    -------
    (train_idx, test_idx):
        Disjoint, exhaustive index arrays.  Every class keeps at least
        one sample on each side whenever it has two or more samples.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    y = np.asarray(y).reshape(-1)
    if y.size < 2:
        raise ValueError("need at least two samples to split")
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        idx = rng.permutation(idx)
        n_test = int(round(test_fraction * idx.size))
        if idx.size >= 2:
            n_test = min(max(n_test, 1), idx.size - 1)
        else:
            n_test = 0
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    test_idx = rng.permutation(np.concatenate(test_parts))
    return train_idx, test_idx


def stratified_k_fold(
    y: np.ndarray,
    n_folds: int,
    rng: np.random.Generator,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, val_idx)`` pairs with per-class balancing.

    Samples of each class are dealt round-robin into the folds after a
    shuffle, so every fold's class proportions match the full set as
    closely as integer counts allow.  When ``n_folds`` exceeds the
    total per-class supply some folds end up empty; those are skipped
    (fewer than ``n_folds`` pairs are yielded), keeping every sample
    validated exactly once.
    """
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    y = np.asarray(y).reshape(-1)
    if y.size < n_folds:
        raise ValueError(f"cannot make {n_folds} folds from {y.size} samples")
    fold_members: List[List[int]] = [[] for _ in range(n_folds)]
    for cls in np.unique(y):
        idx = rng.permutation(np.flatnonzero(y == cls))
        for position, sample in enumerate(idx):
            fold_members[position % n_folds].append(int(sample))
    all_idx = np.arange(y.size)
    for members in fold_members:
        if not members:
            continue
        val_idx = np.asarray(sorted(members), dtype=np.int64)
        mask = np.ones(y.size, dtype=bool)
        mask[val_idx] = False
        yield all_idx[mask], val_idx


def cross_val_accuracy(
    x: np.ndarray,
    y: np.ndarray,
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    n_folds: int,
    rng: np.random.Generator,
) -> float:
    """Mean validation accuracy over stratified folds.

    ``fit_predict(x_train, y_train, x_val)`` must train a fresh model and
    return predictions for ``x_val``.
    """
    scores = []
    for train_idx, val_idx in stratified_k_fold(y, n_folds, rng):
        preds = fit_predict(x[train_idx], y[train_idx], x[val_idx])
        scores.append(accuracy(y[val_idx], preds))
    return float(np.mean(scores))


@dataclass
class GridSearchResult:
    """Outcome of :func:`grid_search`."""

    best_params: Dict[str, object]
    best_score: float
    all_scores: List[Tuple[Dict[str, object], float]]


def grid_search(
    x: np.ndarray,
    y: np.ndarray,
    param_grid: Sequence[Dict[str, object]],
    fit_predict_factory: Callable[
        [Dict[str, object]], Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    ],
    n_folds: int,
    rng_seed: int,
) -> GridSearchResult:
    """Pick the best hyper-parameter dict by cross-validated accuracy.

    Parameters
    ----------
    param_grid:
        Explicit list of candidate settings (the paper's grids are small
        enough to enumerate).
    fit_predict_factory:
        Maps a candidate setting to a ``fit_predict`` callable for
        :func:`cross_val_accuracy`.  Using a factory keeps model
        construction (and its RNG seeding) under the caller's control.
    rng_seed:
        Every candidate is evaluated on the *same* folds, derived from
        this seed, so the comparison is paired.
    """
    if not param_grid:
        raise ValueError("param_grid must be non-empty")
    results: List[Tuple[Dict[str, object], float]] = []
    for params in param_grid:
        rng = np.random.default_rng(rng_seed)
        score = cross_val_accuracy(
            x, y, fit_predict_factory(params), n_folds=n_folds, rng=rng
        )
        results.append((params, score))
    best_params, best_score = max(results, key=lambda item: item[1])
    return GridSearchResult(
        best_params=best_params, best_score=best_score, all_scores=results
    )
