"""Binary logistic regression with pluggable regularization.

This is the shallow model of the paper's small-dataset study (Section
V-C): logistic regression trained by SGD where the weight vector ``w``
carries one of the five regularizers (none / L1 / L2 / Elastic-net /
Huber / GM).  The intercept is kept as a separate, unregularized
parameter, matching common practice and the paper's notation where the
prior is placed on the feature weights.

The model implements :class:`repro.optim.trainer.TrainableModel`, so it
is trained by the same Algorithm 1/2 loop as the deep networks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.regularizers import Regularizer
from ..rng import default_generator
from ..optim.trainer import Parameter

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression trained with mini-batch SGD.

    Parameters
    ----------
    n_features:
        Dimensionality ``M`` of the input (after one-hot encoding).
    regularizer:
        Penalty on the weight vector; ``None`` disables regularization.
    weight_init_std:
        Standard deviation of the zero-mean Gaussian weight initializer.
        The paper initializes shallow-model weights with precision 100,
        i.e. std 0.1 (Section V-E), which also calibrates the GM
        regularizer's starting precisions.
    rng:
        Seeded generator for the weight initialization.
    """

    def __init__(
        self,
        n_features: int,
        regularizer: Optional[Regularizer] = None,
        weight_init_std: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if weight_init_std < 0.0:
            raise ValueError(
                f"weight_init_std must be non-negative, got {weight_init_std}"
            )
        rng = rng if rng is not None else default_generator()
        self.n_features = int(n_features)
        self.weights = rng.normal(0.0, weight_init_std, size=n_features)
        self.bias = np.zeros(1)
        self.regularizer = regularizer
        self._params = [
            Parameter("weights", self.weights, regularizer),
            Parameter("bias", self.bias, None),
        ]

    # ------------------------------------------------------------------
    # TrainableModel interface
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Weight vector (regularized) and intercept (unregularized)."""
        return self._params

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Mean negative log likelihood and its gradients.

        ``y`` must contain 0/1 labels.  Gradients are returned per sample
        mean so the learning rate is batch-size independent.
        """
        self._check_input(x)
        z = x @ self.weights + self.bias[0]
        p = sigmoid(z)
        eps = 1e-12
        loss = -float(
            np.mean(y * np.log(p + eps) + (1.0 - y) * np.log(1.0 - p + eps))
        )
        residual = (p - y) / x.shape[0]
        grad_w = x.T @ residual
        grad_b = np.array([residual.sum()])
        return loss, [grad_w, grad_b]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Predicted probability of the positive class."""
        x = self._prepare_input(x)
        return sigmoid(x @ self.weights + self.bias[0])

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logits ``x @ w + b``."""
        x = self._prepare_input(x)
        return x @ self.weights + self.bias[0]

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected input of shape (n, {self.n_features}), got {x.shape}"
            )

    def _prepare_input(self, x: np.ndarray) -> np.ndarray:
        """Accept a single 1-D feature row by lifting it to a 1-row batch.

        All prediction entry points (``predict`` / ``predict_proba`` /
        ``decision_function``) share this, so a serving layer can hand
        single samples to any of them uniformly; the output then has a
        length-1 batch axis.  Training (``loss_and_gradients``) stays
        strictly 2-D.
        """
        x = np.asarray(x)
        if x.ndim == 1 and x.shape[0] == self.n_features:
            x = x.reshape(1, -1)
        self._check_input(x)
        return x
