"""Evaluation metrics used in the paper's experiments.

The paper's single evaluation metric is classification **accuracy**
(Section V-A), reported in Table VII as a mean and standard error over
five stratified subsamples.  A few companion metrics are provided for
the examples and the healthcare pipeline.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "accuracy",
    "error_rate",
    "mean_and_standard_error",
    "confusion_counts",
    "precision_recall_f1",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions (the paper's metric)."""
    y_true, y_pred = _aligned(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy(y_true, y_pred)


def mean_and_standard_error(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and standard error of the mean, as reported in Table VII.

    The paper reports "average and standard errors of accuracies" over 5
    subsamples; we use the sample standard deviation (ddof=1) divided by
    ``sqrt(n)``.  A single value has standard error 0.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    return mean, float(arr.std(ddof=1) / math.sqrt(arr.size))


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[int, int, int, int]:
    """Binary confusion counts ``(tp, fp, fn, tn)`` with positive class 1."""
    y_true, y_pred = _aligned(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return tp, fp, fn, tn


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[float, float, float]:
    """Precision, recall and F1 for the positive class (0 when undefined)."""
    tp, fp, fn, _tn = confusion_counts(y_true, y_pred)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    if precision + recall <= 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def _aligned(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"label arrays disagree on shape: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("label arrays must be non-empty")
    return y_true, y_pred
