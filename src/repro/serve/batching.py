"""Dynamic micro-batching queue with a thread worker pool.

NumPy inference cost is dominated by per-call overhead (Python layer
dispatch, BLAS setup) rather than per-row arithmetic, so scoring 32
queued rows as one ``(32, d)`` batch costs barely more than scoring one
— the whole point of coalescing.  This module owns the mechanics:

- requests enter a **bounded FIFO** (`max_queue`); a full queue makes
  :meth:`MicroBatcher.submit` return ``False`` so the caller can shed
  to its single-item sync path instead of growing memory without bound;
- a worker takes the head request, then **coalesces** further queued
  requests *of the same method* up to ``max_batch_size``, waiting at
  most ``batch_timeout`` seconds for stragglers (a lone request on an
  idle server therefore pays at most the timeout in added latency, and
  pays nothing when the timeout is 0);
- the stacked rows are dispatched **once** through a caller-provided
  ``dispatch(method, rows)`` function and the per-row results fan back
  out to the waiting callers;
- a queued (not yet dispatched) request can be **cancelled**, which is
  how per-request deadlines degrade gracefully instead of erroring.

The batcher knows nothing about models, caches or metrics — the
:class:`~repro.serve.server.ModelServer` composes those around it.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

__all__ = ["ServeRequest", "ServerClosed", "MicroBatcher"]

# dispatch(method, rows) -> per-row results, aligned with rows
DispatchFn = Callable[[str, List[np.ndarray]], Sequence[Any]]

_QUEUED = "queued"
_DISPATCHED = "dispatched"
_DONE = "done"
_CANCELLED = "cancelled"


class ServerClosed(RuntimeError):
    """The serving stack is shut down (or shutting down).

    Raised by submission paths once :meth:`MicroBatcher.close` /
    :meth:`~repro.serve.server.ModelServer.close` has begun, and set as
    the error on requests failed by a non-draining shutdown.  A typed
    subclass (rather than a bare ``RuntimeError``) lets callers and
    load-balancers distinguish "this replica is going away" from a
    genuine serving failure.
    """

    def __init__(self, detail: str = "server is closed") -> None:
        super().__init__(detail)


class ServeRequest:
    """One in-flight single-row request.

    ``context`` optionally carries the submitter's
    :class:`contextvars.Context` (captured at submit time when tracing
    is active); the dispatching worker restores it so the submitter's
    trace — and anything else riding on context variables — follows the
    request across the thread boundary.  Untraced requests leave it
    ``None`` and pay nothing.
    """

    __slots__ = ("row", "method", "event", "result", "error", "state",
                 "enqueued_at", "context")

    def __init__(
        self,
        method: str,
        row: np.ndarray,
        enqueued_at: float,
        context: Optional[contextvars.Context] = None,
    ) -> None:
        self.method = method
        self.row = row
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.state = _QUEUED
        self.enqueued_at = enqueued_at
        self.context = context

    def done(self) -> bool:
        """Whether a result or error has been delivered to this request."""
        return self.event.is_set()


class MicroBatcher:
    """Coalesce concurrent single-row requests into batched dispatches.

    Parameters
    ----------
    dispatch:
        ``dispatch(method, rows)`` scoring a list of rows in one model
        call; exceptions it raises are delivered to every request of the
        failed batch.
    max_batch_size:
        Upper bound on rows per dispatch (1 disables coalescing).
    batch_timeout:
        Seconds a worker waits for the batch to fill once it holds at
        least one request.  0 dispatches whatever is immediately queued.
    max_queue:
        Bound on queued (not yet dispatched) requests — the
        backpressure limit.
    workers:
        Worker threads pulling batches.  With CPython's GIL more
        workers mainly help when the model releases the GIL inside
        BLAS; the default stays small.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        max_batch_size: int = 32,
        batch_timeout: float = 0.002,
        max_queue: int = 256,
        workers: int = 2,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if batch_timeout < 0:
            raise ValueError(f"batch_timeout must be >= 0, got {batch_timeout}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._dispatch = dispatch
        self.max_batch_size = int(max_batch_size)
        self.batch_timeout = float(batch_timeout)
        self.max_queue = int(max_queue)
        self._queue: "deque[ServeRequest]" = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._run, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> bool:
        """Enqueue; returns ``False`` (shed) when the queue is full.

        Raises :class:`ServerClosed` once :meth:`close` has begun.
        """
        with self._cond:
            if self._stopping:
                raise ServerClosed()
            if len(self._queue) >= self.max_queue:
                return False
            self._queue.append(request)
            self._cond.notify()
            return True

    def submit_many(self, requests: Sequence[ServeRequest]) -> int:
        """Enqueue a burst under one lock acquisition.

        Accepts a FIFO prefix up to the queue bound and returns how many
        were taken; the caller sheds the rest exactly as for a ``False``
        :meth:`submit`.  One acquisition + one notify for the whole
        burst keeps the producer from trading the lock (and, in
        CPython, the GIL) with the workers once per row.
        """
        with self._cond:
            if self._stopping:
                raise ServerClosed()
            room = self.max_queue - len(self._queue)
            accepted = min(max(room, 0), len(requests))
            self._queue.extend(requests[:accepted])
            if accepted:
                self._cond.notify_all()
            return accepted

    def cancel(self, request: ServeRequest) -> bool:
        """Remove a still-queued request; ``False`` once dispatch began."""
        with self._cond:
            if request.state == _QUEUED:
                try:
                    self._queue.remove(request)
                except ValueError:  # pragma: no cover - state implies presence
                    return False
                request.state = _CANCELLED
                return True
            return False

    def depth(self) -> int:
        """Current number of queued (undispatched) requests."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _take_matching_locked(
        self, method: str, limit: int
    ) -> List[ServeRequest]:
        """Pop the FIFO prefix sharing ``method``, up to ``limit`` items.

        Only the contiguous head is taken so requests of another method
        are never overtaken (FIFO fairness across methods).
        """
        taken: List[ServeRequest] = []
        while self._queue and len(taken) < limit:
            if self._queue[0].method != method:
                break
            request = self._queue.popleft()
            request.state = _DISPATCHED
            taken.append(request)
        return taken

    def _collect_batch(self) -> List[ServeRequest]:
        """Block until a batch is ready (or empty list at shutdown)."""
        with self._cond:
            while not self._queue:
                if self._stopping:
                    return []
                self._cond.wait()
            method = self._queue[0].method
            batch = self._take_matching_locked(method, self.max_batch_size)
            if self.batch_timeout > 0.0:
                deadline = time.monotonic() + self.batch_timeout
                while len(batch) < self.max_batch_size and not self._stopping:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cond.wait(remaining)
                    batch.extend(
                        self._take_matching_locked(
                            method, self.max_batch_size - len(batch)
                        )
                    )
            if self._queue:
                # Leftover work (other method / beyond max batch): wake
                # a sibling worker to start on it while we dispatch.
                self._cond.notify_all()
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            try:
                # Restore the head request's submit-time context (when
                # captured) so its trace parents the dispatch work done
                # on this worker thread.  One batch = one model call =
                # one context; the coalesced followers' results are
                # fanned back regardless of whose context ran the call.
                rows = [request.row for request in batch]
                head = batch[0]
                if head.context is not None:
                    results = head.context.run(
                        self._dispatch, head.method, rows
                    )
                else:
                    results = self._dispatch(head.method, rows)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"dispatch returned {len(results)} results for a "
                        f"batch of {len(batch)}"
                    )
                for request, result in zip(batch, results):
                    request.result = result
            except BaseException as exc:  # delivered to every caller
                for request in batch:
                    request.error = exc
            for request in batch:
                request.state = _DONE
                request.event.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the workers; never abandons an accepted request.

        ``drain=True`` lets queued requests complete first (workers
        prefer remaining work over exit, so everything accepted before
        the stop flag is dispatched).  ``drain=False`` fails the queued
        remainder immediately with a typed :class:`ServerClosed` error —
        every waiter wakes up either way; no future is left hanging.
        """
        with self._cond:
            self._stopping = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    request.error = ServerClosed("server closed before dispatch")
                    request.state = _DONE
                    request.event.set()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        # Workers exit as soon as they see the stop flag with an empty
        # queue; with drain=True anything still queued at that point is
        # picked up first because _collect_batch prefers work over exit.
        # Belt-and-braces: if a queued request somehow survived the
        # worker drain (e.g. zero live workers), fail it rather than
        # leave its waiter blocked forever.
        with self._cond:
            while self._queue:
                request = self._queue.popleft()
                request.error = ServerClosed("server closed before dispatch")
                request.state = _DONE
                request.event.set()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun (new submissions are rejected)."""
        with self._cond:
            return self._stopping

    @property
    def workers(self) -> int:
        """Number of dispatch worker threads."""
        return len(self._threads)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"depth={self.depth()}, workers={len(self._threads)})"
        )
