"""Model serving: registry, micro-batching, caching, worker pool.

The paper's tool lives inside a production analytics stack where
trained readmission-risk models answer *live* queries; this subsystem
closes the repo's train → serve gap:

:mod:`repro.serve.registry`
    :class:`ModelRegistry` — versioned ``.npz`` checkpoints (disk or
    in-memory) for any ``parameters()`` model, with an atomic hot-swap
    of the active version and a :class:`~repro.nn.checkpoint.LoadReport`
    based architecture-compatibility check.
:mod:`repro.serve.batching`
    :class:`MicroBatcher` — bounded FIFO + worker pool that coalesces
    concurrent single-row requests into one NumPy batch call.
:mod:`repro.serve.cache`
    :class:`PredictionCache` — LRU of per-row results keyed on
    method x model-version x row bytes.
:mod:`repro.serve.server`
    :class:`ModelServer` — the request lifecycle: per-request
    deadlines, backpressure shedding to a single-item sync path, and
    full :class:`~repro.telemetry.metrics.MetricsRegistry` wiring
    (latency/batch-size histograms, queue-depth gauge, shed and cache
    counters).

Entry points: ``python -m repro serve`` / ``python -m repro predict``
(CLI) and :meth:`repro.pipeline.stack.AnalyticsStack.serve` (in-process).
"""

from .batching import MicroBatcher, ServeRequest
from .cache import PredictionCache
from .registry import ActiveModel, CheckpointIncompatible, ModelRegistry
from .server import ModelServer

__all__ = [
    "ActiveModel",
    "CheckpointIncompatible",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "PredictionCache",
    "ServeRequest",
]
