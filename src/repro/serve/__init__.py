"""Model serving: registry, micro-batching, caching, worker pool.

The paper's tool lives inside a production analytics stack where
trained readmission-risk models answer *live* queries; this subsystem
closes the repo's train → serve gap:

:mod:`repro.serve.registry`
    :class:`ModelRegistry` — versioned ``.npz`` checkpoints (disk or
    in-memory) for any ``parameters()`` model, with an atomic hot-swap
    of the active version and a :class:`~repro.nn.checkpoint.LoadReport`
    based architecture-compatibility check.
:mod:`repro.serve.batching`
    :class:`MicroBatcher` — bounded FIFO + worker pool that coalesces
    concurrent single-row requests into one NumPy batch call.
:mod:`repro.serve.cache`
    :class:`PredictionCache` — LRU of per-row results keyed on
    method x model-version x row bytes.
:mod:`repro.serve.server`
    :class:`ModelServer` — the request lifecycle: per-request
    deadlines, backpressure shedding to a single-item sync path, and
    full :class:`~repro.telemetry.metrics.MetricsRegistry` wiring
    (latency/batch-size histograms, queue-depth gauge, shed and cache
    counters).
:mod:`repro.serve.resilience`
    :class:`FaultInjector` (seeded chaos harness), :class:`RetryPolicy`
    (exponential backoff + full jitter + deadline budgets),
    :class:`CircuitBreaker` (closed/open/half-open over a sliding
    window) and :class:`ResiliencePolicy` — the failure-handling
    decision table wired through the server, plus the
    :meth:`ModelServer.health` / :meth:`ModelServer.ready` operator
    probes (see ``docs/RUNBOOK.md``).
:mod:`repro.serve.sharding`
    :class:`~repro.serve.sharding.server.ShardedModelServer` — the same
    request lifecycle spread over N worker *processes*: consistent-hash
    routing, shared-memory batch transport, a supervisor that respawns
    dead workers from the last-known-good snapshot, and atomic
    hot-swap broadcast (load-tested by :mod:`repro.loadgen`).

Entry points: ``python -m repro serve [--shards N]`` /
``python -m repro predict`` / ``python -m repro loadgen`` (CLI) and
:meth:`repro.pipeline.stack.AnalyticsStack.serve` (in-process).
"""

from .batching import MicroBatcher, ServeRequest, ServerClosed
from .cache import PredictionCache
from .registry import ActiveModel, CheckpointIncompatible, ModelRegistry
from .resilience import (
    BreakerOpen,
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    InjectedFault,
    ResiliencePolicy,
    RetryPolicy,
)
from .server import ModelServer
from .sharding import ShardedModelServer

__all__ = [
    "ActiveModel",
    "BreakerOpen",
    "CheckpointIncompatible",
    "CircuitBreaker",
    "FaultInjector",
    "FaultProfile",
    "InjectedFault",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "PredictionCache",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServeRequest",
    "ServerClosed",
    "ShardedModelServer",
]
