"""Model server: request lifecycle around the micro-batching engine.

:class:`ModelServer` is the front door of ``repro.serve``.  Per request
it:

1. resolves the model — either a fixed instance or, through a
   :class:`~repro.serve.registry.ModelRegistry`, whatever version is
   currently active (hot-swaps take effect between batches);
2. consults the LRU :class:`~repro.serve.cache.PredictionCache`
   (keyed on method x version x row bytes);
3. enqueues the row into the :class:`~repro.serve.batching.MicroBatcher`
   and blocks until the coalesced batch dispatch fans its result back;
4. degrades gracefully instead of failing: a **full queue** sheds the
   request to an inline single-row model call (``serve/shed_total``),
   and an expired **deadline** cancels the queued request and answers
   it the same way (``serve/deadline_expired_total``) — callers always
   get an answer, memory stays bounded.

Every step is instrumented on a
:class:`~repro.telemetry.metrics.MetricsRegistry`: request/batch/shed
counters, cache hit/miss counters, a queue-depth gauge and latency /
batch-size histograms, so a serving process exposes the same snapshot
machinery as the training loop.

**Numerical note.**  Coalescing changes the BLAS call shapes: a row
scored inside a ``(32, d)`` batch can differ from the same row scored
alone by a few ulps (reduction-order effects), so *probabilities* are
equal only to ~1e-12 while the hard *predictions* (thresholded /
argmaxed labels) are bit-identical — which is what the equivalence
tests and the throughput benchmark assert.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..telemetry.metrics import MetricsRegistry
from .batching import MicroBatcher, ServeRequest
from .cache import PredictionCache
from .registry import ModelRegistry

__all__ = ["ModelServer"]


class ModelServer:
    """Serve single-row ``predict``-family queries with micro-batching.

    Parameters
    ----------
    model:
        A fixed model instance to serve, or ``None`` when serving from a
        registry.
    registry, name:
        Serve ``registry.active(name)``; the active version is resolved
        per batch, so :meth:`ModelRegistry.activate` hot-swaps a running
        server without restarts.
    max_batch_size, batch_timeout, max_queue, workers:
        Micro-batching knobs (see
        :class:`~repro.serve.batching.MicroBatcher`).
    cache_size:
        LRU prediction-cache capacity in rows (0 disables caching).
    metrics:
        Shared registry for instruments; a private one is created by
        default.
    """

    def __init__(
        self,
        model: Any = None,
        registry: Optional[ModelRegistry] = None,
        name: Optional[str] = None,
        max_batch_size: int = 32,
        batch_timeout: float = 0.002,
        max_queue: int = 256,
        workers: int = 2,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if registry is not None and not name:
            raise ValueError("serving from a registry requires name=")
        self._model = model
        self._registry = registry
        self._name = name
        self.metrics = metrics or MetricsRegistry()
        self.cache = PredictionCache(cache_size)
        self._closed = False
        self._close_lock = threading.Lock()
        self._batcher = MicroBatcher(
            self._dispatch,
            max_batch_size=max_batch_size,
            batch_timeout=batch_timeout,
            max_queue=max_queue,
            workers=workers,
        )

    @property
    def registry(self) -> Optional[ModelRegistry]:
        """The backing registry, if serving live models (else ``None``).

        Publishing to it hot-swaps what this server answers with.
        """
        return self._registry

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def predict(self, row: np.ndarray, deadline: Optional[float] = None) -> Any:
        """Hard label for one sample (blocking)."""
        return self.request("predict", row, deadline=deadline)

    def predict_proba(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Probability output for one sample (blocking)."""
        return self.request("predict_proba", row, deadline=deadline)

    def decision_function(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Raw score for one sample (blocking)."""
        return self.request("decision_function", row, deadline=deadline)

    def request(
        self, method: str, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Score one sample via ``method``.

        ``row`` is a single sample *without* the batch axis (a length-1
        leading axis is squeezed away).  ``deadline`` is a per-request
        budget in seconds: a request still queued when it expires is
        cancelled and answered inline instead of erroring.
        """
        clock = self.metrics.clock
        start = clock()
        if self._closed:
            raise RuntimeError("server is closed")
        row = self._normalize_row(row)
        version, model = self._resolve()
        if not callable(getattr(model, method, None)):
            raise ValueError(
                f"model {type(model).__name__} does not support {method!r}"
            )
        self.metrics.counter("serve/requests_total").inc()

        key = None
        if self.cache.maxsize:
            key = PredictionCache.make_key(method, version, row)
            hit, value = self.cache.get(key)
            if hit:
                self.metrics.counter("serve/cache_hits_total").inc()
                self._observe_latency(clock() - start)
                return value
            self.metrics.counter("serve/cache_misses_total").inc()

        pending = ServeRequest(method, row, enqueued_at=start)
        if not self._batcher.submit(pending):
            # Bounded-queue backpressure: serve inline rather than grow.
            self.metrics.counter("serve/shed_total").inc()
            return self._predict_inline(method, row, model, key, start)
        self._gauge_depth()

        if pending.event.wait(timeout=deadline):
            return self._finish(pending, start)
        # Deadline expired while queued: cancel and degrade to the
        # inline path so the caller still gets an answer.
        if self._batcher.cancel(pending):
            self.metrics.counter("serve/deadline_expired_total").inc()
            return self._predict_inline(method, row, model, key, start)
        # Already being dispatched; the result is moments away.
        pending.event.wait()
        return self._finish(pending, start)

    def predict_many(
        self, x: np.ndarray, method: str = "predict"
    ) -> List[Any]:
        """Submit every row of ``x`` concurrently and wait for all.

        The rows flow through the same queue as individual requests, so
        they coalesce into micro-batches; order of results matches the
        row order of ``x``.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        clock = self.metrics.clock
        results: List[Any] = [None] * len(x)
        to_submit: List[Tuple[int, ServeRequest]] = []
        version, model = self._resolve()
        caching = bool(self.cache.maxsize)
        requests_total = self.metrics.counter("serve/requests_total")
        for index, row in enumerate(x):
            start = clock()
            row = self._normalize_row(row)
            requests_total.inc()
            if caching:
                key = PredictionCache.make_key(method, version, row)
                hit, value = self.cache.get(key)
                if hit:
                    self.metrics.counter("serve/cache_hits_total").inc()
                    self._observe_latency(clock() - start)
                    results[index] = value
                    continue
                self.metrics.counter("serve/cache_misses_total").inc()
            to_submit.append((index, ServeRequest(method, row, enqueued_at=start)))
        # One bulk enqueue instead of a lock/notify round-trip per row;
        # whatever exceeds the queue bound is shed to the inline path,
        # same as a single over-capacity submit.
        accepted = self._batcher.submit_many(
            [request for _index, request in to_submit]
        )
        self._gauge_depth()
        for index, request in to_submit[accepted:]:
            self.metrics.counter("serve/shed_total").inc()
            key = (
                PredictionCache.make_key(method, version, request.row)
                if caching else None
            )
            results[index] = self._predict_inline(
                method, request.row, model, key, request.enqueued_at
            )
        for index, request in to_submit[:accepted]:
            request.event.wait()
            results[index] = self._finish(request, request.enqueued_at)
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_row(row: np.ndarray) -> np.ndarray:
        row = np.asarray(row)
        if row.ndim >= 2 and row.shape[0] == 1:
            row = row[0]
        return row

    def _resolve(self) -> Tuple[str, Any]:
        """Current ``(version, model)`` — re-read per batch for hot-swap."""
        if self._registry is not None:
            active = self._registry.active(self._name)
            return active.version, active.model
        return "v0", self._model

    def _dispatch(self, method: str, rows: List[np.ndarray]) -> List[Any]:
        """Score a coalesced batch with a single model call."""
        version, model = self._resolve()
        batch = np.stack(rows)
        with self.metrics.timer("serve/dispatch_seconds"):
            out = getattr(model, method)(batch)
        self.metrics.counter("serve/batches_total").inc()
        self.metrics.histogram("serve/batch_size").observe(len(rows))
        self._gauge_depth()
        results = list(out)
        if self.cache.maxsize:
            for row, result in zip(rows, results):
                self.cache.put(
                    PredictionCache.make_key(method, version, row), result
                )
        return results

    def _predict_inline(
        self,
        method: str,
        row: np.ndarray,
        model: Any,
        key: Optional[bytes],
        start: float,
    ) -> Any:
        """Single-item sync path used for shedding and expired deadlines."""
        result = getattr(model, method)(row[np.newaxis, ...])[0]
        if key is not None:
            self.cache.put(key, result)
        self._observe_latency(self.metrics.clock() - start)
        return result

    def _finish(self, request: ServeRequest, start: float) -> Any:
        self._observe_latency(self.metrics.clock() - start)
        if request.error is not None:
            raise request.error
        return request.result

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.histogram("serve/latency_seconds").observe(seconds)

    def _gauge_depth(self) -> None:
        self.metrics.gauge("serve/queue_depth").set(self._batcher.depth())

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the worker pool (idempotent).

        ``drain=True`` completes queued requests first.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close(drain=drain)

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        """Derived serving stats on top of the raw metrics snapshot."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        batch_hist = self.metrics.histogram("serve/batch_size")
        latency_hist = self.metrics.histogram("serve/latency_seconds")
        stats: Dict[str, Any] = {
            "requests": counters.get("serve/requests_total", 0.0),
            "batches": counters.get("serve/batches_total", 0.0),
            "shed": counters.get("serve/shed_total", 0.0),
            "deadline_expired": counters.get(
                "serve/deadline_expired_total", 0.0
            ),
            "cache_hit_rate": self.cache.hit_rate,
            "mean_batch_size": (
                batch_hist.mean if batch_hist.count else 0.0
            ),
            "metrics": snapshot,
        }
        if latency_hist.count:
            stats["latency_p50_ms"] = latency_hist.quantile(0.5) * 1e3
            stats["latency_p99_ms"] = latency_hist.quantile(0.99) * 1e3
        return stats

    def __repr__(self) -> str:
        target = (
            f"registry:{self._name}" if self._registry is not None
            else type(self._model).__name__
        )
        return (
            f"ModelServer({target}, max_batch_size="
            f"{self._batcher.max_batch_size}, closed={self._closed})"
        )
