"""Model server: request lifecycle around the micro-batching engine.

:class:`ModelServer` is the front door of ``repro.serve``.  Per request
it:

1. resolves the model — either a fixed instance or, through a
   :class:`~repro.serve.registry.ModelRegistry`, whatever version is
   currently active (hot-swaps take effect between batches);
2. consults the LRU :class:`~repro.serve.cache.PredictionCache`
   (keyed on method x version x row bytes);
3. enqueues the row into the :class:`~repro.serve.batching.MicroBatcher`
   and blocks until the coalesced batch dispatch fans its result back;
4. degrades gracefully instead of failing: a **full queue** sheds the
   request to an inline single-row model call (``serve/shed_total``),
   and an expired **deadline** cancels the queued request and answers
   it the same way (``serve/deadline_expired_total``) — callers always
   get an answer, memory stays bounded.

With a :class:`~repro.serve.resilience.ResiliencePolicy` attached the
unhappy paths get the same treatment: model and registry calls are
retried with jittered backoff, registry resolution sits behind a
circuit breaker whose open state degrades to the last-known-good model
snapshot (``resilience/stale_model_served_total``), a failed coalesced
batch is rescued row-by-row on the callers' threads
(``serve/rescued_total``), and cache entries carry integrity checksums
so a poisoned entry costs one recompute instead of a wrong answer.
:meth:`ModelServer.health` exposes the whole picture — queue depth,
breaker states, cache hit rate, active version — as the operator
probe documented in ``docs/RUNBOOK.md``.

Every step is instrumented on a
:class:`~repro.telemetry.metrics.MetricsRegistry`: request/batch/shed
counters, cache hit/miss counters, a queue-depth gauge and latency /
batch-size histograms, so a serving process exposes the same snapshot
machinery as the training loop.

**Numerical note.**  Coalescing changes the BLAS call shapes: a row
scored inside a ``(32, d)`` batch can differ from the same row scored
alone by a few ulps (reduction-order effects), so *probabilities* are
equal only to ~1e-12 while the hard *predictions* (thresholded /
argmaxed labels) are bit-identical — which is what the equivalence
tests and the throughput benchmark assert.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from types import TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..telemetry import trace as tracing
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import Tracer, add_event
from .batching import MicroBatcher, ServeRequest, ServerClosed
from .cache import PredictionCache
from .registry import ActiveModel, ModelRegistry
from .resilience import BreakerOpen, FaultInjector, ResiliencePolicy

__all__ = ["ModelServer"]


class ModelServer:
    """Serve single-row ``predict``-family queries with micro-batching.

    Parameters
    ----------
    model:
        A fixed model instance to serve, or ``None`` when serving from a
        registry.
    registry, name:
        Serve ``registry.active(name)``; the active version is resolved
        per batch, so :meth:`ModelRegistry.activate` hot-swaps a running
        server without restarts.
    max_batch_size, batch_timeout, max_queue, workers:
        Micro-batching knobs (see
        :class:`~repro.serve.batching.MicroBatcher`).
    cache_size:
        LRU prediction-cache capacity in rows (0 disables caching).
    metrics:
        Shared registry for instruments; a private one is created by
        default.
    resilience:
        A :class:`~repro.serve.resilience.ResiliencePolicy` giving every
        external-facing call site its retry / breaker / degrade
        decision.  ``None`` keeps the PR-3 happy-path behaviour, except
        that attaching a ``fault_injector`` implies
        ``ResiliencePolicy.default()`` — chaos without resilience would
        just be a broken server.
    fault_injector:
        Optional :class:`~repro.serve.resilience.FaultInjector` whose
        ``"model"`` / ``"registry"`` / ``"cache"`` sites wrap the
        corresponding calls (the ``--chaos`` harness).
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`.  When set (or
        when an ambient tracer is installed via
        :func:`~repro.telemetry.trace.use_tracer`) every request gets a
        ``serve/request`` root span, dispatches get child spans on the
        worker thread, and the resilience layer's retries / breaker
        transitions / fallbacks land on the request span as events.
        ``None`` with no ambient tracer keeps the request path
        trace-free (cost: one context-variable read per request).
    """

    def __init__(
        self,
        model: Any = None,
        registry: Optional[ModelRegistry] = None,
        name: Optional[str] = None,
        max_batch_size: int = 32,
        batch_timeout: float = 0.002,
        max_queue: int = 256,
        workers: int = 2,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        resilience: Optional[ResiliencePolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if registry is not None and not name:
            raise ValueError("serving from a registry requires name=")
        self._model = model
        self._registry = registry
        self._name = name
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        if resilience is None and fault_injector is not None:
            resilience = ResiliencePolicy.default()
        self.resilience = resilience
        self.fault_injector = fault_injector
        if self.resilience is not None:
            self.resilience.bind_metrics(self.metrics)
        if self.fault_injector is not None:
            self.fault_injector.bind_metrics(self.metrics)
        integrity = (
            self.resilience.cache_integrity
            if self.resilience is not None
            else False
        )
        self.cache = PredictionCache(cache_size, integrity=integrity)
        self._last_good: Optional[ActiveModel] = None
        self._closed = False
        self._close_lock = threading.Lock()
        self._batcher = MicroBatcher(
            self._dispatch,
            max_batch_size=max_batch_size,
            batch_timeout=batch_timeout,
            max_queue=max_queue,
            workers=workers,
        )

    @property
    def registry(self) -> Optional[ModelRegistry]:
        """The backing registry, if serving live models (else ``None``).

        Publishing to it hot-swaps what this server answers with.
        """
        return self._registry

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def predict(self, row: np.ndarray, deadline: Optional[float] = None) -> Any:
        """Hard label for one sample (blocking)."""
        return self.request("predict", row, deadline=deadline)

    def predict_proba(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Probability output for one sample (blocking)."""
        return self.request("predict_proba", row, deadline=deadline)

    def decision_function(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Raw score for one sample (blocking)."""
        return self.request("decision_function", row, deadline=deadline)

    def request(
        self, method: str, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Score one sample via ``method``.

        ``row`` is a single sample *without* the batch axis (a length-1
        leading axis is squeezed away).  ``deadline`` is a per-request
        budget in seconds: a request still queued when it expires is
        cancelled and answered inline instead of erroring.

        Raises
        ------
        ServerClosed
            When the server (or its batcher) has begun shutting down.
        """
        clock = self.metrics.clock
        start = clock()
        if self.closed:
            raise ServerClosed()
        with self._start_span("serve/request", method=method) as span:
            row = self._normalize_row(row)
            version, model = self._resolve()
            span.set_attribute("version", version)
            if not callable(getattr(model, method, None)):
                raise ValueError(
                    f"model {type(model).__name__} does not support {method!r}"
                )
            self.metrics.counter("serve/requests_total").inc()

            key = None
            if self.cache.maxsize:
                key = PredictionCache.make_key(method, version, row)
                hit, value = self.cache.get(key)
                if hit:
                    span.event("cache_hit")
                    self.metrics.counter("serve/cache_hits_total").inc()
                    self._observe_latency(clock() - start)
                    return value
                span.event("cache_miss")
                self.metrics.counter("serve/cache_misses_total").inc()

            pending = ServeRequest(
                method, row, enqueued_at=start,
                context=self._capture_context(),
            )
            if not self._batcher.submit(pending):
                # Bounded-queue backpressure: serve inline rather than grow.
                span.event("shed", reason="queue_full")
                self.metrics.counter("serve/shed_total").inc()
                return self._predict_inline(method, row, model, key, start)
            self._gauge_depth()

            if pending.event.wait(timeout=deadline):
                return self._finish(pending, start)
            # Deadline expired while queued: cancel and degrade to the
            # inline path so the caller still gets an answer.
            if self._batcher.cancel(pending):
                span.event("deadline_expired")
                self.metrics.counter("serve/deadline_expired_total").inc()
                return self._predict_inline(method, row, model, key, start)
            # Already being dispatched; the result is moments away.
            pending.event.wait()
            return self._finish(pending, start)

    def predict_many(
        self, x: np.ndarray, method: str = "predict"
    ) -> List[Any]:
        """Submit every row of ``x`` concurrently and wait for all.

        The rows flow through the same queue as individual requests, so
        they coalesce into micro-batches; order of results matches the
        row order of ``x``.
        """
        if self.closed:
            raise ServerClosed()
        clock = self.metrics.clock
        with self._start_span(
            "serve/predict_many", method=method, rows=len(x)
        ) as span:
            results: List[Any] = [None] * len(x)
            to_submit: List[Tuple[int, ServeRequest]] = []
            version, model = self._resolve()
            caching = bool(self.cache.maxsize)
            requests_total = self.metrics.counter("serve/requests_total")
            for index, row in enumerate(x):
                start = clock()
                row = self._normalize_row(row)
                requests_total.inc()
                if caching:
                    key = PredictionCache.make_key(method, version, row)
                    hit, value = self.cache.get(key)
                    if hit:
                        self.metrics.counter("serve/cache_hits_total").inc()
                        self._observe_latency(clock() - start)
                        results[index] = value
                        continue
                    self.metrics.counter("serve/cache_misses_total").inc()
                # Per-request context copies: a shared Context object
                # cannot be entered by two dispatching workers at once.
                to_submit.append(
                    (index,
                     ServeRequest(method, row, enqueued_at=start,
                                  context=self._capture_context()))
                )
            # One bulk enqueue instead of a lock/notify round-trip per row;
            # whatever exceeds the queue bound is shed to the inline path,
            # same as a single over-capacity submit.
            accepted = self._batcher.submit_many(
                [request for _index, request in to_submit]
            )
            self._gauge_depth()
            if accepted < len(to_submit):
                span.event(
                    "shed", reason="queue_full",
                    rows=len(to_submit) - accepted,
                )
            for index, request in to_submit[accepted:]:
                self.metrics.counter("serve/shed_total").inc()
                key = (
                    PredictionCache.make_key(method, version, request.row)
                    if caching else None
                )
                results[index] = self._predict_inline(
                    method, request.row, model, key, request.enqueued_at
                )
            for index, request in to_submit[:accepted]:
                request.event.wait()
                results[index] = self._finish(request, request.enqueued_at)
            return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _start_span(self, name: str, **attributes: Any) -> Any:
        """Open a span on this server's tracer (or the ambient one).

        Returns the inert null span when neither exists, so every call
        site writes an unconditional ``with self._start_span(...)``.
        """
        return tracing.start_span(
            name, attributes=attributes or None, tracer=self.tracer
        )

    def _capture_context(self) -> Optional[contextvars.Context]:
        """Submit-time context snapshot for cross-thread propagation.

        Only taken when the submitting request's span is **sampled** —
        an unsampled trace records no payload anywhere in its subtree,
        so copying a context that could only ever feed no-ops would put
        a per-request allocation on the 90%-of-traffic path for
        nothing.  This is what keeps tracing at the default 0.1 rate
        inside its ≤5% QPS budget (``benchmarks/bench_trace_overhead``).
        The untraced hot path costs one context-variable read.
        """
        active = tracing.current_span()
        if active is not None and active.sampled:
            return contextvars.copy_context()
        return None

    @staticmethod
    def _normalize_row(row: np.ndarray) -> np.ndarray:
        row = np.asarray(row)
        if row.ndim >= 2 and row.shape[0] == 1:
            row = row[0]
        return row

    def _load_active(self) -> ActiveModel:
        """One chaos-wrapped registry resolution (the breaker's payload)."""
        registry = self._registry
        if registry is None:  # pragma: no cover - guarded by _resolve
            raise RuntimeError("no registry attached")
        name = self._name or ""
        if self.fault_injector is not None:
            active = self.fault_injector.call("registry", registry.active, name)
        else:
            active = registry.active(name)
        return active

    def _resolve(self) -> Tuple[str, Any]:
        """Current ``(version, model)`` — re-read per batch for hot-swap.

        With a resilience policy, registry resolution is retried with
        backoff *inside* the registry circuit breaker; when the breaker
        is open (or the load still fails after retries) the last-known-
        good snapshot is served instead
        (``resilience/stale_model_served_total``) — an unavailable
        registry degrades to stale-but-correct answers rather than
        errors.  Only when no snapshot exists yet does the failure
        propagate.
        """
        if self._registry is None:
            return "v0", self._model
        policy = self.resilience
        if policy is None:
            active = self._load_active()
            self._last_good = active
            return active.version, active.model
        try:
            active = policy.registry_breaker.call(
                policy.retry.call, self._load_active
            )
        except BreakerOpen:
            stale = self._last_good
            if stale is None:
                raise
            add_event(
                "stale_model_served",
                reason="breaker_open",
                version=stale.version,
            )
            self.metrics.counter(
                "resilience/stale_model_served_total"
            ).inc()
            return stale.version, stale.model
        except Exception as exc:
            stale = self._last_good
            if stale is None:
                raise
            add_event(
                "stale_model_served",
                reason=type(exc).__name__,
                version=stale.version,
            )
            self.metrics.counter(
                "resilience/stale_model_served_total"
            ).inc()
            return stale.version, stale.model
        self._last_good = active
        return active.version, active.model

    def _score(self, model: Any, method: str, batch: np.ndarray) -> Any:
        """One (chaos-wrapped, retried) model call on a stacked batch."""
        bound = getattr(model, method)
        if self.fault_injector is not None:
            if self.resilience is not None:
                return self.resilience.retry.call(
                    self.fault_injector.call, "model", bound, batch
                )
            return self.fault_injector.call("model", bound, batch)
        if self.resilience is not None:
            return self.resilience.retry.call(bound, batch)
        return bound(batch)

    def _dispatch(self, method: str, rows: List[np.ndarray]) -> List[Any]:
        """Score a coalesced batch with a single model call.

        Runs on a batcher worker thread; when the head request captured
        its submit-time context the worker restored it around this
        call, so the dispatch span parents to that request's span.
        Without a restored span (untraced or unsampled submitter) the
        dispatch is not traced — a parentless dispatch root would be an
        orphan trace no summary could attach to a request.
        """
        traced = tracing.current_span() is not None
        with (
            self._start_span(
                "serve/dispatch", method=method, batch_size=len(rows)
            )
            if traced
            else contextlib.nullcontext()
        ):
            version, model = self._resolve()
            batch = np.stack(rows)
            with self.metrics.timer("serve/dispatch_seconds"):
                out = self._score(model, method, batch)
        self.metrics.counter("serve/batches_total").inc()
        self.metrics.histogram("serve/batch_size").observe(len(rows))
        self._gauge_depth()
        results = list(out)
        if self.cache.maxsize:
            for row, result in zip(rows, results):
                self._cache_put(
                    PredictionCache.make_key(method, version, row), result
                )
        return results

    def _cache_put(self, key: bytes, value: Any) -> None:
        """Store a result, routing through cache chaos and degrading on error.

        Under chaos the ``"cache"`` site may corrupt the stored bytes;
        the poisoned copy is planted under the *honest* checksum
        (:meth:`PredictionCache.put_poisoned`) so the next lookup
        detects the mismatch and recomputes — the detectable-corruption
        drill.  Any cache failure only costs the memoization, never the
        request: errors are counted (``resilience/cache_errors_total``)
        and swallowed.
        """
        try:
            if self.fault_injector is not None:
                checksum_value = value
                stored = self.fault_injector.corrupt("cache", value)
                if stored is not checksum_value and self.cache.integrity:
                    # Plant the poisoned bytes *under the honest
                    # checksum* so the next get() detects the mismatch —
                    # the detectable-corruption drill.
                    self.cache.put_poisoned(key, stored, checksum_value)
                    return
                value = stored
            self.cache.put(key, value)
        except Exception:
            self.metrics.counter("resilience/cache_errors_total").inc()

    def _predict_inline(
        self,
        method: str,
        row: np.ndarray,
        model: Any,
        key: Optional[bytes],
        start: float,
    ) -> Any:
        """Single-item sync path used for shedding and expired deadlines."""
        with self._start_span("serve/inline_predict", method=method):
            result = self._score(model, method, row[np.newaxis, ...])[0]
        if key is not None:
            self._cache_put(key, result)
        self._observe_latency(self.metrics.clock() - start)
        return result

    def _finish(self, request: ServeRequest, start: float) -> Any:
        """Deliver a completed request's result (or rescue/raise its error).

        A request whose coalesced batch failed even after the dispatch
        retries is, under ``rescue_batch_errors``, re-scored alone on
        the caller's thread (``serve/rescued_total``) — one poisoned row
        can fail a batch, but it should not fail its 31 neighbours.
        :class:`ServerClosed` is never rescued; shutdown is not a fault.
        """
        if request.error is not None:
            policy = self.resilience
            if (
                policy is not None
                and policy.rescue_batch_errors
                and not isinstance(request.error, ServerClosed)
            ):
                add_event(
                    "row_rescue", error=type(request.error).__name__
                )
                self.metrics.counter("serve/rescued_total").inc()
                version, model = self._resolve()
                key = (
                    PredictionCache.make_key(
                        request.method, version, request.row
                    )
                    if self.cache.maxsize
                    else None
                )
                return self._predict_inline(
                    request.method, request.row, model, key, start
                )
            self._observe_latency(self.metrics.clock() - start)
            raise request.error
        self._observe_latency(self.metrics.clock() - start)
        return request.result

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.histogram("serve/latency_seconds").observe(seconds)

    def _gauge_depth(self) -> None:
        self.metrics.gauge("serve/queue_depth").set(self._batcher.depth())

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the worker pool (idempotent).

        ``drain=True`` completes queued requests first; ``drain=False``
        fails them promptly with :class:`ServerClosed`.  Either way no
        accepted request is left blocking forever.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close(drain=drain)

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun; closed servers reject requests."""
        with self._close_lock:
            return self._closed

    def health(self) -> Dict[str, Any]:
        """Liveness/diagnostics probe: one consistent operator-facing dict.

        Keys (see ``docs/RUNBOOK.md`` for the semantics table):

        - ``status`` — ``"ok"``, ``"degraded"`` (some circuit breaker is
          not closed: the stack answers but from fallbacks), or
          ``"closed"``;
        - ``queue_depth`` / ``queue_capacity`` / ``queue_saturation`` —
          backpressure headroom (saturation 1.0 means new requests shed
          to the inline path);
        - ``cache`` — the full :meth:`PredictionCache.stats` snapshot
          (hit rate, evictions, detected corruptions);
        - ``breakers`` — ``{name: state}`` for every breaker in the
          resilience policy (empty without one);
        - ``active_model`` — ``{"name", "version", "stale"}`` of what a
          request would be scored by right now (``version=None`` when
          nothing is resolvable), ``stale=True`` when it is the
          last-known-good fallback rather than a live resolution;
        - ``shards`` — per-shard status entries (``shard``, ``alive``,
          ``queue_depth``, ``active_version``).  The single-process
          server reports its one in-process "shard" so probes read the
          same shape from both tiers;
          :meth:`repro.serve.sharding.server.ShardedModelServer.health`
          fills this with the real fleet.
        """
        depth = self._batcher.depth()
        capacity = self._batcher.max_queue
        breakers: Dict[str, str] = {}
        if self.resilience is not None:
            breakers = {
                breaker.name: breaker.state
                for breaker in self.resilience.breakers()
            }
        active: Dict[str, Any] = {"name": self._name, "version": None,
                                  "stale": False}
        if self._registry is None:
            active = {
                "name": type(self._model).__name__,
                "version": "v0",
                "stale": False,
            }
        else:
            try:
                version, _model = self._resolve()
                stale_snapshot = self._last_good
                active["version"] = version
                active["stale"] = bool(
                    stale_snapshot is not None
                    and breakers.get("registry") not in (None, "closed")
                )
            except Exception:
                active["version"] = None
                active["stale"] = False
        closed_now = self.closed
        if closed_now:
            status = "closed"
        elif any(state != "closed" for state in breakers.values()):
            status = "degraded"
        elif active["version"] is None:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "closed": closed_now,
            "queue_depth": depth,
            "queue_capacity": capacity,
            "queue_saturation": depth / capacity if capacity else 0.0,
            "workers": self._batcher.workers,
            "cache": self.cache.stats(),
            "breakers": breakers,
            "active_model": active,
            "shards": [
                {
                    "shard": 0,
                    "alive": not closed_now,
                    "queue_depth": depth,
                    "active_version": active["version"],
                }
            ],
        }

    def ready(self) -> bool:
        """Readiness probe: can this replica answer a request right now?

        True when the server is open *and* a model is resolvable —
        either live or via the stale-snapshot fallback.  Load balancers
        should route only to ready replicas; :meth:`health` explains
        *why* one is not.
        """
        if self.closed:
            return False
        try:
            version, _model = self._resolve()
        except Exception:
            return False
        return version is not None

    def stats(self) -> Dict[str, Any]:
        """Derived serving stats on top of the raw metrics snapshot."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        batch_hist = self.metrics.histogram("serve/batch_size")
        latency_hist = self.metrics.histogram("serve/latency_seconds")
        stats: Dict[str, Any] = {
            "requests": counters.get("serve/requests_total", 0.0),
            "batches": counters.get("serve/batches_total", 0.0),
            "shed": counters.get("serve/shed_total", 0.0),
            "deadline_expired": counters.get(
                "serve/deadline_expired_total", 0.0
            ),
            "rescued": counters.get("serve/rescued_total", 0.0),
            "stale_model_served": counters.get(
                "resilience/stale_model_served_total", 0.0
            ),
            "retries": counters.get("resilience/retries_total", 0.0),
            "cache_hit_rate": self.cache.hit_rate,
            "mean_batch_size": (
                batch_hist.mean if batch_hist.count else 0.0
            ),
            "metrics": snapshot,
        }
        if latency_hist.count:
            stats["latency_p50_ms"] = latency_hist.quantile(0.5) * 1e3
            stats["latency_p99_ms"] = latency_hist.quantile(0.99) * 1e3
        return stats

    def __repr__(self) -> str:
        target = (
            f"registry:{self._name}" if self._registry is not None
            else type(self._model).__name__
        )
        return (
            f"ModelServer({target}, max_batch_size="
            f"{self._batcher.max_batch_size}, closed={self.closed})"
        )
