"""Versioned model registry with atomic hot-swap of the active version.

The GEMINI stack's storage substrate keeps every intermediate *dataset*
as an immutable commit; this module gives trained *models* the same
treatment.  A registry maps a model name to an append-only sequence of
checkpoint versions (``v0001``, ``v0002``, ...) plus a pointer to the
currently *active* one, which the serving layer resolves on every
dispatch.  Activation is atomic: readers either see the whole old
version or the whole new one, never a half-loaded mix, because the
swap replaces a single reference under a lock after the new model is
fully materialized.

Checkpoints are the ``.npz`` state dicts of :mod:`repro.nn.checkpoint`,
so any ``parameters()`` model — :class:`~repro.linear.logistic.LogisticRegression`,
:class:`~repro.nn.network.Network`, custom models — can be published.
Loading a version rebuilds the architecture from a registered factory
and copies the state dict in with ``strict=False``; the resulting
:class:`~repro.nn.checkpoint.LoadReport` is the compatibility check —
any missing/unexpected parameter names abort the load (naming the keys)
unless the caller opted into a partial load.

Two storage backends share one code path: ``root=<dir>`` persists
checkpoints and JSON manifests on disk (surviving restarts, shareable
across processes), ``root=None`` keeps state dicts in memory (tests,
ephemeral ``AnalyticsStack.serve()`` sessions).
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from ..nn.checkpoint import LoadReport, load_network_state_dict, network_state_dict
from ..telemetry.trace import add_event

if TYPE_CHECKING:  # import cycle: resilience imports nothing from here,
    # but keeping the hint lazy mirrors the optional wiring.
    from .resilience import FaultInjector

__all__ = ["CheckpointIncompatible", "ActiveModel", "ModelRegistry"]

ModelFactory = Callable[[], Any]


class CheckpointIncompatible(RuntimeError):
    """A checkpoint does not fit the architecture built by the factory."""

    def __init__(self, name: str, version: str, report: LoadReport) -> None:
        self.model_name = name
        self.version = version
        self.report = report
        super().__init__(
            f"checkpoint {name}:{version} is incompatible with the registered "
            f"architecture: missing={list(report.missing)}, "
            f"unexpected={list(report.unexpected)}"
        )


@dataclass(frozen=True)
class ActiveModel:
    """Immutable snapshot of the live version handed to readers.

    Holding the tuple (rather than re-resolving per row) is what gives a
    micro-batch its per-batch consistency: every row of one dispatch is
    scored by the same version even if a hot-swap lands mid-batch.
    """

    name: str
    version: str
    model: Any
    metadata: Dict[str, Any] = field(default_factory=dict)


def _default_factory_from_metadata(metadata: Dict[str, Any]) -> ModelFactory:
    """Rebuild well-known architectures from published metadata.

    Only the linear models record enough to self-describe; deep networks
    need an explicit registered factory.
    """
    kind = metadata.get("model_kind")
    if kind == "logistic":
        from ..linear.logistic import LogisticRegression

        n_features = int(metadata["n_features"])
        return lambda: LogisticRegression(n_features, weight_init_std=0.0)
    raise KeyError(
        f"no factory registered and model_kind={kind!r} is not "
        f"self-describing; call registry.register(name, factory) first"
    )


def _next_version_number(versions: List[str]) -> int:
    """Successor of the highest published version number.

    Derived from the *maximum* rather than the list length so that
    numbering keeps advancing monotonically after :meth:`ModelRegistry.prune`
    removes old entries — ``len + 1`` would collide with a survivor.
    """
    highest = 0
    for version in versions:
        try:
            highest = max(highest, int(version.lstrip("v")))
        except ValueError:
            continue
    return highest + 1


class ModelRegistry:
    """Load, version-track and hot-swap ``parameters()`` model checkpoints.

    Parameters
    ----------
    root:
        Directory for persistent storage (created on demand), or ``None``
        for an in-memory registry.
    fault_injector:
        Optional :class:`~repro.serve.resilience.FaultInjector` whose
        ``"registry_storage"`` site wraps every manifest read and
        checkpoint load — the seam chaos tests use to simulate flaky
        storage underneath an otherwise healthy registry.

    Typical lifecycle::

        registry = ModelRegistry("models/")
        registry.register("readmission", lambda: LogisticRegression(64))
        v1 = registry.publish("readmission", trained_model)   # activates v1
        ...
        v2 = registry.publish("readmission", retrained_model) # atomic swap
        active = registry.active("readmission")               # -> v2 snapshot
    """

    def __init__(
        self,
        root: Optional[str] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.root = root
        self.fault_injector = fault_injector
        self._lock = threading.RLock()
        self._factories: Dict[str, ModelFactory] = {}
        self._live: Dict[str, ActiveModel] = {}
        # Previous active version per model — the rollback target the
        # continuous-learning loop reactivates and prune() protects.
        self._last_known_good: Dict[str, str] = {}
        # In-memory backend: name -> version -> (state dict, metadata).
        self._memory: Dict[str, Dict[str, Any]] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)

    def _storage_chaos(
        self, fn: Callable[..., Any], *args: Any
    ) -> Any:
        """Route a storage access through the chaos seam, if wired."""
        if self.fault_injector is None:
            return fn(*args)
        return self.fault_injector.call("registry_storage", fn, *args)

    # ------------------------------------------------------------------
    # Architecture factories
    # ------------------------------------------------------------------
    def register(self, name: str, factory: ModelFactory) -> None:
        """Associate ``name`` with a zero-arg architecture builder."""
        with self._lock:
            self._factories[name] = factory

    def _factory_for(self, name: str, version: str) -> ModelFactory:
        with self._lock:
            factory = self._factories.get(name)
        if factory is not None:
            return factory
        return _default_factory_from_metadata(self.metadata(name, version))

    # ------------------------------------------------------------------
    # Storage backend helpers
    # ------------------------------------------------------------------
    def _model_dir(self, name: str) -> str:
        if self.root is None:
            raise RuntimeError(
                "in-memory registry has no model directory (root=None)"
            )
        return os.path.join(self.root, name)

    def _manifest_path(self, name: str) -> str:
        return os.path.join(self._model_dir(name), "MANIFEST.json")

    def _read_manifest(self, name: str) -> Dict[str, Any]:
        if self.root is None:
            with self._lock:
                entry = self._memory.get(name, {})
                return {
                    "versions": sorted(entry.get("versions", {})),
                    "active": entry.get("active"),
                }
        try:
            with open(self._manifest_path(name), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return {"versions": [], "active": None}

    def _write_manifest_locked(self, name: str, manifest: Dict[str, Any]) -> None:
        # *_locked: every caller must hold self._lock.
        if self.root is None:
            self._memory.setdefault(name, {"versions": {}})[
                "active"
            ] = manifest["active"]
            return
        # Atomic replace so a concurrent reader never sees a torn file.
        path = self._manifest_path(name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _load_state(self, name: str, version: str) -> Dict[str, np.ndarray]:
        if self.root is None:
            with self._lock:
                try:
                    state, _meta = self._memory[name]["versions"][version]
                except KeyError:
                    raise KeyError(
                        f"unknown checkpoint {name}:{version}"
                    ) from None
                return {k: v.copy() for k, v in state.items()}
        path = os.path.join(self._model_dir(name), f"{version}.npz")
        if not os.path.exists(path):
            raise KeyError(f"unknown checkpoint {name}:{version}")
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        model: Any,
        metadata: Optional[Dict[str, Any]] = None,
        activate: bool = True,
    ) -> str:
        """Snapshot ``model``'s parameters as the next version of ``name``.

        Returns the new version string (``v0001``, ``v0002``, ...).  With
        ``activate=True`` (default) the new version atomically becomes
        the one served.
        """
        state = network_state_dict(model)
        meta: Dict[str, Any] = {
            "created_unix": time.time(),
            "parameters": {k: list(v.shape) for k, v in sorted(state.items())},
            "n_parameters": int(sum(v.size for v in state.values())),
        }
        # Self-describing kinds let `load` work without a registered factory.
        n_features = getattr(model, "n_features", None)
        if type(model).__name__ == "LogisticRegression" and n_features:
            meta["model_kind"] = "logistic"
            meta["n_features"] = int(n_features)
        else:
            meta["model_kind"] = type(model).__name__
        if metadata:
            meta.update(metadata)

        with self._lock:
            manifest = self._read_manifest(name)
            version = f"v{_next_version_number(manifest['versions']):04d}"
            if self.root is None:
                slot = self._memory.setdefault(
                    name, {"versions": {}, "active": None}
                )
                slot["versions"][version] = (
                    {k: v.copy() for k, v in state.items()},
                    meta,
                )
            else:
                model_dir = self._model_dir(name)
                os.makedirs(model_dir, exist_ok=True)
                np.savez(os.path.join(model_dir, f"{version}.npz"), **state)
                with open(
                    os.path.join(model_dir, f"{version}.meta.json"),
                    "w",
                    encoding="utf-8",
                ) as fh:
                    json.dump(meta, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            manifest["versions"] = manifest["versions"] + [version]
            active = version if activate else manifest["active"]
            self._write_manifest_locked(name, {**manifest, "active": active})
            if activate:
                # The published model is already fully materialized, so no
                # factory round-trip is needed (models without a registered
                # factory — e.g. ad-hoc deep networks — can still be served).
                # A deep copy keeps the live snapshot isolated from any
                # further training the caller does on `model`.
                previous = self._live.get(name)
                if previous is not None and previous.version != version:
                    self._last_known_good[name] = previous.version
                self._live[name] = ActiveModel(
                    name, version, copy.deepcopy(model), dict(meta)
                )
        add_event(
            "model_published", model=name, version=version,
            activated=activate,
        )
        return version

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All model names known to this registry."""
        if self.root is None:
            with self._lock:
                return sorted(self._memory)
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
        )

    def versions(self, name: str) -> List[str]:
        """Published versions of ``name``, oldest first."""
        return list(self._read_manifest(name)["versions"])

    def metadata(self, name: str, version: str) -> Dict[str, Any]:
        """The metadata dict recorded when ``version`` was published."""
        if self.root is None:
            with self._lock:
                try:
                    _state, meta = self._memory[name]["versions"][version]
                except KeyError:
                    raise KeyError(
                        f"unknown checkpoint {name}:{version}"
                    ) from None
                return dict(meta)
        path = os.path.join(self._model_dir(name), f"{version}.meta.json")
        if not os.path.exists(path):
            raise KeyError(f"unknown checkpoint {name}:{version}")
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    # ------------------------------------------------------------------
    # Loading and activation
    # ------------------------------------------------------------------
    def load(
        self,
        name: str,
        version: Optional[str] = None,
        factory: Optional[ModelFactory] = None,
        allow_partial: bool = False,
    ) -> Any:
        """Materialize ``name:version`` as a fresh model instance.

        ``version=None`` means the latest published version.  The state
        dict is loaded leniently and the :class:`LoadReport` is checked:
        a non-clean report raises :class:`CheckpointIncompatible` naming
        the offending keys unless ``allow_partial=True``.
        """
        if version is None:
            published = self.versions(name)
            if not published:
                raise KeyError(f"no versions published for model {name!r}")
            version = published[-1]
        state = self._storage_chaos(self._load_state, name, version)
        build = factory or self._factory_for(name, version)
        model = build()
        report = load_network_state_dict(model, state, strict=False)
        if not allow_partial and not report.clean:
            raise CheckpointIncompatible(name, version, report)
        return model

    def activate(self, name: str, version: str) -> ActiveModel:
        """Atomically make ``version`` the served one.

        The new model is fully loaded *before* the swap; concurrent
        :meth:`active` readers see either the previous snapshot or the
        new one, never an intermediate state.
        """
        model = self.load(name, version)
        snapshot = ActiveModel(name, version, model, self.metadata(name, version))
        with self._lock:
            manifest = self._read_manifest(name)
            if version not in manifest["versions"]:
                raise KeyError(f"unknown checkpoint {name}:{version}")
            self._write_manifest_locked(name, {**manifest, "active": version})
            previous = self._live.get(name)
            if previous is not None and previous.version != version:
                self._last_known_good[name] = previous.version
            self._live[name] = snapshot
        add_event("model_activated", model=name, version=version)
        return snapshot

    def last_known_good(self, name: str) -> Optional[str]:
        """Version that was live before the current one (rollback target)."""
        with self._lock:
            return self._last_known_good.get(name)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(
        self,
        name: str,
        keep_last: int,
        protect: Optional[List[str]] = None,
    ) -> List[str]:
        """Delete old versions of ``name``, keeping the newest ``keep_last``.

        Continuous publishing makes version directories grow without
        bound; this trims the history while *never* removing the active
        version, the last-known-good version (the loop's rollback
        target), or anything in ``protect``.  Protected versions do not
        count against ``keep_last``.  Returns the versions removed,
        oldest first.
        """
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        removed: List[str] = []
        with self._lock:
            manifest = self._read_manifest(name)
            versions = list(manifest["versions"])
            protected = {
                version
                for version in (
                    manifest.get("active"),
                    self._last_known_good.get(name),
                    *(protect or ()),
                )
                if version is not None
            }
            prunable = [v for v in versions if v not in protected]
            removed = prunable[: max(0, len(prunable) - keep_last)]
            if not removed:
                return []
            survivors = [v for v in versions if v not in removed]
            if self.root is None:
                slot = self._memory.get(name, {})
                for version in removed:
                    slot.get("versions", {}).pop(version, None)
            else:
                model_dir = self._model_dir(name)
                for version in removed:
                    for suffix in (".npz", ".meta.json"):
                        try:
                            os.remove(os.path.join(model_dir, version + suffix))
                        except FileNotFoundError:
                            pass
            self._write_manifest_locked(
                name, {**manifest, "versions": survivors}
            )
        add_event(
            "registry_pruned", model=name, removed=list(removed),
            kept=len(survivors),
        )
        return removed

    def active_version(self, name: str) -> Optional[str]:
        """Currently active version string (``None`` when nothing served)."""
        with self._lock:
            live = self._live.get(name)
            if live is not None:
                return live.version
        return self._read_manifest(name).get("active")

    def active(self, name: str) -> ActiveModel:
        """Snapshot of the live model (loading it on first access)."""
        with self._lock:
            live = self._live.get(name)
            if live is not None:
                return live
        # Not yet materialized in this process: resolve from the manifest
        # (e.g. a fresh process pointed at an existing on-disk registry).
        version = self._storage_chaos(self._read_manifest, name).get("active")
        if version is None:
            raise KeyError(f"model {name!r} has no active version")
        return self.activate(name, version)

    def __repr__(self) -> str:
        backend = self.root if self.root is not None else "<memory>"
        return f"ModelRegistry(root={backend!r}, models={self.names()})"
