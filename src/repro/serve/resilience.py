"""Resilience layer: fault injection, retry/backoff, circuit breaking.

PR 3 gave the serving path deadlines and backpressure shedding — the
*happy-path* degradations.  This module supplies the systematic failure
handling the GEMINI deployment setting (Sec. 6: a hospital stack that
must survive slow models, full queues and flaky storage) actually
requires, in three composable pieces:

:class:`FaultInjector`
    A seeded chaos harness.  Each named *site* (``"registry"``,
    ``"model"``, ``"cache"``) carries a :class:`FaultProfile` of
    error / latency / corruption rates; wrapping a call through
    :meth:`FaultInjector.call` then raises :class:`InjectedFault`,
    sleeps, or perturbs values with exactly those probabilities — drawn
    from one seeded :mod:`repro.rng` stream, so a chaos run is
    replayable like every other experiment in this repository.
:class:`RetryPolicy`
    Exponential backoff with **full jitter** (delay ~ U[0, min(cap,
    base·2^attempt)] — the AWS-recommended variant that avoids retry
    synchronization) plus an optional per-call *deadline budget*:
    once the budget is spent, the last error propagates instead of
    sleeping further.
:class:`CircuitBreaker`
    The classic closed → open → half-open machine over a sliding
    outcome window.  While open, calls fail fast with
    :class:`BreakerOpen` (the caller's cue to degrade, e.g. serve the
    last-known-good model snapshot); after ``reset_timeout`` a limited
    number of half-open probes decide between re-closing and
    re-opening.  Every transition is counted and the current state is
    exported as a gauge on the shared
    :class:`~repro.telemetry.metrics.MetricsRegistry`.

:class:`ResiliencePolicy` bundles the pieces into the per-server
decision table consumed by :class:`~repro.serve.server.ModelServer`
(see ``docs/RUNBOOK.md`` for the operator-facing degradation matrix).

All sleeping is injectable (tests pass a recording fake), all timing
uses ``time.monotonic`` (scheduling, not measurement — the telemetry
clock stays the only measuring clock), and all randomness is seeded.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Type

from collections import deque

import numpy as np

from .. import rng as repro_rng
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import add_event

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "FaultInjector",
    "FaultProfile",
    "InjectedFault",
    "ResiliencePolicy",
    "RetryPolicy",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
]

SleepFn = Callable[[float], None]
ClockFn = Callable[[], float]

#: Gauge encoding of breaker states (``resilience/breaker/<name>/state``).
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_HALF_OPEN: "half_open",
    BREAKER_OPEN: "open",
}


class InjectedFault(RuntimeError):
    """A synthetic failure raised by :class:`FaultInjector`.

    Carries the ``site`` it was injected at so tests and the rescue
    paths can tell chaos apart from organic errors.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected fault at site {site!r}")


class BreakerOpen(RuntimeError):
    """Raised by :meth:`CircuitBreaker.call` while the breaker is open."""

    def __init__(self, name: str, retry_after: float) -> None:
        self.breaker_name = name
        self.retry_after = retry_after
        super().__init__(
            f"circuit breaker {name!r} is open "
            f"(retry in ~{retry_after:.3f}s)"
        )


@dataclass(frozen=True)
class FaultProfile:
    """Per-site chaos rates consumed by :class:`FaultInjector`.

    Parameters
    ----------
    error_rate:
        Probability that a wrapped call raises :class:`InjectedFault`
        *instead of* running.
    latency_rate:
        Probability that a wrapped call is delayed by
        ``latency_seconds`` before running.
    latency_seconds:
        Injected delay for latency faults.
    corruption_rate:
        Probability that :meth:`FaultInjector.corrupt` perturbs a value
        (used on the cache-write path, where checksums detect it).
    """

    error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.05
    corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_rate", "corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}"
            )

    @property
    def active(self) -> bool:
        """Whether this profile can inject anything at all."""
        return (
            self.error_rate > 0
            or self.latency_rate > 0
            or self.corruption_rate > 0
        )


class FaultInjector:
    """Seeded chaos harness wrapping external-facing serving calls.

    Parameters
    ----------
    profiles:
        ``{site: FaultProfile}`` table; sites not listed use
        ``default`` (which defaults to "inject nothing").
    default:
        Profile applied to unlisted sites.
    seed:
        Root of the injector's private :mod:`repro.rng` stream; two
        injectors built with the same seed replay the same fault
        sequence for the same call order.
    sleep:
        Injectable delay function (tests substitute a recording fake
        so latency faults are asserted, not slept).
    metrics:
        Registry receiving ``resilience/faults/<site>/<kind>_total``
        counters; bound late by :meth:`bind_metrics` when ``None``.
    """

    def __init__(
        self,
        profiles: Optional[Dict[str, FaultProfile]] = None,
        default: Optional[FaultProfile] = None,
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
        sleep: SleepFn = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profiles: Dict[str, FaultProfile] = dict(profiles or {})
        self.default = default if default is not None else FaultProfile()
        self._rng = repro_rng.spawn(seed, 0x5EED)
        self._rng_lock = threading.Lock()
        self._sleep = sleep
        self.metrics = metrics

    @classmethod
    def chaos(
        cls,
        error_rate: float = 0.1,
        latency_rate: float = 0.1,
        latency_seconds: float = 0.05,
        corruption_rate: float = 0.1,
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
        sleep: SleepFn = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "FaultInjector":
        """The canonical ``--chaos`` configuration.

        Errors and latency spikes hit the model and registry sites;
        corruption hits the cache-write site (where checksums make it
        detectable instead of silently wrong).
        """
        return cls(
            profiles={
                "model": FaultProfile(
                    error_rate=error_rate,
                    latency_rate=latency_rate,
                    latency_seconds=latency_seconds,
                ),
                "registry": FaultProfile(
                    error_rate=error_rate,
                    latency_rate=latency_rate,
                    latency_seconds=latency_seconds,
                ),
                "cache": FaultProfile(corruption_rate=corruption_rate),
            },
            seed=seed,
            sleep=sleep,
            metrics=metrics,
        )

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Adopt ``metrics`` unless a registry was already injected."""
        if self.metrics is None:
            self.metrics = metrics

    def profile(self, site: str) -> FaultProfile:
        """The effective :class:`FaultProfile` for ``site``."""
        return self.profiles.get(site, self.default)

    def _draw(self) -> float:
        with self._rng_lock:
            return float(self._rng.random())

    def _count(self, site: str, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"resilience/faults/{site}/{kind}_total"
            ).inc()

    def call(self, site: str, fn: Callable[..., Any], *args: Any,
             **kwargs: Any) -> Any:
        """Run ``fn`` through the chaos profile of ``site``.

        Ordering is latency-then-error: a call can be both delayed and
        failed, like a genuinely overloaded dependency.
        """
        prof = self.profile(site)
        if prof.active:
            if prof.latency_rate > 0 and self._draw() < prof.latency_rate:
                self._count(site, "latency")
                add_event(
                    "fault_injected", site=site, kind="latency",
                    seconds=prof.latency_seconds,
                )
                self._sleep(prof.latency_seconds)
            if prof.error_rate > 0 and self._draw() < prof.error_rate:
                self._count(site, "error")
                add_event("fault_injected", site=site, kind="error")
                raise InjectedFault(site)
        return fn(*args, **kwargs)

    def corrupt(self, site: str, value: Any) -> Any:
        """Maybe return a corrupted copy of ``value`` (cache-write chaos).

        Numeric payloads are bit-perturbed (negated and nudged) so a
        content checksum no longer matches; non-numeric payloads are
        replaced with a sentinel string.  Callers must only feed this
        into paths with integrity checking — the point is *detectable*
        corruption.
        """
        prof = self.profile(site)
        if prof.corruption_rate <= 0 or self._draw() >= prof.corruption_rate:
            return value
        self._count(site, "corruption")
        arr = np.asarray(value)
        if arr.dtype.kind in "fiub":
            return (-np.asarray(arr, dtype=np.float64) - 1.5).astype(
                np.float64
            )
        return "<corrupted>"


class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first call (1 disables retrying).
    base_delay, max_delay:
        Backoff grows as ``base_delay * 2**attempt`` capped at
        ``max_delay``; the actual sleep is uniform on ``[0, cap]``
        ("full jitter"), decorrelating competing retriers.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    seed:
        Seeds the private jitter stream (replayable backoff schedules).
    sleep, clock:
        Injectable delay / monotonic-time functions for tests.
    metrics:
        Registry receiving ``resilience/retries_total`` and
        ``resilience/retry_exhausted_total``.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.005,
        max_delay: float = 0.05,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
        sleep: SleepFn = time.sleep,
        clock: ClockFn = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.retry_on = retry_on
        self._rng = repro_rng.spawn(seed, 0xB0FF)
        self._rng_lock = threading.Lock()
        self._sleep = sleep
        self._clock = clock
        self.metrics = metrics

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Adopt ``metrics`` unless a registry was already injected."""
        if self.metrics is None:
            self.metrics = metrics

    def backoff_cap(self, attempt: int) -> float:
        """The jitter interval's upper bound after failed attempt N (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.max_delay, self.base_delay * (2.0 ** attempt))

    def _jittered(self, attempt: int) -> float:
        cap = self.backoff_cap(attempt)
        if cap <= 0.0:
            return 0.0
        with self._rng_lock:
            return float(self._rng.uniform(0.0, cap))

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        budget: Optional[float] = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``fn`` with retries; returns its first successful result.

        ``budget`` is a wall-clock allowance in seconds for the *whole*
        affair (attempts plus backoff sleeps): when the next backoff
        would overrun it, the last error propagates immediately — the
        per-request deadline machinery upstream stays meaningful.
        """
        deadline = None if budget is None else self._clock() + budget
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self._jittered(attempt)
                if deadline is not None and self._clock() + delay > deadline:
                    break
                add_event(
                    "retry",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                    delay=delay,
                )
                if self.metrics is not None:
                    self.metrics.counter("resilience/retries_total").inc()
                if delay > 0.0:
                    self._sleep(delay)
        add_event(
            "retry_exhausted",
            attempts=self.max_attempts,
            error=type(last).__name__ if last is not None else "unknown",
        )
        if self.metrics is not None:
            self.metrics.counter("resilience/retry_exhausted_total").inc()
        if last is None:  # pragma: no cover - loop always runs once
            raise RuntimeError("retry loop finished without an attempt")
        raise last


class CircuitBreaker:
    """Sliding-window circuit breaker with telemetry-visible transitions.

    Parameters
    ----------
    name:
        Instrument namespace: state lives in the gauge
        ``resilience/breaker/<name>/state`` (0 closed, 1 half-open,
        2 open) and transitions in
        ``resilience/breaker/<name>/transitions_total`` /
        ``opened_total``.
    window:
        Number of most-recent outcomes considered.
    failure_threshold:
        Failure *rate* over the window that trips the breaker open.
    min_calls:
        Outcomes required in the window before the rate is evaluated
        (prevents one early failure from reading as 100%).
    reset_timeout:
        Seconds to stay open before allowing half-open probes.
    half_open_probes:
        Consecutive successful probes required to re-close; any probe
        failure re-opens immediately.
    clock:
        Injectable monotonic clock (scheduling, not measurement).
    metrics:
        Shared registry; bound late by :meth:`bind_metrics` when
        ``None``.
    """

    def __init__(
        self,
        name: str = "default",
        window: int = 32,
        failure_threshold: float = 0.5,
        min_calls: int = 8,
        reset_timeout: float = 1.0,
        half_open_probes: int = 2,
        clock: ClockFn = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if reset_timeout < 0:
            raise ValueError(
                f"reset_timeout must be >= 0, got {reset_timeout}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = name
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_calls = int(min_calls)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0
        self._probe_successes = 0
        self._probes_in_flight = 0

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Adopt ``metrics`` unless a registry was already injected."""
        if self.metrics is None:
            self.metrics = metrics
        self._export_state_locked_free()

    # -- state machine -------------------------------------------------
    def _transition_locked(self, new_state: int) -> None:
        # *_locked: every caller must hold self._lock.
        if new_state == self._state:
            return
        add_event(
            "breaker_transition",
            breaker=self.name,
            from_state=_STATE_NAMES[self._state],
            to_state=_STATE_NAMES[new_state],
        )
        self._state = new_state
        if new_state == BREAKER_OPEN:
            self._opened_at = self._clock()
            self._outcomes.clear()
        if new_state == BREAKER_HALF_OPEN:
            self._probe_successes = 0
            self._probes_in_flight = 0
        if new_state == BREAKER_CLOSED:
            self._outcomes.clear()
        if self.metrics is not None:
            base = f"resilience/breaker/{self.name}"
            self.metrics.counter(f"{base}/transitions_total").inc()
            if new_state == BREAKER_OPEN:
                self.metrics.counter(f"{base}/opened_total").inc()
        self._export_state_locked_free()

    def _export_state_locked_free(self) -> None:
        # Gauge writes are single assignments; safe with or without the
        # lock held (named *_locked_free to record that).
        if self.metrics is not None:
            self.metrics.gauge(
                f"resilience/breaker/{self.name}/state"
            ).set(float(self._state))

    @property
    def state(self) -> str:
        """Current state name: ``closed`` / ``open`` / ``half_open``."""
        with self._lock:
            return _STATE_NAMES[self._state]

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(0.0, self.reset_timeout - elapsed)

    def allow(self) -> bool:
        """Whether a call may proceed right now (may flip open → half-open)."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._transition_locked(BREAKER_HALF_OPEN)
            # Half-open: admit a bounded number of concurrent probes.
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record(self, ok: bool) -> None:
        """Feed one call outcome into the window / probe accounting."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if not ok:
                    self._transition_locked(BREAKER_OPEN)
                    return
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition_locked(BREAKER_CLOSED)
                return
            if self._state == BREAKER_OPEN:
                return
            self._outcomes.append(ok)
            if len(self._outcomes) < self.min_calls:
                return
            failures = sum(1 for outcome in self._outcomes if not outcome)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._transition_locked(BREAKER_OPEN)

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Gate ``fn`` through the breaker, recording its outcome.

        Raises :class:`BreakerOpen` without calling ``fn`` when the
        breaker rejects the call.
        """
        if not self.allow():
            raise BreakerOpen(self.name, self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record(False)
            raise
        self.record(True)
        return result


@dataclass
class ResiliencePolicy:
    """The per-server failure-handling decision table.

    Attributes
    ----------
    retry:
        Applied to model dispatch (batched *and* inline) and registry
        loads.
    registry_breaker:
        Guards registry resolution; while open, the server falls back
        to its last-known-good :class:`~repro.serve.registry.ActiveModel`
        snapshot instead of touching the registry.
    rescue_batch_errors:
        When True, a request whose coalesced batch failed (after
        retries) is re-scored on the caller's thread via the inline
        path instead of surfacing the batch error — the batch blast
        radius shrinks to the genuinely poisoned rows.
    cache_integrity:
        When True, the server's :class:`~repro.serve.cache.PredictionCache`
        checksums entries and treats mismatches as misses (the
        cache-poisoning degrade decision).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    registry_breaker: CircuitBreaker = field(
        default_factory=lambda: CircuitBreaker(name="registry")
    )
    rescue_batch_errors: bool = True
    cache_integrity: bool = True

    @classmethod
    def default(
        cls,
        metrics: Optional[MetricsRegistry] = None,
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
    ) -> "ResiliencePolicy":
        """Production defaults documented in ``docs/RUNBOOK.md``."""
        policy = cls(
            retry=RetryPolicy(
                max_attempts=4,
                base_delay=0.005,
                max_delay=0.05,
                seed=seed,
            ),
            registry_breaker=CircuitBreaker(
                name="registry",
                window=32,
                failure_threshold=0.5,
                min_calls=8,
                reset_timeout=0.5,
                half_open_probes=2,
            ),
        )
        if metrics is not None:
            policy.bind_metrics(metrics)
        return policy

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Point every component at the server's shared registry."""
        self.retry.bind_metrics(metrics)
        self.registry_breaker.bind_metrics(metrics)

    def breakers(self) -> List[CircuitBreaker]:
        """Every breaker owned by this policy (for health reporting)."""
        return [self.registry_breaker]
