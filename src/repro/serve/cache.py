"""LRU prediction cache keyed on feature-row content hashes.

Live analytics traffic is heavily repetitive — the same patient row is
scored by several dashboards, retries re-send identical queries — so
the serving layer memoizes per-row results.  Keys cover the model
*version* as well as the row bytes and the requested method, which is
what makes the cache safe under the registry's hot-swap: activating a
new version changes every key, so stale predictions can never be
served (no explicit invalidation needed).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

import numpy as np

__all__ = ["PredictionCache"]


class PredictionCache:
    """Thread-safe LRU cache of single-row prediction results.

    Parameters
    ----------
    maxsize:
        Maximum number of cached rows; ``0`` disables the cache (every
        lookup misses, nothing is stored).

    Hit/miss totals are kept here as plain integers; the server mirrors
    them into its :class:`~repro.telemetry.metrics.MetricsRegistry`
    counters so they show up in snapshots alongside latency and queue
    metrics.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[bytes, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(method: str, version: str, row: np.ndarray) -> bytes:
        """Digest of ``(method, model version, row dtype/shape/bytes)``."""
        row = np.ascontiguousarray(row)
        digest = hashlib.sha1()
        digest.update(method.encode())
        digest.update(b"\x00")
        digest.update(version.encode())
        digest.update(b"\x00")
        digest.update(str(row.dtype).encode())
        digest.update(str(row.shape).encode())
        digest.update(row.tobytes())
        return digest.digest()

    def get(self, key: bytes) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, self._entries[key]
            self.misses += 1
            return False, None

    def put(self, key: bytes, value: Any) -> None:
        """Insert/refresh ``key``, evicting the least recent beyond capacity."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"PredictionCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
