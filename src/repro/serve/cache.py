"""LRU prediction cache keyed on feature-row content hashes.

Live analytics traffic is heavily repetitive — the same patient row is
scored by several dashboards, retries re-send identical queries — so
the serving layer memoizes per-row results.  Keys cover the model
*version* as well as the row bytes and the requested method, which is
what makes the cache safe under the registry's hot-swap: activating a
new version changes every key, so stale predictions can never be
served (no explicit invalidation needed).

Two resilience features ride on top of the plain LRU:

- **full accounting** — hits, misses, inserts, evictions and detected
  corruptions are counted under the same lock that guards the entries,
  so ``stats()`` is a consistent snapshot even under concurrent
  traffic (``inserts - evictions == size`` always holds);
- **optional integrity checking** — with ``integrity=True`` every
  entry stores a content checksum at ``put`` time and re-verifies it at
  ``get`` time; a mismatch (a poisoned or bit-rotted entry) is evicted
  and reported as a miss, so corruption degrades to one recompute
  instead of a wrong answer.  This is the detection side of the
  :class:`~repro.serve.resilience.FaultInjector`'s cache-corruption
  chaos.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..telemetry.trace import add_event

__all__ = ["PredictionCache"]


class PredictionCache:
    """Thread-safe LRU cache of single-row prediction results.

    Parameters
    ----------
    maxsize:
        Maximum number of cached rows; ``0`` disables the cache (every
        lookup misses, nothing is stored).
    integrity:
        When True, entries carry a content checksum verified on every
        hit; mismatching entries are dropped and counted in
        ``corruptions`` instead of being served.

    Hit/miss totals are kept here as plain integers; the server mirrors
    them into its :class:`~repro.telemetry.metrics.MetricsRegistry`
    counters so they show up in snapshots alongside latency and queue
    metrics.
    """

    def __init__(self, maxsize: int = 1024, integrity: bool = False) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self.integrity = bool(integrity)
        # key -> (value, checksum-or-None)
        self._entries: "OrderedDict[bytes, Tuple[Any, Optional[bytes]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.corruptions = 0

    @staticmethod
    def make_key(method: str, version: str, row: np.ndarray) -> bytes:
        """Digest of ``(method, model version, row dtype/shape/bytes)``."""
        row = np.ascontiguousarray(row)
        digest = hashlib.sha1()
        digest.update(method.encode())
        digest.update(b"\x00")
        digest.update(version.encode())
        digest.update(b"\x00")
        digest.update(str(row.dtype).encode())
        digest.update(str(row.shape).encode())
        digest.update(row.tobytes())
        return digest.digest()

    @staticmethod
    def fingerprint(value: Any) -> bytes:
        """Content checksum of a cached value (integrity mode).

        Numeric scalars/arrays hash their dtype, shape and raw bytes;
        anything that cannot be viewed as contiguous bytes falls back to
        hashing its ``repr``.
        """
        digest = hashlib.sha1()
        try:
            arr = np.ascontiguousarray(value)
            if arr.dtype.hasobject:
                raise TypeError("object arrays have no stable bytes")
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        except (TypeError, ValueError):
            digest.update(repr(value).encode())
        return digest.digest()

    def get(self, key: bytes) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)``; a hit refreshes the entry's recency.

        In integrity mode a checksum mismatch evicts the entry and
        reports a miss (counted in ``corruptions``) — a poisoned cache
        line costs one recompute, never a wrong answer.
        """
        with self._lock:
            if key in self._entries:
                value, checksum = self._entries[key]
                if checksum is not None and (
                    PredictionCache.fingerprint(value) != checksum
                ):
                    del self._entries[key]
                    self.corruptions += 1
                    self.evictions += 1
                    self.misses += 1
                    add_event("cache_corruption_detected")
                    return False, None
                self._entries.move_to_end(key)
                self.hits += 1
                return True, value
            self.misses += 1
            return False, None

    def put(self, key: bytes, value: Any) -> None:
        """Insert/refresh ``key``, evicting the least recent beyond capacity."""
        checksum = (
            PredictionCache.fingerprint(value) if self.integrity else None
        )
        if self.maxsize == 0:
            return
        with self._lock:
            if key not in self._entries:
                self.inserts += 1
            self._entries[key] = (value, checksum)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put_poisoned(self, key: bytes, value: Any, original: Any) -> None:
        """Store ``value`` under the checksum of ``original`` (chaos seam).

        This is how the :class:`~repro.serve.resilience.FaultInjector`
        plants *detectable* corruption: the entry's bytes are the
        corrupted ``value`` but its checksum describes ``original``, so
        the next :meth:`get` notices the mismatch and evicts instead of
        serving a wrong answer.  Outside integrity mode this is a plain
        :meth:`put` of the corrupted value — silent corruption, which is
        exactly the failure mode integrity mode exists to remove.
        """
        if self.maxsize == 0:
            return
        checksum = (
            PredictionCache.fingerprint(original) if self.integrity else None
        )
        with self._lock:
            if key not in self._entries:
                self.inserts += 1
            self._entries[key] = (value, checksum)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet).

        ``hits`` and ``misses`` are read together *under the entry
        lock*: a field-by-field read racing a concurrent ``get`` could
        pair a fresh ``hits`` with a stale ``misses`` (or vice versa)
        and report a rate that corresponds to no actual moment — the
        aggregation bug the concurrent-stats test pins down.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Consistent snapshot of size and all counters.

        Taken under the entry lock, so the invariant
        ``inserts - evictions == size`` holds in every snapshot no
        matter how many threads are mid-``get``/``put``.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": hits,
                "misses": misses,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
                "hit_rate": hits / total if total else 0.0,
                "integrity": self.integrity,
            }

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self.evictions += len(self._entries)
            self._entries.clear()

    def __repr__(self) -> str:
        snapshot = self.stats()
        return (
            f"PredictionCache(size={snapshot['size']}/{self.maxsize}, "
            f"hits={snapshot['hits']}, misses={snapshot['misses']})"
        )
