"""Shard worker process: an isolated model snapshot scoring slab batches.

Each worker is a separate OS process, which is the whole point of the
sharded tier: NumPy model dispatch in a thread pool serializes on the
GIL, but N processes each holding an immutable model snapshot score N
batches genuinely concurrently.  A worker's loop is deliberately tiny:

1. block on the control pipe for one framed command;
2. ``score`` — view the request slab (zero copies in), call the model
   method on the ``(n_rows, d)`` view, write the flattened result into
   the response slab (zero pickling out), ack with shape/dtype/timing
   and the version it scored with;
3. ``swap`` — deserialize a state-dict blob into its model *between*
   batches (commands are processed strictly in order, so a swap can
   never tear a batch) and ack the new version;
4. ``ping`` / ``stop`` — status probe / clean exit.

The worker applies state via
:func:`repro.nn.checkpoint.load_network_state_dict`, the same lenient
loader the registry uses, so hot-swap semantics match the
single-process server exactly.  It never touches the registry, disk or
the network: the supervisor ships fully materialized state blobs, which
keeps the failure domain of a flaky registry out of the scoring path.

Workers are forked before the parent starts any serving threads (see
:class:`~repro.serve.sharding.supervisor.ShardSupervisor`), inherit the
slab mappings and pipe ends directly, and ignore SIGINT — shutdown is
the parent's ``stop`` command (or, under chaos drills, SIGKILL).
"""

from __future__ import annotations

import io
import signal
import time
from multiprocessing import connection
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...nn.checkpoint import load_network_state_dict, network_state_dict

__all__ = ["state_blob", "apply_state_blob", "shard_worker_main"]


def state_blob(model: Any) -> bytes:
    """Serialize ``model``'s parameters to a compact ``.npz`` byte blob."""
    buffer = io.BytesIO()
    np.savez(buffer, **network_state_dict(model))
    return buffer.getvalue()


def apply_state_blob(model: Any, blob: bytes) -> None:
    """Load a :func:`state_blob` payload into ``model`` in place."""
    with np.load(io.BytesIO(blob)) as archive:
        state = {key: archive[key] for key in archive.files}
    load_network_state_dict(model, state, strict=False)


def _score_once(
    model: Any,
    method: str,
    batch: np.ndarray,
    response_slab: np.ndarray,
) -> Tuple[Tuple[int, ...], str, float]:
    """One model call; writes results into the slab, returns the ack fields."""
    bound = getattr(model, method, None)
    if not callable(bound):
        raise AttributeError(
            f"model {type(model).__name__} does not support {method!r}"
        )
    started = time.monotonic()
    out = np.asarray(bound(batch))
    elapsed = time.monotonic() - started
    n_rows = batch.shape[0]
    flat = out.reshape(n_rows, -1)
    width = flat.shape[1]
    if width > response_slab.shape[1]:
        raise ValueError(
            f"{method} produced {width} values/row but the response slab "
            f"holds {response_slab.shape[1]}"
        )
    response_slab[:n_rows, :width] = flat
    return tuple(out.shape[1:]), out.dtype.str, elapsed


def shard_worker_main(
    shard_id: int,
    conn: connection.Connection,
    request_slab: np.ndarray,
    response_slab: np.ndarray,
    model: Any,
    version: str,
    initial_blob: Optional[bytes] = None,
) -> None:
    """Run one shard worker until ``stop`` / pipe loss (process target).

    ``model`` arrives through fork inheritance (no pickling); a respawn
    passes ``initial_blob`` so the fresh process starts from the
    last-known-good snapshot rather than the original fork image.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if initial_blob is not None:
        apply_state_blob(model, initial_blob)
    processed = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "score":
            _kind, batch_id, method, n_rows = message
            try:
                out_shape, dtype_str, elapsed = _score_once(
                    model, method, request_slab[:n_rows], response_slab
                )
            except Exception as exc:
                reply: Tuple[Any, ...] = (
                    "error", batch_id, type(exc).__name__, str(exc), version,
                )
            else:
                processed += n_rows
                reply = ("ok", batch_id, out_shape, dtype_str, elapsed,
                         version)
        elif kind == "swap":
            _kind, new_version, blob = message
            try:
                apply_state_blob(model, blob)
            except Exception as exc:
                reply = ("error", -1, type(exc).__name__, str(exc), version)
            else:
                version = new_version
                reply = ("swapped", version)
        elif kind == "ping":
            status: Dict[str, Any] = {
                "shard": shard_id,
                "version": version,
                "processed": processed,
                "model": type(model).__name__,
            }
            reply = ("pong", status)
        else:
            reply = ("error", -1, "ValueError",
                     f"unknown command {kind!r}", version)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
