"""Shared-memory request/response channel between server and one shard.

Row data never crosses the process boundary through pickle.  Each shard
owns two fixed-size float64 slabs allocated from anonymous shared
memory (``multiprocessing.sharedctypes.RawArray`` — plain ``mmap``
pages both sides view as NumPy arrays):

- a **request slab** of ``slots x n_features`` the parent writes
  coalesced batch rows into, and
- a **response slab** of ``slots x out_width`` the worker writes
  per-row results into.

What *does* cross the pipe is a few dozen bytes of framing per batch:
``("score", batch_id, method, n_rows)`` one way and an ack carrying the
output shape/dtype, worker-side timing and the worker's current model
version the other.  One batch per shard is in flight at a time — the
channel's parent-side lock enforces it — so the slabs need no slot
allocator and replies always match the command that is waiting.  That
single-flight discipline is not a throughput limit: cross-shard
parallelism comes from having N channels, and within a shard the worker
is a single CPU-bound process anyway.

Worker death is detected, not assumed: every receive polls with a short
interval and consults a liveness probe (the supervisor wires in
``Process.is_alive``), so a SIGKILLed worker surfaces as
:class:`ShardDead` within ~one poll interval instead of a hung request.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from multiprocessing import connection, sharedctypes
from typing import Any, Callable, Optional, Tuple

import numpy as np

__all__ = ["ShardDead", "ShardWorkerError", "ScoreResult", "ShardChannel"]

#: Seconds between liveness polls while waiting on a worker reply.
POLL_INTERVAL = 0.02

LivenessFn = Callable[[], bool]


class ShardDead(RuntimeError):
    """The shard worker died (or stopped answering) mid-conversation.

    The dispatch path treats this like any other batch failure: the
    affected rows are rescued inline on the parent's model snapshot
    while the supervisor respawns the worker — zero requests dropped.
    """

    def __init__(self, shard_id: int, detail: str) -> None:
        self.shard_id = shard_id
        super().__init__(f"shard {shard_id}: {detail}")


class ShardWorkerError(RuntimeError):
    """The worker's model call raised; carries the remote error text."""

    def __init__(self, shard_id: int, exc_type: str, detail: str) -> None:
        self.shard_id = shard_id
        self.remote_type = exc_type
        super().__init__(f"shard {shard_id}: {exc_type}: {detail}")


@dataclass(frozen=True)
class ScoreResult:
    """One scored batch as read back from the response slab.

    ``values`` is the dense ``(n_rows, width)`` float64 copy;
    ``out_shape`` / ``dtype_str`` restore each row's original result
    shape and dtype; ``version`` is the model version the worker
    actually scored with (authoritative for cache keys — the parent's
    idea of the version can lag a hot-swap by one in-flight batch).
    """

    values: np.ndarray
    out_shape: Tuple[int, ...]
    dtype_str: str
    worker_seconds: float
    version: str

    def row_value(self, index: int) -> Any:
        """Reconstruct row ``index``'s result exactly as the model made it.

        Scalars come back as NumPy scalars (matching ``list(model_out)``
        on the single-process path); vector outputs are reshaped and
        cast back to the model's dtype.  float64 and int64 round-trip
        through the slab bit-exactly, which is what keeps sharded labels
        identical to the single-process path.
        """
        width = int(np.prod(self.out_shape)) if self.out_shape else 1
        flat = self.values[index, :width]
        dtype = np.dtype(self.dtype_str)
        if not self.out_shape:
            return flat.astype(dtype, copy=False)[0]
        return flat.reshape(self.out_shape).astype(dtype, copy=False)


class ShardChannel:
    """Parent-side endpoint of one shard's slab + pipe conversation.

    Parameters
    ----------
    shard_id:
        Ring position (also the metrics label).
    slots:
        Row capacity of the slabs — the shard's ``max_batch_size``.
    n_features:
        Row width of the request slab.
    out_width:
        Row width of the response slab (max output elements per row
        over all supported methods, probed by the server at startup).
    clock:
        Injectable monotonic clock (tests substitute a fake to exercise
        timeouts without sleeping).
    """

    def __init__(
        self,
        shard_id: int,
        slots: int,
        n_features: int,
        out_width: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if out_width < 1:
            raise ValueError(f"out_width must be >= 1, got {out_width}")
        self.shard_id = int(shard_id)
        self.slots = int(slots)
        self.n_features = int(n_features)
        self.out_width = int(out_width)
        self._clock = clock
        self._req_raw = sharedctypes.RawArray("d", self.slots * self.n_features)
        self._resp_raw = sharedctypes.RawArray("d", self.slots * self.out_width)
        self.request_slab = np.frombuffer(
            self._req_raw, dtype=np.float64
        ).reshape(self.slots, self.n_features)
        self.response_slab = np.frombuffer(
            self._resp_raw, dtype=np.float64
        ).reshape(self.slots, self.out_width)
        self._lock = threading.Lock()
        self._batch_serial = 0
        parent_conn, child_conn = connection.Pipe(duplex=True)
        self._parent_conn: connection.Connection = parent_conn
        #: Handed to the worker process at spawn (fork inherits it).
        self.child_conn: connection.Connection = child_conn
        self._liveness: LivenessFn = lambda: True

    def bind_liveness(self, probe: LivenessFn) -> None:
        """Install the supervisor's ``is_alive`` probe for recv polling."""
        self._liveness = probe

    def reset_pipe(self) -> None:
        """Fresh pipe for a respawned worker (stale replies discarded).

        Called by the supervisor with the channel lock *not* held — the
        dying conversation's holder observes :class:`ShardDead` via its
        liveness poll and releases before respawn proceeds.
        """
        with self._lock:
            try:
                self._parent_conn.close()
                self.child_conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            parent_conn, child_conn = connection.Pipe(duplex=True)
            self._parent_conn = parent_conn
            self.child_conn = child_conn

    # ------------------------------------------------------------------
    # Conversation primitives (one in flight; caller-visible lock)
    # ------------------------------------------------------------------
    def _recv_locked(self, timeout: float) -> Tuple[Any, ...]:
        deadline = self._clock() + timeout
        conn = self._parent_conn
        while True:
            try:
                if conn.poll(POLL_INTERVAL):
                    reply = conn.recv()
                    if not isinstance(reply, tuple) or not reply:
                        raise ShardDead(
                            self.shard_id, f"malformed reply {reply!r}"
                        )
                    return reply
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise ShardDead(self.shard_id, f"pipe broken: {exc}") from exc
            if not self._liveness():
                raise ShardDead(self.shard_id, "worker process died")
            if self._clock() >= deadline:
                raise ShardDead(
                    self.shard_id, f"no reply within {timeout:.1f}s"
                )

    def _send_locked(self, message: Tuple[Any, ...]) -> None:
        try:
            self._parent_conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardDead(self.shard_id, f"pipe broken: {exc}") from exc

    def score(
        self, method: str, batch: np.ndarray, timeout: float
    ) -> ScoreResult:
        """Round-trip one coalesced batch through the worker.

        ``batch`` is ``(n_rows, n_features)`` float64, ``n_rows <=
        slots``.  Raises :class:`ShardDead` on death/timeout and
        :class:`ShardWorkerError` when the worker's model call raised.
        """
        n_rows = int(batch.shape[0])
        if n_rows > self.slots:
            raise ValueError(
                f"batch of {n_rows} exceeds the {self.slots}-slot slab"
            )
        with self._lock:
            self._batch_serial += 1
            batch_id = self._batch_serial
            self.request_slab[:n_rows] = batch
            self._send_locked(("score", batch_id, method, n_rows))
            reply = self._recv_locked(timeout)
            kind = reply[0]
            if kind == "error":
                _kind, _batch_id, exc_type, detail, _version = reply
                raise ShardWorkerError(self.shard_id, exc_type, detail)
            if kind != "ok" or reply[1] != batch_id:
                raise ShardDead(
                    self.shard_id, f"protocol violation: reply {reply!r}"
                )
            _kind, _batch_id, out_shape, dtype_str, worker_seconds, version = (
                reply
            )
            width = int(np.prod(out_shape)) if out_shape else 1
            values = self.response_slab[:n_rows, :width].copy()
        return ScoreResult(
            values=values,
            out_shape=tuple(out_shape),
            dtype_str=dtype_str,
            worker_seconds=float(worker_seconds),
            version=str(version),
        )

    def swap(self, version: str, state_blob: bytes, timeout: float) -> None:
        """Ship a serialized state dict; returns once the worker applied it."""
        with self._lock:
            self._send_locked(("swap", version, state_blob))
            reply = self._recv_locked(timeout)
            if reply[0] != "swapped" or reply[1] != version:
                raise ShardDead(
                    self.shard_id, f"swap not acknowledged: {reply!r}"
                )

    def ping(self, timeout: float) -> dict:
        """Round-trip a status probe; returns the worker's status dict."""
        with self._lock:
            self._send_locked(("ping",))
            reply = self._recv_locked(timeout)
            if reply[0] != "pong":
                raise ShardDead(
                    self.shard_id, f"ping not acknowledged: {reply!r}"
                )
            status = reply[1]
        return dict(status)

    def stop(self) -> None:
        """Best-effort shutdown notice (no ack expected)."""
        with self._lock:
            try:
                self._parent_conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass

    def close(self) -> None:
        """Close both pipe ends (slabs are reclaimed with the process).

        Takes the channel lock so a concurrent :meth:`reset_pipe` can
        neither resurrect a closed channel nor leak its fresh pipe.
        """
        with self._lock:
            for conn in (self._parent_conn, self.child_conn):
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass

    def __repr__(self) -> str:
        return (
            f"ShardChannel(shard={self.shard_id}, slots={self.slots}, "
            f"n_features={self.n_features}, out_width={self.out_width})"
        )
