"""Shard supervisor: spawn, watch, respawn and hot-swap worker processes.

The supervisor owns the *process* lifecycle of the sharded tier so the
server can treat shards as just "channels that sometimes die":

- **spawn** — workers are forked up front, *before* the server starts
  any dispatcher threads (forking a threaded process risks cloning a
  held allocator lock into the child; forking first sidesteps the whole
  class of problem for the initial fleet);
- **watch** — a monitor thread polls ``Process.is_alive`` every
  ``monitor_interval`` seconds and respawns anything dead, and the
  dispatch path reports deaths it notices first (a
  :class:`~repro.serve.sharding.shm.ShardDead` mid-batch) so recovery
  starts immediately rather than on the next poll tick;
- **respawn** — a fresh process gets a fresh pipe (stale replies from
  the dead incarnation can never be mistaken for new ones) and the
  **last-known-good state blob**, so a worker that died after a
  hot-swap comes back serving the swapped version, not the fork-time
  snapshot;
- **hot-swap** — :meth:`ShardSupervisor.broadcast_swap` ships one
  serialized state dict to every worker and waits for every ack before
  returning; the blob is recorded first, so even a shard that dies
  mid-broadcast is respawned straight into the new version.  Publish →
  broadcast is therefore atomic from the caller's view: when it
  returns, no worker can score another batch with the old parameters.

Respawns and liveness are exported per shard
(``serve/shard/<i>/respawns_total``, ``serve/shard/<i>/alive``) so a
flapping worker is visible on the same metrics surface as everything
else in this repository.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Dict, List, Optional

from ...telemetry.metrics import MetricsRegistry
from ...telemetry.trace import add_event
from .shm import ShardChannel, ShardDead
from .worker import shard_worker_main, state_blob

__all__ = ["ShardHandle", "ShardSupervisor"]

#: Default seconds between monitor liveness sweeps.
MONITOR_INTERVAL = 0.05

#: Default seconds to wait for a swap/stop acknowledgement.
CONTROL_TIMEOUT = 30.0


class ShardHandle:
    """One shard's channel + current process incarnation."""

    def __init__(self, shard_id: int, channel: ShardChannel) -> None:
        self.shard_id = shard_id
        self.channel = channel
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.respawns = 0
        self.version = "v0"

    @property
    def alive(self) -> bool:
        """Whether the current worker process is running."""
        return self.process is not None and self.process.is_alive()

    def __repr__(self) -> str:
        return (
            f"ShardHandle(shard={self.shard_id}, alive={self.alive}, "
            f"version={self.version!r}, respawns={self.respawns})"
        )


class ShardSupervisor:
    """Keep ``n_shards`` worker processes alive and on the right version.

    Parameters
    ----------
    model:
        The fork-time model template; each worker starts from a copy of
        it (copy-on-write via fork) plus the last-known-good state blob.
    n_shards, slots, n_features, out_width:
        Fleet size and slab geometry (see
        :class:`~repro.serve.sharding.shm.ShardChannel`).
    version:
        Version label of the initial snapshot.
    metrics:
        Registry for per-shard liveness/respawn instruments.
    monitor_interval:
        Seconds between liveness sweeps.
    mp_context:
        Multiprocessing start method; ``"fork"`` (default) supports
        unpicklable models and is what the tests and benchmarks use.
    """

    def __init__(
        self,
        model: Any,
        n_shards: int,
        slots: int,
        n_features: int,
        out_width: int,
        version: str = "v0",
        metrics: Optional[MetricsRegistry] = None,
        monitor_interval: float = MONITOR_INTERVAL,
        control_timeout: float = CONTROL_TIMEOUT,
        mp_context: str = "fork",
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.monitor_interval = float(monitor_interval)
        self.control_timeout = float(control_timeout)
        self.metrics = metrics
        self._ctx = multiprocessing.get_context(mp_context)
        self._model = model
        self._lock = threading.Lock()
        self._last_version = version
        self._last_blob: Optional[bytes] = None
        self._closing = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self.handles: List[ShardHandle] = []
        for shard_id in range(self.n_shards):
            channel = ShardChannel(
                shard_id, slots=slots, n_features=n_features,
                out_width=out_width,
            )
            handle = ShardHandle(shard_id, channel)
            handle.version = version
            self.handles.append(handle)
            self._spawn_locked(handle)

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _spawn_locked(self, handle: ShardHandle) -> None:
        # *_locked: callers hold self._lock (or are the constructor).
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                handle.shard_id,
                handle.channel.child_conn,
                handle.channel.request_slab,
                handle.channel.response_slab,
                self._model,
                self._last_version,
                self._last_blob,
            ),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.version = self._last_version
        handle.channel.bind_liveness(process.is_alive)
        self._export_alive(handle)

    def _export_alive(self, handle: ShardHandle) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                f"serve/shard/{handle.shard_id}/alive"
            ).set(1.0 if handle.alive else 0.0)

    def start(self) -> None:
        """Begin the background liveness monitor (idempotent).

        Separate from ``__init__`` so the caller can finish its own
        single-threaded setup first — every initial fork happens before
        any thread exists.
        """
        if self._monitor is not None:
            return
        self._monitor = threading.Thread(
            target=self._watch, name="shard-supervisor", daemon=True
        )
        self._monitor.start()

    def _watch(self) -> None:
        while not self._closing.wait(self.monitor_interval):
            for handle in self.handles:
                if not handle.alive:
                    self.respawn(handle.shard_id)

    def respawn(self, shard_id: int) -> bool:
        """Replace a dead worker (no-op if it is alive or we are closing).

        Returns True when a new process was actually started.  The dead
        incarnation's pipe is replaced first so a half-written reply
        can never leak into the new conversation, and the new worker
        starts from the last-known-good snapshot.
        """
        handle = self.handles[shard_id]
        with self._lock:
            if self._closing.is_set() or handle.alive:
                return False
            self._export_alive(handle)
            handle.channel.reset_pipe()
            self._spawn_locked(handle)
            handle.respawns += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"serve/shard/{shard_id}/respawns_total"
                ).inc()
            version = self._last_version
        add_event("shard_respawned", shard=shard_id, version=version)
        return True

    def kill(self, shard_id: int) -> None:
        """SIGKILL one worker — the chaos drill's dead-shard injection."""
        process = self.handles[shard_id].process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=self.control_timeout)

    # ------------------------------------------------------------------
    # Hot-swap propagation
    # ------------------------------------------------------------------
    def broadcast_swap(self, version: str, model: Any) -> None:
        """Atomically move every worker to ``model``'s parameters.

        The blob is recorded as last-known-good *before* any send, so a
        worker that dies mid-broadcast respawns directly into the new
        version; every surviving worker's ack is awaited before
        returning.
        """
        blob = state_blob(model)
        with self._lock:
            self._last_version = version
            self._last_blob = blob
        for handle in self.handles:
            try:
                handle.channel.swap(version, blob, self.control_timeout)
                handle.version = version
            except ShardDead:
                # Respawn picks up the recorded blob — same end state.
                self.respawn(handle.shard_id)
        add_event("shard_swap_broadcast", version=version,
                  shards=self.n_shards)

    @property
    def last_version(self) -> str:
        """Version every (re)spawned worker is currently pointed at."""
        with self._lock:
            return self._last_version

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def alive_mask(self) -> List[bool]:
        """Per-shard process liveness, index-aligned with the ring."""
        return [handle.alive for handle in self.handles]

    def statuses(self) -> List[Dict[str, Any]]:
        """Per-shard operator view (feeds ``ShardedModelServer.health``)."""
        return [
            {
                "shard": handle.shard_id,
                "alive": handle.alive,
                "active_version": handle.version,
                "respawns": handle.respawns,
                "pid": None if handle.process is None else handle.process.pid,
            }
            for handle in self.handles
        ]

    def close(self) -> None:
        """Stop the monitor, then the fleet (stop → join → kill)."""
        self._closing.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=self.control_timeout)
        for handle in self.handles:
            handle.channel.stop()
        deadline = time.monotonic() + self.control_timeout
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stop suffices
                process.kill()
                process.join(timeout=1.0)
            self._export_alive(handle)
            handle.channel.close()

    def __repr__(self) -> str:
        alive = sum(self.alive_mask())
        return (
            f"ShardSupervisor(shards={self.n_shards}, alive={alive}, "
            f"version={self.last_version!r})"
        )
