"""Sharded model server: the ``ModelServer`` API over a process fleet.

:class:`ShardedModelServer` keeps the single-process server's request
lifecycle — normalize, resolve version, consult the LRU cache,
micro-batch, degrade instead of fail — but scores batches on N worker
*processes* instead of GIL-bound threads:

- **routing** — every request's content key (method + row bytes) lands
  on a shard via a seeded consistent-hash ring, so identical rows
  always reach the same worker and changing the fleet size moves only
  ~1/N of the keyspace;
- **batching** — each shard has its own parent-side
  :class:`~repro.serve.batching.MicroBatcher` (one dispatcher thread),
  so coalescing semantics, cancellation and drain are exactly the
  machinery the single-process path already proved out;
- **dispatch** — a coalesced batch travels to its worker through a
  shared-memory slab (no per-request pickling) and the results fan
  back from the response slab, with worker-side timing recorded as a
  child span of the dispatch;
- **resilience** — each shard sits behind its own
  :class:`~repro.serve.resilience.CircuitBreaker`; dead or tripped
  shards are routed around on the ring, a batch stranded by a worker
  death is rescued row-by-row on the parent's own model snapshot
  (``serve/rescued_total`` — zero requests dropped), and the
  supervisor respawns the worker with the last-known-good state;
- **hot-swap** — when the backing registry's active version moves, the
  server loads the new model once, broadcasts its state blob to every
  worker, and only then serves under the new version label, so a
  publish atomically reaches the whole fleet.

Per-shard instruments (``serve/shard/<i>/...``) sit alongside the
aggregate ones, and :meth:`ShardedModelServer.health` reports the
per-shard status list that makes a half-dead fleet distinguishable
from a healthy one.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections import defaultdict
from types import TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ... import rng as repro_rng
from ...telemetry import trace as tracing
from ...telemetry.metrics import MetricsRegistry
from ...telemetry.trace import Tracer, add_event
from ..batching import MicroBatcher, ServeRequest, ServerClosed
from ..cache import PredictionCache
from ..registry import ModelRegistry
from ..resilience import BreakerOpen, CircuitBreaker, ResiliencePolicy
from .hashing import ConsistentHashRing, routing_key
from .shm import ShardDead, ShardWorkerError
from .supervisor import ShardSupervisor

__all__ = ["ShardedModelServer"]

_PROBE_METHODS = ("predict", "predict_proba", "decision_function")


class ShardedModelServer:
    """Serve ``predict``-family queries across a sharded process fleet.

    Parameters
    ----------
    model, registry, name:
        Exactly one of ``model=`` (fixed snapshot) or ``registry=`` +
        ``name=`` (live, hot-swappable) — same contract as
        :class:`~repro.serve.server.ModelServer`.
    n_shards:
        Worker process count.
    n_features:
        Row width; defaults to ``model.n_features`` when the model
        self-describes.
    max_batch_size, batch_timeout, max_queue:
        Per-shard micro-batching knobs.
    cache_size:
        Shared parent-side LRU capacity (hits never touch a worker).
    resilience:
        Optional policy whose ``retry`` wraps the parent-side rescue
        path; per-shard breakers are always created regardless.
    dispatch_timeout:
        Seconds a dispatch waits on a *live but silent* worker before
        declaring the shard dead (a killed worker is detected within
        one liveness poll, independent of this).
    mp_context:
        Start method for workers (``"fork"`` supports unpicklable
        models; workers are forked before any serving thread starts).
    seed:
        Seeds the consistent-hash ring layout.
    """

    def __init__(
        self,
        model: Any = None,
        registry: Optional[ModelRegistry] = None,
        name: Optional[str] = None,
        n_shards: int = 2,
        n_features: Optional[int] = None,
        max_batch_size: int = 32,
        batch_timeout: float = 0.002,
        max_queue: int = 256,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        resilience: Optional[ResiliencePolicy] = None,
        tracer: Optional[Tracer] = None,
        dispatch_timeout: float = 30.0,
        monitor_interval: float = 0.05,
        ring_replicas: int = 64,
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
        mp_context: str = "fork",
    ) -> None:
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if registry is not None and not name:
            raise ValueError("serving from a registry requires name=")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._registry = registry
        self._name = name
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self.resilience = resilience
        if self.resilience is not None:
            self.resilience.bind_metrics(self.metrics)
        if registry is not None:
            active = registry.active(name or "")
            version, snapshot = active.version, active.model
        else:
            version, snapshot = "v0", model
        self._version = version
        self._fallback = snapshot
        width = n_features or getattr(snapshot, "n_features", None)
        if width is None:
            raise ValueError(
                "pass n_features= (model does not self-describe its row "
                "width)"
            )
        self.n_features = int(width)
        self._out_widths = self._probe_methods(snapshot, self.n_features)
        if not self._out_widths:
            raise ValueError(
                f"model {type(snapshot).__name__} supports none of "
                f"{_PROBE_METHODS}"
            )
        out_width = max(self._out_widths.values())
        integrity = (
            self.resilience.cache_integrity
            if self.resilience is not None else False
        )
        self.cache = PredictionCache(cache_size, integrity=integrity)
        self.ring = ConsistentHashRing(
            n_shards, replicas=ring_replicas, seed=seed
        )
        self.dispatch_timeout = float(dispatch_timeout)
        self._closed = False
        self._close_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        # Workers fork *here*, before any thread below exists.
        self.supervisor = ShardSupervisor(
            snapshot,
            n_shards=n_shards,
            slots=max_batch_size,
            n_features=self.n_features,
            out_width=out_width,
            version=version,
            metrics=self.metrics,
            monitor_interval=monitor_interval,
            mp_context=mp_context,
        )
        self._breakers = [
            CircuitBreaker(
                name=f"shard{i}",
                window=16,
                failure_threshold=0.5,
                min_calls=4,
                reset_timeout=0.25,
                half_open_probes=1,
                metrics=self.metrics,
            )
            for i in range(n_shards)
        ]
        self._batchers = [
            MicroBatcher(
                self._make_dispatch(i),
                max_batch_size=max_batch_size,
                batch_timeout=batch_timeout,
                max_queue=max_queue,
                workers=1,
            )
            for i in range(n_shards)
        ]
        self.supervisor.start()

    @staticmethod
    def _probe_methods(model: Any, n_features: int) -> Dict[str, int]:
        """Per-method output width, probed once on a zero row."""
        widths: Dict[str, int] = {}
        probe = np.zeros((1, n_features), dtype=np.float64)
        for method in _PROBE_METHODS:
            bound = getattr(model, method, None)
            if not callable(bound):
                continue
            try:
                out = np.asarray(bound(probe))
            except Exception:
                continue
            widths[method] = max(1, int(out.reshape(1, -1).shape[1]))
        return widths

    @property
    def registry(self) -> Optional[ModelRegistry]:
        """The backing registry, if serving live models (else ``None``)."""
        return self._registry

    @property
    def n_shards(self) -> int:
        """Size of the worker fleet."""
        return self.supervisor.n_shards

    @property
    def version(self) -> str:
        """Version label requests are currently served under."""
        with self._swap_lock:
            return self._version

    def _fallback_type_name(self) -> str:
        """Type name of the inline-fallback model (hot-swap safe read)."""
        with self._swap_lock:
            return type(self._fallback).__name__

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def predict(self, row: np.ndarray, deadline: Optional[float] = None) -> Any:
        """Hard label for one sample (blocking)."""
        return self.request("predict", row, deadline=deadline)

    def predict_proba(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Probability output for one sample (blocking)."""
        return self.request("predict_proba", row, deadline=deadline)

    def decision_function(
        self, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Raw score for one sample (blocking)."""
        return self.request("decision_function", row, deadline=deadline)

    def request(
        self, method: str, row: np.ndarray, deadline: Optional[float] = None
    ) -> Any:
        """Score one sample via ``method`` on its ring-assigned shard.

        Degradations mirror the single-process server: a full shard
        queue sheds to the parent's inline path, an expired deadline
        cancels and answers inline, and a batch stranded by a worker
        death is rescued inline — the caller always gets an answer.
        """
        clock = self.metrics.clock
        start = clock()
        if self.closed:
            raise ServerClosed()
        with self._start_span("serve/request", method=method) as span:
            row = self._normalize_row(row)
            if method not in self._out_widths:
                raise ValueError(
                    f"model {self._fallback_type_name()} does not "
                    f"support {method!r}"
                )
            version = self._current_version()
            span.set_attribute("version", version)
            self.metrics.counter("serve/requests_total").inc()

            key = None
            if self.cache.maxsize:
                key = PredictionCache.make_key(method, version, row)
                hit, value = self.cache.get(key)
                if hit:
                    span.event("cache_hit")
                    self.metrics.counter("serve/cache_hits_total").inc()
                    self._observe_latency(clock() - start)
                    return value
                span.event("cache_miss")
                self.metrics.counter("serve/cache_misses_total").inc()

            shard = self._route(method, row)
            span.set_attribute("shard", shard)
            pending = ServeRequest(
                method, row, enqueued_at=start,
                context=self._capture_context(),
            )
            if not self._batchers[shard].submit(pending):
                span.event("shed", reason="queue_full", shard=shard)
                self.metrics.counter("serve/shed_total").inc()
                return self._predict_inline(method, row, key, start)
            self._gauge_depth()

            if pending.event.wait(timeout=deadline):
                return self._finish(pending, start)
            if self._batchers[shard].cancel(pending):
                span.event("deadline_expired", shard=shard)
                self.metrics.counter("serve/deadline_expired_total").inc()
                return self._predict_inline(method, row, key, start)
            pending.event.wait()
            return self._finish(pending, start)

    def predict_many(
        self, x: np.ndarray, method: str = "predict"
    ) -> List[Any]:
        """Submit every row of ``x`` concurrently across the fleet.

        Rows are partitioned by ring assignment and bulk-enqueued per
        shard; results come back in row order.  Rows a full shard queue
        rejects are shed to the inline path, rows stranded by a worker
        death are rescued inline — every row is answered.
        """
        if self.closed:
            raise ServerClosed()
        clock = self.metrics.clock
        with self._start_span(
            "serve/predict_many", method=method, rows=len(x)
        ) as span:
            if method not in self._out_widths:
                raise ValueError(
                    f"model {self._fallback_type_name()} does not "
                    f"support {method!r}"
                )
            version = self._current_version()
            span.set_attribute("version", version)
            caching = bool(self.cache.maxsize)
            requests_total = self.metrics.counter("serve/requests_total")
            results: List[Any] = [None] * len(x)
            buckets: Dict[int, List[Tuple[int, ServeRequest]]] = (
                defaultdict(list)
            )
            for index, raw_row in enumerate(x):
                start = clock()
                row = self._normalize_row(raw_row)
                requests_total.inc()
                if caching:
                    key = PredictionCache.make_key(method, version, row)
                    hit, value = self.cache.get(key)
                    if hit:
                        self.metrics.counter("serve/cache_hits_total").inc()
                        self._observe_latency(clock() - start)
                        results[index] = value
                        continue
                    self.metrics.counter("serve/cache_misses_total").inc()
                shard = self._route(method, row)
                buckets[shard].append(
                    (index,
                     ServeRequest(method, row, enqueued_at=start,
                                  context=self._capture_context()))
                )
            waiting: List[Tuple[int, ServeRequest]] = []
            for shard, pairs in buckets.items():
                accepted = self._batchers[shard].submit_many(
                    [request for _index, request in pairs]
                )
                if accepted < len(pairs):
                    span.event(
                        "shed", reason="queue_full", shard=shard,
                        rows=len(pairs) - accepted,
                    )
                for index, request in pairs[accepted:]:
                    self.metrics.counter("serve/shed_total").inc()
                    key = (
                        PredictionCache.make_key(method, version, request.row)
                        if caching else None
                    )
                    results[index] = self._predict_inline(
                        method, request.row, key, request.enqueued_at
                    )
                waiting.extend(pairs[:accepted])
            self._gauge_depth()
            for index, request in waiting:
                request.event.wait()
                results[index] = self._finish(request, request.enqueued_at)
            return results

    # ------------------------------------------------------------------
    # Routing / version management
    # ------------------------------------------------------------------
    def _route(self, method: str, row: np.ndarray) -> int:
        """Ring-route a request, skipping dead or breaker-open shards."""
        alive = self.supervisor.alive_mask()
        routable = [
            alive[i] and self._breakers[i].state != "open"
            for i in range(len(alive))
        ]
        key = routing_key(method, np.ascontiguousarray(row).tobytes())
        return self.ring.route(key, alive=routable)

    def _current_version(self) -> str:
        """Serving version; triggers hot-swap when the registry moved on."""
        registry = self._registry
        if registry is None:
            return self.version
        manifest_version = registry.active_version(self._name or "")
        current = self.version
        if manifest_version is not None and manifest_version != current:
            return self.hot_swap(manifest_version)
        return current

    def hot_swap(self, version: Optional[str] = None) -> str:
        """Atomically move the whole fleet (and the fallback) to ``version``.

        ``None`` means the registry's currently active version.  Returns
        the version actually installed.  A no-op when the fleet is
        already there, so concurrent callers race harmlessly.
        """
        registry = self._registry
        if registry is None:
            raise RuntimeError("hot_swap requires a registry-backed server")
        with self._swap_lock:
            target = version or registry.active_version(self._name or "")
            if target is None:
                raise KeyError(
                    f"model {self._name!r} has no active version"
                )
            if target == self._version:
                return self._version
            model = registry.load(self._name or "", target)
            self.supervisor.broadcast_swap(target, model)
            self._fallback = model
            self._version = target
        add_event("sharded_hot_swap", version=target,
                  shards=self.n_shards)
        return target

    # ------------------------------------------------------------------
    # Dispatch internals
    # ------------------------------------------------------------------
    def _make_dispatch(self, shard_id: int) -> Any:
        """Bind ``shard_id`` into a MicroBatcher dispatch callable."""
        def dispatch(method: str, rows: List[np.ndarray]) -> List[Any]:
            return self._shard_dispatch(shard_id, method, rows)
        return dispatch

    def _shard_dispatch(
        self, shard_id: int, method: str, rows: List[np.ndarray]
    ) -> List[Any]:
        """Score one coalesced batch on shard ``shard_id``'s worker.

        Runs on that shard's dispatcher thread.  A dead worker raises
        :class:`~repro.serve.sharding.shm.ShardDead` through the
        breaker (tripping it), triggers an eager respawn, and the
        batcher delivers the error to every waiter — whose ``_finish``
        rescues each row inline.
        """
        traced = tracing.current_span() is not None
        with (
            self._start_span(
                "serve/shard_dispatch", method=method,
                batch_size=len(rows), shard=shard_id,
            )
            if traced
            else contextlib.nullcontext()
        ) as span:
            handle = self.supervisor.handles[shard_id]
            batch = np.ascontiguousarray(np.stack(rows), dtype=np.float64)
            try:
                with self.metrics.timer("serve/dispatch_seconds"):
                    with self.metrics.timer(
                        f"serve/shard/{shard_id}/dispatch_seconds"
                    ):
                        result = self._breakers[shard_id].call(
                            handle.channel.score, method, batch,
                            self.dispatch_timeout,
                        )
            except ShardDead:
                add_event("shard_dead", shard=shard_id)
                self.metrics.counter(
                    f"serve/shard/{shard_id}/deaths_total"
                ).inc()
                self.supervisor.respawn(shard_id)
                raise
            if span is not None and traced:
                span.record_child(
                    "serve/worker_score", result.worker_seconds,
                    attributes={"shard": shard_id},
                )
        self.metrics.counter("serve/batches_total").inc()
        self.metrics.counter(
            f"serve/shard/{shard_id}/batches_total"
        ).inc()
        self.metrics.counter(
            f"serve/shard/{shard_id}/requests_total"
        ).inc(float(len(rows)))
        self.metrics.histogram("serve/batch_size").observe(len(rows))
        self._gauge_depth()
        values = [result.row_value(i) for i in range(len(rows))]
        if self.cache.maxsize:
            for row, value in zip(rows, values):
                try:
                    self.cache.put(
                        PredictionCache.make_key(
                            method, result.version, row
                        ),
                        value,
                    )
                except Exception:
                    self.metrics.counter(
                        "resilience/cache_errors_total"
                    ).inc()
        return values

    def _predict_inline(
        self,
        method: str,
        row: np.ndarray,
        key: Optional[bytes],
        start: float,
    ) -> Any:
        """Parent-side single-row path: shed, expired and rescued requests.

        Scores on the parent's own snapshot of the current version —
        the guarantee that no request is ever dropped, even with the
        whole fleet dead mid-respawn.
        """
        with self._start_span("serve/inline_predict", method=method):
            with self._swap_lock:
                bound = getattr(self._fallback, method)
            policy = self.resilience
            if policy is not None:
                out = policy.retry.call(bound, row[np.newaxis, ...])
            else:
                out = bound(row[np.newaxis, ...])
            result = list(np.asarray(out))[0]
        if key is not None:
            try:
                self.cache.put(key, result)
            except Exception:
                self.metrics.counter("resilience/cache_errors_total").inc()
        self._observe_latency(self.metrics.clock() - start)
        return result

    def _finish(self, request: ServeRequest, start: float) -> Any:
        """Deliver a result, rescuing rows whose shard died mid-batch."""
        if request.error is not None:
            error = request.error
            if isinstance(error, (ShardDead, ShardWorkerError, BreakerOpen)):
                add_event("row_rescue", error=type(error).__name__)
                self.metrics.counter("serve/rescued_total").inc()
                key = (
                    PredictionCache.make_key(
                        request.method, self.version, request.row
                    )
                    if self.cache.maxsize
                    else None
                )
                return self._predict_inline(
                    request.method, request.row, key, start
                )
            self._observe_latency(self.metrics.clock() - start)
            raise error
        self._observe_latency(self.metrics.clock() - start)
        return request.result

    # ------------------------------------------------------------------
    # Shared helpers (parity with ModelServer)
    # ------------------------------------------------------------------
    def _start_span(self, name: str, **attributes: Any) -> Any:
        """Span on this server's tracer or the ambient one (else inert)."""
        return tracing.start_span(
            name, attributes=attributes or None, tracer=self.tracer
        )

    def _capture_context(self) -> Optional[contextvars.Context]:
        """Submit-time context snapshot, only when the span is sampled."""
        active = tracing.current_span()
        if active is not None and active.sampled:
            return contextvars.copy_context()
        return None

    def _normalize_row(self, row: np.ndarray) -> np.ndarray:
        """Squeeze a length-1 batch axis and cast to the slab dtype."""
        row = np.asarray(row)
        if row.ndim >= 2 and row.shape[0] == 1:
            row = row[0]
        row = np.ascontiguousarray(row, dtype=np.float64)
        if row.shape != (self.n_features,):
            raise ValueError(
                f"expected a ({self.n_features},) row, got {row.shape}"
            )
        return row

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.histogram("serve/latency_seconds").observe(seconds)

    def _gauge_depth(self) -> None:
        depth = sum(batcher.depth() for batcher in self._batchers)
        self.metrics.gauge("serve/queue_depth").set(depth)
        for shard_id, batcher in enumerate(self._batchers):
            self.metrics.gauge(
                f"serve/shard/{shard_id}/queue_depth"
            ).set(batcher.depth())

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Drain (or fail) queued requests, then stop the fleet."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for batcher in self._batchers:
            batcher.close(drain=drain)
        self.supervisor.close()

    def __enter__(self) -> "ShardedModelServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun; closed servers reject requests."""
        with self._close_lock:
            return self._closed

    def health(self) -> Dict[str, Any]:
        """Operator probe with the per-shard status list.

        ``status`` is ``"ok"`` only when every shard is alive with a
        closed breaker; any dead worker, open breaker or mid-respawn
        shard reports ``"degraded"`` (requests still succeed via
        re-routing and the inline fallback) — a half-dead fleet is
        never mistaken for a healthy one.  Each ``shards`` entry
        carries ``alive``, ``queue_depth``, ``active_version``,
        ``respawns`` and the shard's breaker state.
        """
        statuses = self.supervisor.statuses()
        for status in statuses:
            shard_id = int(status["shard"])
            status["queue_depth"] = self._batchers[shard_id].depth()
            status["breaker"] = self._breakers[shard_id].state
        alive = sum(1 for status in statuses if status["alive"])
        breakers = {
            f"shard{i}": breaker.state
            for i, breaker in enumerate(self._breakers)
        }
        depth = sum(int(status["queue_depth"]) for status in statuses)
        capacity = sum(batcher.max_queue for batcher in self._batchers)
        closed_now = self.closed
        if closed_now:
            overall = "closed"
        elif alive == len(statuses) and all(
            state == "closed" for state in breakers.values()
        ):
            overall = "ok"
        else:
            overall = "degraded"
        return {
            "status": overall,
            "closed": closed_now,
            "n_shards": self.n_shards,
            "alive_shards": alive,
            "queue_depth": depth,
            "queue_capacity": capacity,
            "queue_saturation": depth / capacity if capacity else 0.0,
            "cache": self.cache.stats(),
            "breakers": breakers,
            "active_model": {
                "name": self._name or self._fallback_type_name(),
                "version": self.version,
                "stale": False,
            },
            "shards": statuses,
        }

    def ready(self) -> bool:
        """Readiness: open for requests with an answerable model.

        True while the server is open — even a fully dead fleet still
        answers via the parent fallback — so readiness only gates
        shutdown, while :meth:`health` grades degradation.
        """
        return not self.closed

    def stats(self) -> Dict[str, Any]:
        """Derived serving stats, including the per-shard request split."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        batch_hist = self.metrics.histogram("serve/batch_size")
        latency_hist = self.metrics.histogram("serve/latency_seconds")
        per_shard = {
            str(i): counters.get(f"serve/shard/{i}/requests_total", 0.0)
            for i in range(self.n_shards)
        }
        stats: Dict[str, Any] = {
            "requests": counters.get("serve/requests_total", 0.0),
            "batches": counters.get("serve/batches_total", 0.0),
            "shed": counters.get("serve/shed_total", 0.0),
            "deadline_expired": counters.get(
                "serve/deadline_expired_total", 0.0
            ),
            "rescued": counters.get("serve/rescued_total", 0.0),
            "respawns": sum(
                handle.respawns for handle in self.supervisor.handles
            ),
            "shard_requests": per_shard,
            "cache_hit_rate": self.cache.hit_rate,
            "mean_batch_size": (
                batch_hist.mean if batch_hist.count else 0.0
            ),
            "metrics": snapshot,
        }
        if latency_hist.count:
            stats["latency_p50_ms"] = latency_hist.quantile(0.5) * 1e3
            stats["latency_p99_ms"] = latency_hist.quantile(0.99) * 1e3
        return stats

    def __repr__(self) -> str:
        target = (
            f"registry:{self._name}" if self._registry is not None
            else self._fallback_type_name()
        )
        return (
            f"ShardedModelServer({target}, shards={self.n_shards}, "
            f"version={self.version!r}, closed={self.closed})"
        )
