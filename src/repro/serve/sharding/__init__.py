"""Multi-process sharded serving tier.

Composes four pieces behind the familiar ``ModelServer`` surface:

- :mod:`~repro.serve.sharding.hashing` — seeded consistent-hash ring
  (stable, bounded-movement routing of cache-keyed requests);
- :mod:`~repro.serve.sharding.shm` — shared-memory slab channel (row
  data never crosses the process boundary through pickle);
- :mod:`~repro.serve.sharding.worker` — the shard process loop with an
  isolated model snapshot and in-place hot-swap;
- :mod:`~repro.serve.sharding.supervisor` — spawn/watch/respawn with
  last-known-good snapshots and atomic swap broadcast;
- :mod:`~repro.serve.sharding.server` — the
  :class:`~repro.serve.sharding.server.ShardedModelServer` facade.
"""

from .hashing import ConsistentHashRing, routing_key
from .server import ShardedModelServer
from .shm import ScoreResult, ShardChannel, ShardDead, ShardWorkerError
from .supervisor import ShardHandle, ShardSupervisor
from .worker import apply_state_blob, shard_worker_main, state_blob

__all__ = [
    "ConsistentHashRing",
    "routing_key",
    "ShardedModelServer",
    "ScoreResult",
    "ShardChannel",
    "ShardDead",
    "ShardWorkerError",
    "ShardHandle",
    "ShardSupervisor",
    "apply_state_blob",
    "shard_worker_main",
    "state_blob",
]
