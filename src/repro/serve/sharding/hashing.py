"""Consistent-hash ring routing cache-keyed requests across shards.

The sharded serving tier routes every request by the *content* of its
row (method + row bytes), so identical rows always land on the same
shard — which is what gives each shard-local working set its cache and
BLAS-warmth affinity.  Plain ``hash(key) % n_shards`` would reshuffle
almost every key whenever the shard count changes; a consistent-hash
ring bounds the reshuffle to roughly ``1/N`` of the keyspace (the
classic Karger construction): each shard owns many pseudo-random
*points* on a ring, and a key belongs to the first shard point at or
after the key's own hash.

Determinism matters here as much as in training: the ring is seeded
(the salt folds in ``seed``), hashes with BLAKE2b (stable across
processes and Python versions — unlike builtin ``hash``), and spins no
RNG at all, so a fixed seed and shard count give bit-stable assignment
on every run and on every machine.  The routing tests assert exactly
that, plus the bounded-movement property.

Dead shards are handled at lookup time: :meth:`ConsistentHashRing.route`
takes an optional per-shard liveness mask and walks clockwise past
points owned by dead shards, so failover re-routes only the keys that
lived on the dead shard while everyone else stays put.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Sequence, Tuple

from ... import rng as repro_rng

__all__ = ["ConsistentHashRing", "routing_key"]

#: Ring points per shard.  64 keeps the per-shard load imbalance in the
#: few-percent range while the whole ring still fits in one cache line
#: scan (n_shards * 64 sorted ints).
DEFAULT_REPLICAS = 64


def routing_key(method: str, row_bytes: bytes) -> bytes:
    """Stable routing digest of ``(method, row bytes)``.

    Deliberately excludes the model version (unlike
    :meth:`~repro.serve.cache.PredictionCache.make_key`): a hot-swap
    must not reshuffle which shard owns which row.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(method.encode())
    digest.update(b"\x00")
    digest.update(row_bytes)
    return digest.digest()


class ConsistentHashRing:
    """Karger-style consistent hashing over ``n_shards`` virtual nodes.

    Parameters
    ----------
    n_shards:
        Number of shards (ring members).
    replicas:
        Virtual points per shard; more points = smoother balance.
    seed:
        Folded into every point hash, so two rings with the same
        ``(n_shards, replicas, seed)`` are identical and a different
        seed yields an independent (but equally deterministic) layout.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = repro_rng.REPRO_DEFAULT_SEED,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        self.seed = int(seed)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                label = f"{self.seed}:{shard}:{replica}".encode()
                points.append((self._point(label), shard))
        points.sort()
        self._hashes = [point for point, _shard in points]
        self._shards = [shard for _point, shard in points]

    @staticmethod
    def _point(data: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big"
        )

    def route(
        self, key: bytes, alive: Optional[Sequence[bool]] = None
    ) -> int:
        """Shard owning ``key``; skips dead shards when ``alive`` given.

        ``alive`` is a per-shard boolean mask; with every shard dead (or
        an all-False mask) routing falls back to the primary owner so
        the caller can surface the failure at dispatch time instead of
        here.
        """
        target = self._point(key)
        start = bisect.bisect_right(self._hashes, target) % len(self._hashes)
        if alive is None:
            return self._shards[start]
        for offset in range(len(self._shards)):
            shard = self._shards[(start + offset) % len(self._shards)]
            if alive[shard]:
                return shard
        return self._shards[start]

    def assignment(self, keys: Sequence[bytes]) -> List[int]:
        """Vector of :meth:`route` results (test/analysis helper)."""
        return [self.route(key) for key in keys]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(n_shards={self.n_shards}, "
            f"replicas={self.replicas}, seed={self.seed})"
        )
