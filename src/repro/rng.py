"""The project's sanctioned source of default random generators.

Every stochastic component in this reproduction takes an injected
``numpy.random.Generator`` so that paper-level results (Table 2
accuracies, Fig. 5-7 timings on identical iterates) are replayable
bit-for-bit.  But constructors still want a *fallback* when the caller
does not care about the stream — and the naive fallback,
``np.random.default_rng()`` with no seed, silently reintroduces
irreproducibility (OS entropy on every call).

This module is the one place unseeded-looking defaults are allowed
(the ``RNG-DETERMINISM`` lint rule exempts exactly this file):

- :func:`default_generator` returns a **deterministic yet distinct**
  generator per call, by spawning children of one process-wide root
  ``SeedSequence`` seeded with :data:`REPRO_DEFAULT_SEED`.  Two layers
  built without explicit ``rng=`` get different streams (their weights
  differ, as before), but re-running the program replays both streams
  exactly.
- :func:`spawn` derives an independent generator from ``(seed, *keys)``
  — the pattern the dataset builders already use via nested
  ``SeedSequence`` — without colliding with ``seed + 1`` style offsets.
- :func:`set_default_seed` re-roots the process-wide sequence (tests
  use this to isolate themselves); it returns the previous seed so
  callers can restore it.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Union

import numpy as np

__all__ = [
    "REPRO_DEFAULT_SEED",
    "default_generator",
    "set_default_seed",
    "spawn",
]

#: Root seed for all implicitly created generators (the paper's venue
#: year makes it greppable; the value itself is arbitrary).
REPRO_DEFAULT_SEED = 2018

_state_lock = threading.Lock()
_current_seed: int = REPRO_DEFAULT_SEED
_root: np.random.SeedSequence = np.random.SeedSequence(REPRO_DEFAULT_SEED)


def default_generator(
    seed: Optional[Union[int, np.random.SeedSequence]] = None,
) -> np.random.Generator:
    """A seeded generator; the project-wide replacement for unseeded
    ``np.random.default_rng()``.

    With ``seed=None`` the process-wide root sequence spawns a fresh
    child: deterministic given the program's call order, distinct from
    every other spawned stream.  With an explicit ``seed`` this is just
    ``np.random.default_rng(seed)``.
    """
    if seed is not None:
        return np.random.default_rng(seed)
    with _state_lock:
        child = _root.spawn(1)[0]
    return np.random.default_rng(child)


def spawn(seed: int, *keys: Union[int, Iterable[int]]) -> np.random.Generator:
    """An independent generator keyed by ``(seed, *keys)``.

    Unlike ``seed + k`` offsets, nested ``SeedSequence`` entropy never
    collides across components: ``spawn(7, 1)`` and ``spawn(8, 0)`` are
    unrelated streams.
    """
    flat = [seed]
    for key in keys:
        if isinstance(key, int):
            flat.append(key)
        else:
            flat.extend(int(part) for part in key)
    return np.random.default_rng(np.random.SeedSequence(flat))


def set_default_seed(seed: int) -> int:
    """Re-root the process-wide sequence; returns the previous seed."""
    global _current_seed, _root
    with _state_lock:
        previous = _current_seed
        _current_seed = int(seed)
        _root = np.random.SeedSequence(_current_seed)
    return previous
