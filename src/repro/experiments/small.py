"""Small-dataset experiments: Table VII and Figure 3.

Protocol (Section V-C): for each dataset, draw 5 stratified 80-20
subsamples; on each training split pick every method's hyper-parameters
by cross-validation; report mean +- standard error of test accuracy.

Figure 3 trains logistic regression with GM regularization on the full
(encoded) dataset and inspects the learned mixture: its density curve,
the per-component curves and the crossover points A/B where the
dominant component changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import GMRegularizer
from ..datasets import DatasetBundle, make_hospital_dataset, make_uci_dataset
from ..linear import (
    LogisticRegression,
    accuracy,
    mean_and_standard_error,
    stratified_k_fold,
)
from ..optim import Trainer
from .regfactory import METHODS, default_grid, make_regularizer

__all__ = [
    "SmallRunConfig",
    "MethodResult",
    "DatasetComparison",
    "load_small_dataset",
    "evaluate_method_on_split",
    "run_dataset_comparison",
    "run_table7",
    "LearnedMixture",
    "fit_gm_mixture_for_dataset",
]


@dataclass(frozen=True)
class SmallRunConfig:
    """Knobs for the Table VII protocol.

    The paper's full protocol is ``n_subsamples=5`` with full grids; the
    fast benchmark variant shrinks everything while keeping the shape.
    """

    n_subsamples: int = 5
    cv_folds: int = 3
    epochs: int = 150
    lr: float = 0.5
    batch_size: int = 32
    compact_grids: bool = False
    seed: int = 0


@dataclass(frozen=True)
class MethodResult:
    """One method's accuracy on one dataset (mean +- stderr)."""

    method: str
    mean_accuracy: float
    stderr: float
    per_subsample: Tuple[float, ...]
    best_params: Tuple[Dict[str, object], ...]


@dataclass
class DatasetComparison:
    """All methods' results on one dataset (one row of Table VII)."""

    dataset: str
    results: Dict[str, MethodResult] = field(default_factory=dict)

    def best_method(self) -> str:
        return max(self.results.values(), key=lambda r: r.mean_accuracy).method


def load_small_dataset(name: str, seed: int = 0) -> DatasetBundle:
    """Load one of the 12 small datasets (Hosp-FA or a UCI stand-in)."""
    if name == "Hosp-FA":
        return make_hospital_dataset(seed)
    return make_uci_dataset(name, seed)


def _train_and_predict(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_eval: np.ndarray,
    method: str,
    params: Dict[str, object],
    config: SmallRunConfig,
    seed: int,
) -> np.ndarray:
    """Fit a fresh regularized LR and predict on ``x_eval``."""
    reg = make_regularizer(method, n_dimensions=x_train.shape[1], params=params)
    model = LogisticRegression(
        x_train.shape[1], regularizer=reg, rng=np.random.default_rng(seed)
    )
    trainer = Trainer(model, lr=config.lr, batch_size=config.batch_size)
    trainer.fit(
        x_train, y_train, epochs=config.epochs, rng=np.random.default_rng(seed + 1)
    )
    return model.predict(x_eval)


def evaluate_method_on_split(
    method: str,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: SmallRunConfig,
    seed: int,
) -> Tuple[float, Dict[str, object]]:
    """CV-tune ``method`` on the training split, score on the test split."""
    grid = default_grid(method, compact=config.compact_grids)
    if len(grid) == 1:
        best_params = grid[0]
    else:
        scores = []
        folds = list(
            stratified_k_fold(
                y_train, config.cv_folds, np.random.default_rng(seed)
            )
        )
        for params in grid:
            fold_scores = []
            for fold_id, (tr, va) in enumerate(folds):
                preds = _train_and_predict(
                    x_train[tr], y_train[tr], x_train[va],
                    method, params, config, seed + 17 * fold_id,
                )
                fold_scores.append(accuracy(y_train[va], preds))
            scores.append((params, float(np.mean(fold_scores))))
        best_params = max(scores, key=lambda item: item[1])[0]
    preds = _train_and_predict(
        x_train, y_train, x_test, method, best_params, config, seed + 1000
    )
    return accuracy(y_test, preds), best_params


def run_dataset_comparison(
    dataset: DatasetBundle,
    config: Optional[SmallRunConfig] = None,
    methods: Sequence[str] = ("l1", "l2", "elastic", "huber", "gm"),
) -> DatasetComparison:
    """Run the full Table VII protocol on one dataset."""
    config = config or SmallRunConfig()
    comparison = DatasetComparison(dataset=dataset.name)
    for method in methods:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}")
        accuracies: List[float] = []
        chosen: List[Dict[str, object]] = []
        for subsample in range(config.n_subsamples):
            seed = config.seed + 31 * subsample
            split = dataset.stratified_split(seed)
            acc, params = evaluate_method_on_split(
                method,
                split.x_train, split.y_train, split.x_test, split.y_test,
                config, seed,
            )
            accuracies.append(acc)
            chosen.append(params)
        mean, stderr = mean_and_standard_error(accuracies)
        comparison.results[method] = MethodResult(
            method=method,
            mean_accuracy=mean,
            stderr=stderr,
            per_subsample=tuple(accuracies),
            best_params=tuple(chosen),
        )
    return comparison


def run_table7(
    dataset_names: Sequence[str],
    config: Optional[SmallRunConfig] = None,
    methods: Sequence[str] = ("l1", "l2", "elastic", "huber", "gm"),
) -> List[DatasetComparison]:
    """Reproduce Table VII over the given datasets."""
    config = config or SmallRunConfig()
    return [
        run_dataset_comparison(
            load_small_dataset(name, seed=config.seed), config, methods
        )
        for name in dataset_names
    ]


# ----------------------------------------------------------------------
# Figure 3: learned Gaussian components
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LearnedMixture:
    """The learned GM of one dataset plus its density curve (Fig. 3)."""

    dataset: str
    pi: np.ndarray
    lam: np.ndarray
    crossovers: np.ndarray  # the A/B points of Figure 3
    grid: np.ndarray
    density: np.ndarray
    component_densities: np.ndarray  # (K, len(grid)) pi_k * N(x|0, lam_k)


def fit_gm_mixture_for_dataset(
    name: str,
    gamma: float = 0.002,
    epochs: int = 120,
    lr: float = 0.5,
    seed: int = 0,
    grid_halfwidth: Optional[float] = None,
    n_grid: int = 401,
) -> LearnedMixture:
    """Train LR + GM on the full dataset and return the learned mixture.

    The default ``gamma`` is the smallest-but-one value of the paper's
    grid: the Figure 3 case study wants the mixture least constrained
    by the Gamma prior so both the noise and signal components are
    visible (larger gammas cap the precisions and can merge the two
    components at this data scale).
    """
    bundle = load_small_dataset(name, seed)
    x, y = bundle.encode_all()
    reg = make_regularizer(
        "gm", n_dimensions=x.shape[1], params={"gamma": gamma}
    )
    if not isinstance(reg, GMRegularizer):
        raise TypeError(
            f"expected make_regularizer('gm', ...) to build a GMRegularizer, "
            f"got {type(reg).__name__}"
        )
    model = LogisticRegression(
        x.shape[1], regularizer=reg, rng=np.random.default_rng(seed)
    )
    Trainer(model, lr=lr, batch_size=32).fit(
        x, y, epochs=epochs, rng=np.random.default_rng(seed + 1)
    )
    mixture = reg.mixture
    if grid_halfwidth is None:
        grid_halfwidth = float(3.0 / np.sqrt(mixture.lam.min()))
    grid = np.linspace(-grid_halfwidth, grid_halfwidth, n_grid)
    density = mixture.pdf(grid)
    comp = np.exp(mixture.component_log_pdf(grid)) * mixture.pi[None, :]
    return LearnedMixture(
        dataset=name,
        pi=mixture.pi.copy(),
        lam=mixture.lam.copy(),
        crossovers=mixture.crossover_points(),
        grid=grid,
        density=density,
        component_densities=comp.T,
    )
