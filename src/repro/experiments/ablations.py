"""Ablations of the design choices called out in DESIGN.md.

Four ablations quantify the implementation decisions that are not
dictated verbatim by the paper:

1. **Component pruning** (Eq. 17's alpha-driven zeroing) vs. flooring
   coefficients at epsilon — pruning is what collapses K=4 to the 1-2
   components of Tables IV/V.
2. **Component merging** of same-fixed-point precisions vs. keeping
   duplicate components — merging is the "gradually merged to one"
   behaviour of Section V-B1.
3. **Log-space responsibilities** (log-sum-exp) vs. the naive direct
   formula — the naive path over/underflows for the large precisions
   the EM produces.
4. **Per-layer vs. single global GM** for deep models — the paper uses
   per-layer GMs (Section V-B1); a shared GM cannot adapt to each
   layer's weight scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core import GMRegularizer, GaussianMixture
from ..core.regularizers import Regularizer
from ..datasets import ImageDataset
from ..nn import Network
from ..optim import Trainer
from .deep import DeepRunConfig, build_model, load_image_data

__all__ = [
    "run_pruning_ablation",
    "run_merge_ablation",
    "naive_responsibilities",
    "responsibility_stability_comparison",
    "run_layer_sharing_ablation",
]


def _fit_gm_on_weights(
    w: np.ndarray,
    prune: bool,
    merge: bool,
    n_steps: int = 200,
) -> GMRegularizer:
    reg = GMRegularizer(
        n_dimensions=w.size,
        weight_init_std=0.1,
        prune_components=prune,
        merge_components=merge,
    )
    for it in range(n_steps):
        reg.update(w, it)
    return reg


def run_pruning_ablation(
    rng: np.random.Generator, n_dims: int = 2000
) -> Dict[str, int]:
    """Final component counts with pruning on vs. off.

    On the paper's bimodal weight structure, pruning+merging reach the
    1-2 component fixed point; with both off, all K=4 components
    survive (possibly as duplicates).
    """
    w = np.concatenate([
        rng.normal(0, 0.02, int(0.9 * n_dims)),
        rng.normal(0, 0.5, n_dims - int(0.9 * n_dims)),
    ])
    with_pruning = _fit_gm_on_weights(w, prune=True, merge=True)
    without = _fit_gm_on_weights(w, prune=False, merge=False)
    return {
        "paper (prune+merge)": with_pruning.mixture.n_components,
        "ablated (neither)": without.mixture.n_components,
    }


def run_merge_ablation(
    rng: np.random.Generator, n_dims: int = 2000
) -> Dict[str, Tuple[int, float]]:
    """Component count and duplicate-precision mass with merging off.

    Returns per variant ``(n_components, max_relative_precision_gap)``
    among surviving components: with merging off, several components
    converge to the same precision (gap ~0), i.e. they are redundant.
    """
    w = np.concatenate([
        rng.normal(0, 0.02, int(0.9 * n_dims)),
        rng.normal(0, 0.5, n_dims - int(0.9 * n_dims)),
    ])
    results: Dict[str, Tuple[int, float]] = {}
    for label, merge in (("merge on", True), ("merge off", False)):
        reg = _fit_gm_on_weights(w, prune=True, merge=merge)
        lam = np.sort(reg.lam)
        if lam.size > 1:
            gaps = np.diff(lam) / lam[1:]
            min_gap = float(gaps.min())
        else:
            min_gap = math.inf
        results[label] = (reg.mixture.n_components, min_gap)
    return results


def naive_responsibilities(
    mixture: GaussianMixture, w: np.ndarray
) -> np.ndarray:
    """The direct (non-log-space) responsibility formula of Eq. (9).

    Intentionally naive: evaluates Gaussian densities directly and
    normalizes.  Overflows/underflows for large precisions — kept as
    the ablation baseline for the log-sum-exp implementation.
    """
    w = np.asarray(w, dtype=np.float64).reshape(-1)
    with np.errstate(over="ignore", under="ignore", invalid="ignore",
                     divide="ignore"):
        dens = (
            np.sqrt(mixture.lam)[None, :]
            / np.sqrt(2.0 * np.pi)
            * np.exp(-0.5 * mixture.lam[None, :] * w[:, None] ** 2)
        )
        weighted = mixture.pi[None, :] * dens
        return weighted / weighted.sum(axis=1, keepdims=True)


def responsibility_stability_comparison(
    precision_scale: float = 1e8,
) -> Dict[str, float]:
    """Fraction of non-finite responsibility rows: naive vs. log-space.

    With two high-precision components (which late-stage EM produces
    when most weights sit near zero), both direct densities underflow
    for weights a short distance from the origin, so the naive formula
    loses rows to 0/0 while the log-sum-exp implementation stays exact.
    """
    mixture = GaussianMixture(
        pi=np.array([0.5, 0.5]),
        lam=np.array([precision_scale * 1e-4, precision_scale]),
    )
    w = np.linspace(-5.0, 5.0, 401)
    naive = naive_responsibilities(mixture, w)
    stable = mixture.responsibilities(w)
    return {
        "naive_bad_rows": float(np.mean(~np.isfinite(naive).all(axis=1))),
        "logspace_bad_rows": float(np.mean(~np.isfinite(stable).all(axis=1))),
    }


class _SharedGMAdapter(Regularizer):
    """Routes a layer's weight slice through one shared global GM."""

    def __init__(self, shared: GMRegularizer, offset: int, size: int,
                 owner_state: dict):
        self._shared = shared
        self._offset = offset
        self._size = size
        self._state = owner_state  # holds the concatenated weight buffer

    def _write_slice(self, w: np.ndarray) -> None:
        flat = np.asarray(w, dtype=np.float64).reshape(-1)
        self._state["buffer"][self._offset : self._offset + self._size] = flat

    def penalty(self, w: np.ndarray) -> float:
        self._write_slice(w)
        return 0.0

    def gradient(self, w: np.ndarray) -> np.ndarray:
        self._write_slice(w)
        full = self._shared.gradient(self._state["buffer"])
        return full[self._offset : self._offset + self._size].reshape(
            np.asarray(w).shape
        )

    def prepare(self, w: np.ndarray, iteration: int) -> None:
        self._write_slice(w)
        if self._offset == 0:  # one designated driver per iteration
            self._shared.prepare(self._state["buffer"], iteration)

    def update(self, w: np.ndarray, iteration: int) -> None:
        self._write_slice(w)
        if self._offset == 0:
            self._shared.update(self._state["buffer"], iteration)

    def epoch_end(self, epoch: int) -> None:
        if self._offset == 0:
            self._shared.epoch_end(epoch)


def attach_global_gm(network: Network) -> GMRegularizer:
    """Attach one *shared* GM across all weight tensors (ablation mode).

    Returns the shared regularizer so callers can inspect the single
    learned mixture.
    """
    sizes = []

    def measure(name: str, m: int, std: float) -> Optional[Regularizer]:
        sizes.append((name, m, std))
        return None

    network.attach_regularizers(measure)
    total = sum(m for _n, m, _s in sizes)
    mean_std = float(np.mean([s for _n, _m, s in sizes]))
    shared = GMRegularizer(n_dimensions=total, weight_init_std=mean_std)
    state = {"buffer": np.zeros(total)}
    offsets = {}
    cursor = 0
    for name, m, _std in sizes:
        offsets[name] = (cursor, m)
        cursor += m

    def factory(name: str, m: int, std: float) -> Optional[Regularizer]:
        del std
        offset, size = offsets[name]
        if size != m:
            raise ValueError(
                f"regularizer {name!r} spans {m} weights but the shared "
                f"layout reserved {size}"
            )
        return _SharedGMAdapter(shared, offset, m, state)

    network.attach_regularizers(factory)
    return shared


@dataclass
class LayerSharingAblation:
    """Outcome of the per-layer vs. global GM comparison."""

    per_layer_accuracy: float
    global_accuracy: float
    per_layer_lambdas: Dict[str, np.ndarray]
    global_lambda: np.ndarray


def run_layer_sharing_ablation(
    config: DeepRunConfig,
    data: Optional[ImageDataset] = None,
) -> LayerSharingAblation:
    """Train with per-layer GMs vs. one global GM and compare.

    The paper's design learns one mixture per layer so each layer's
    regularization adapts to its own weight scale (Tables IV/V); the
    global variant averages everything into one mixture.
    """
    from ..core import GMHyperParams
    from .deep import DEFAULT_GAMMA

    data = data or load_image_data(config)
    gamma = DEFAULT_GAMMA[config.model]

    # Per-layer (the paper's design).
    per_layer_net = build_model(config)
    per_layer_regs: Dict[str, GMRegularizer] = {}

    def per_layer_factory(name, m, std):
        reg = GMRegularizer(
            n_dimensions=m, weight_init_std=std,
            hyperparams=GMHyperParams(gamma=gamma),
        )
        per_layer_regs[name] = reg
        return reg

    per_layer_net.attach_regularizers(per_layer_factory)
    trainer = Trainer(per_layer_net, lr=config.effective_lr,
                      momentum=config.momentum, batch_size=config.batch_size)
    trainer.fit(data.x_train, data.y_train, epochs=config.epochs,
                rng=np.random.default_rng(config.seed + 1))
    per_layer_acc = float(
        np.mean(per_layer_net.predict(data.x_test) == data.y_test)
    )

    # Global (ablation).
    global_net = build_model(config)
    shared = attach_global_gm(global_net)
    trainer = Trainer(global_net, lr=config.effective_lr,
                      momentum=config.momentum, batch_size=config.batch_size)
    trainer.fit(data.x_train, data.y_train, epochs=config.epochs,
                rng=np.random.default_rng(config.seed + 1))
    global_acc = float(np.mean(global_net.predict(data.x_test) == data.y_test))

    return LayerSharingAblation(
        per_layer_accuracy=per_layer_acc,
        global_accuracy=global_acc,
        per_layer_lambdas={n: r.lam.copy() for n, r in per_layer_regs.items()},
        global_lambda=shared.lam.copy(),
    )
