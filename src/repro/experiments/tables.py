"""Paper reference values and plain-text table/series formatting.

Every benchmark prints its reproduced rows next to the paper's reported
numbers so the comparison is visible in the bench output and can be
copied into EXPERIMENTS.md.  Constants below are transcribed from the
paper (ICDE 2018, Tables IV-VIII and Figure 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TABLE4_ALEX",
    "PAPER_TABLE5_RESNET",
    "PAPER_FIG3_MIXTURES",
    "format_table",
    "format_table7",
    "format_table6",
    "format_mixture_rows",
    "format_timing_curves",
    "format_series",
]

# Table VI: accuracy on the deep models.
PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "alex": {"none": 0.777, "l2": 0.822, "gm": 0.830},
    "resnet": {"none": 0.901, "l2": 0.909, "gm": 0.921},
}

# Table VII: mean accuracy per dataset x method.
PAPER_TABLE7: Dict[str, Dict[str, float]] = {
    "Hosp-FA":         {"l1": 0.844, "l2": 0.842, "elastic": 0.847, "huber": 0.845, "gm": 0.848},
    "breast-canc":     {"l1": 0.963, "l2": 0.969, "elastic": 0.970, "huber": 0.970, "gm": 0.970},
    "breast-canc-dia": {"l1": 0.972, "l2": 0.979, "elastic": 0.981, "huber": 0.982, "gm": 0.981},
    "breast-canc-pro": {"l1": 0.818, "l2": 0.834, "elastic": 0.839, "huber": 0.834, "gm": 0.859},
    "climate-model":   {"l1": 0.965, "l2": 0.963, "elastic": 0.965, "huber": 0.967, "gm": 0.969},
    "congress-voting": {"l1": 0.968, "l2": 0.970, "elastic": 0.972, "huber": 0.972, "gm": 0.977},
    "conn-sonar":      {"l1": 0.803, "l2": 0.832, "elastic": 0.837, "huber": 0.830, "gm": 0.847},
    "credit-approval": {"l1": 0.867, "l2": 0.868, "elastic": 0.875, "huber": 0.874, "gm": 0.878},
    "cylindar-bands":  {"l1": 0.782, "l2": 0.791, "elastic": 0.795, "huber": 0.791, "gm": 0.798},
    "hepatitis":       {"l1": 0.866, "l2": 0.898, "elastic": 0.904, "huber": 0.898, "gm": 0.904},
    "horse-colic":     {"l1": 0.835, "l2": 0.842, "elastic": 0.864, "huber": 0.859, "gm": 0.870},
    "ionosphere":      {"l1": 0.906, "l2": 0.903, "elastic": 0.909, "huber": 0.909, "gm": 0.920},
}

# Table VIII: average accuracy per GM initialization method.
PAPER_TABLE8: Dict[str, Dict[str, float]] = {
    "alex": {"linear": 0.819, "identical": 0.802, "proportional": 0.817},
    "resnet": {"linear": 0.918, "identical": 0.912, "proportional": 0.916},
}

# Table IV: learned (pi, lambda) per Alex-CIFAR-10 layer.
PAPER_TABLE4_ALEX: Dict[str, Tuple[List[float], List[float]]] = {
    "conv1/weight": ([0.216, 0.784], [10.727, 835.959]),
    "conv2/weight": ([0.019, 0.981], [0.640, 1904.024]),
    "conv3/weight": ([0.013, 0.987], [0.095, 2017.931]),
    "dense/weight": ([0.036, 0.964], [3.939, 1277.578]),
}

# Table V: representative learned (pi, lambda) per ResNet layer.
PAPER_TABLE5_RESNET: Dict[str, Tuple[List[float], List[float]]] = {
    "conv1/weight": ([0.377, 0.623], [0.301, 8.106]),
    "2a-br1-conv1/weight": ([0.066, 0.934], [0.149, 22.620]),
    "2a-br1-conv2/weight": ([0.062, 0.938], [0.145, 23.016]),
    "3a-br2-conv/weight": ([0.152, 0.848], [0.195, 22.010]),
    "3a-br1-conv1/weight": ([0.047, 0.953], [0.141, 22.824]),
    "3a-br1-conv2/weight": ([0.032, 0.968], [0.121, 23.617]),
    "4a-br2-conv/weight": ([0.068, 0.932], [0.157, 22.733]),
    "4a-br1-conv1/weight": ([0.023, 0.977], [0.114, 23.868]),
    "4a-br1-conv2/weight": ([0.016, 0.984], [0.109, 24.396]),
    "ip5/weight": ([0.230, 0.770], [0.865, 6.979]),
}

# Figure 3: learned mixtures on two representative small datasets.
PAPER_FIG3_MIXTURES: Dict[str, Tuple[List[float], List[float]]] = {
    "horse-colic": ([0.326, 0.674], [1.270, 31.295]),
    "conn-sonar": ([0.345, 0.655], [0.062, 0.607]),
}


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Simple fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table7(comparisons, paper: Optional[Dict] = None) -> str:
    """Reproduced Table VII (with paper values in parentheses if given)."""
    paper = paper if paper is not None else PAPER_TABLE7
    methods = ["l1", "l2", "elastic", "huber", "gm"]
    headers = ["Dataset"] + [m.upper() for m in methods]
    rows = []
    for comp in comparisons:
        row = [comp.dataset]
        reference = paper.get(comp.dataset, {})
        for method in methods:
            result = comp.results.get(method)
            if result is None:
                row.append("-")
                continue
            cell = f"{result.mean_accuracy:.3f}±{result.stderr:.3f}"
            if method in reference:
                cell += f" (paper {reference[method]:.3f})"
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows)


def format_table6(results: Dict[str, object], model: str) -> str:
    """Reproduced Table VI column for one model."""
    reference = PAPER_TABLE6.get(model, {})
    rows = []
    for method in ("none", "l2", "gm"):
        if method not in results:
            continue
        result = results[method]
        rows.append(
            [
                {"none": "no regularization", "l2": "L2 Reg",
                 "gm": "GM regularization"}[method],
                f"{result.test_accuracy:.3f}",
                f"{result.train_accuracy:.3f}",
                f"{reference.get(method, float('nan')):.3f}",
            ]
        )
    return format_table(
        ["Method", "test acc", "train acc", "paper"], rows
    )


def format_mixture_rows(
    rows: Sequence[Tuple[str, List[float], List[float]]],
    paper: Optional[Dict[str, Tuple[List[float], List[float]]]] = None,
) -> str:
    """Reproduced Table IV/V layer rows."""
    out_rows = []
    for name, pi, lam in rows:
        pi_s = "[" + ", ".join(f"{p:.3f}" for p in pi) + "]"
        lam_s = "[" + ", ".join(f"{v:.3f}" for v in lam) + "]"
        ref = ""
        if paper and name in paper:
            rpi, rlam = paper[name]
            ref = f"paper pi={rpi} lam={rlam}"
        out_rows.append([name, pi_s, lam_s, ref])
    return format_table(["Layer", "pi", "lambda", "reference"], out_rows)


def format_timing_curves(curves) -> str:
    """Fig 5/6/7 endpoint summary: total time, speedup, accuracy."""
    slowest = max(c.total_seconds for c in curves)
    rows = [
        [
            c.label,
            f"{c.total_seconds:.2f}s",
            f"{slowest / max(c.total_seconds, 1e-12):.2f}x",
            f"{c.test_accuracy:.3f}",
        ]
        for c in curves
    ]
    return format_table(["Setting", "total time", "speedup", "test acc"], rows)


def format_series(
    label: str, xs: Sequence[object], ys: Sequence[float], fmt: str = ".3f"
) -> str:
    """One named x/y series (the text analogue of a figure line)."""
    pairs = ", ".join(f"{x}:{y:{fmt}}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
