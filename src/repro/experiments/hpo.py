"""GM adaptivity vs. classic hyper-parameter search (Section VI-B).

The paper positions adaptive GM regularization against hyper-parameter
optimization: grid/random search (and BO) must *train many models* to
find a good fixed regularization strength, while the GM tool adapts
within a single training run.  This module quantifies that trade-off:

- :func:`random_search_l2` — the random-search baseline: sample ``n``
  L2 strengths log-uniformly, train one model per candidate, pick by
  validation accuracy (Bergstra & Bengio, 2012 — reference [38]).
- :func:`grid_search_l2` — the classic grid variant.
- :func:`compare_hpo_budgets` — accuracy-vs-trainings curves: how many
  full trainings does search need to match one adaptive GM run?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core import GMRegularizer, L2Regularizer
from ..linear import LogisticRegression, accuracy
from ..optim import Trainer

__all__ = [
    "HPOTrial",
    "HPOResult",
    "random_search_l2",
    "grid_search_l2",
    "train_adaptive_gm",
    "compare_hpo_budgets",
]


@dataclass(frozen=True)
class HPOTrial:
    """One candidate evaluation."""

    strength: float
    val_accuracy: float


@dataclass(frozen=True)
class HPOResult:
    """Outcome of a search: trials, the pick, and its test accuracy."""

    trials: Tuple[HPOTrial, ...]
    best_strength: float
    test_accuracy: float

    @property
    def n_trainings(self) -> int:
        return len(self.trials) + 1  # candidates + final refit


def _train_l2(
    x_train, y_train, strength: float, epochs: int, lr: float, seed: int
) -> LogisticRegression:
    model = LogisticRegression(
        x_train.shape[1],
        regularizer=L2Regularizer(strength) if strength > 0 else None,
        rng=np.random.default_rng(seed),
    )
    Trainer(model, lr=lr, batch_size=32).fit(
        x_train, y_train, epochs=epochs, rng=np.random.default_rng(seed + 1)
    )
    return model


def _search_l2(
    candidates: Sequence[float],
    x_train, y_train, x_val, y_val, x_test, y_test,
    epochs: int, lr: float, seed: int,
) -> HPOResult:
    trials: List[HPOTrial] = []
    for i, strength in enumerate(candidates):
        model = _train_l2(x_train, y_train, strength, epochs, lr, seed + 7 * i)
        trials.append(HPOTrial(
            strength=float(strength),
            val_accuracy=accuracy(y_val, model.predict(x_val)),
        ))
    best = max(trials, key=lambda t: t.val_accuracy)
    final = _train_l2(
        np.concatenate([x_train, x_val]),
        np.concatenate([y_train, y_val]),
        best.strength, epochs, lr, seed + 999,
    )
    return HPOResult(
        trials=tuple(trials),
        best_strength=best.strength,
        test_accuracy=accuracy(y_test, final.predict(x_test)),
    )


def random_search_l2(
    x_train, y_train, x_val, y_val, x_test, y_test,
    n_trials: int = 8,
    strength_range: Tuple[float, float] = (1e-2, 1e3),
    epochs: int = 100,
    lr: float = 0.5,
    seed: int = 0,
) -> HPOResult:
    """Random search over the L2 strength (log-uniform)."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    lo, hi = strength_range
    if not 0 < lo < hi:
        raise ValueError(f"invalid strength_range {strength_range}")
    rng = np.random.default_rng(seed)
    candidates = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_trials))
    return _search_l2(candidates, x_train, y_train, x_val, y_val,
                      x_test, y_test, epochs, lr, seed)


def grid_search_l2(
    x_train, y_train, x_val, y_val, x_test, y_test,
    grid: Sequence[float] = (0.1, 1.0, 10.0, 100.0, 1000.0),
    epochs: int = 100,
    lr: float = 0.5,
    seed: int = 0,
) -> HPOResult:
    """Grid search over the L2 strength."""
    return _search_l2(grid, x_train, y_train, x_val, y_val,
                      x_test, y_test, epochs, lr, seed)


def train_adaptive_gm(
    x_train, y_train, x_val, y_val, x_test, y_test,
    epochs: int = 100,
    lr: float = 0.5,
    seed: int = 0,
) -> float:
    """One GM training run on train+val (no search loop needed)."""
    x_all = np.concatenate([x_train, x_val])
    y_all = np.concatenate([y_train, y_val])
    model = LogisticRegression(
        x_all.shape[1],
        regularizer=GMRegularizer(n_dimensions=x_all.shape[1]),
        rng=np.random.default_rng(seed),
    )
    Trainer(model, lr=lr, batch_size=32).fit(
        x_all, y_all, epochs=epochs, rng=np.random.default_rng(seed + 1)
    )
    return accuracy(y_test, model.predict(x_test))


def compare_hpo_budgets(
    x_train, y_train, x_val, y_val, x_test, y_test,
    budgets: Sequence[int] = (1, 2, 4, 8),
    epochs: int = 100,
    lr: float = 0.5,
    seed: int = 0,
) -> dict:
    """Random-search accuracy per training budget vs. one GM run.

    Returns ``{"gm": (accuracy, 1), "random@k": (accuracy, k+1), ...}``
    mapping each strategy to its test accuracy and the number of full
    trainings it consumed.
    """
    results = {
        "gm (adaptive)": (
            train_adaptive_gm(x_train, y_train, x_val, y_val,
                              x_test, y_test, epochs, lr, seed),
            1,
        )
    }
    for budget in budgets:
        outcome = random_search_l2(
            x_train, y_train, x_val, y_val, x_test, y_test,
            n_trials=budget, epochs=epochs, lr=lr, seed=seed,
        )
        results[f"random-search@{budget}"] = (
            outcome.test_accuracy, outcome.n_trainings
        )
    return results
