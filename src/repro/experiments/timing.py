"""Lazy-update timing experiments: Figures 5, 6 and 7.

The paper measures wall-clock training time as a function of the lazy
update intervals:

- **Figure 5**: cumulative time vs. epoch for ``Im`` in {1, 2, 5, 10,
  20, 50} (with ``Ig = Im``, ``E = 2``) against the L2 baseline, plus
  total convergence time per ``Im``.  Expected shape: linear growth,
  ``Im = 1`` slowest, ``Im = 50`` ~4x faster, L2 fastest.
- **Figure 6**: convergence time with ``Im = 50`` fixed and ``Ig`` in
  {50, 100, 200, 500}: increasing ``Ig`` keeps shaving time.
- **Figure 7**: cumulative time vs. epoch for the warm-up length ``E``
  in {1, 2, 5, 10, 20, 50}: smaller ``E`` is proportionally cheaper
  (E=1 is ~70% of E=50) with no accuracy drop.

Timings here are real wall-clock measurements of the numpy framework;
the *ratios*, not the absolute seconds, are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core import LazyUpdateSchedule
from .deep import DeepResult, DeepRunConfig, load_image_data, train_deep

__all__ = [
    "TimingCurve",
    "timing_bench_config",
    "run_im_sweep",
    "run_ig_sweep",
    "run_warmup_sweep",
    "format_phase_table",
    "speedup_table",
]


def timing_bench_config(**overrides) -> DeepRunConfig:
    """The calibrated configuration for the Figure 5-7 timing sweeps.

    Small images with many small batches make the per-iteration EM cost
    a material fraction of total step time — the regime the paper's GPU
    setup was in — so the lazy update delivers the paper's ~4x speedup
    at Im=50 (measured ~3-4x on CPU here) with the L2 baseline fastest.
    """
    defaults = dict(
        model="alex", image_size=8, n_train=300, n_test=100, epochs=12,
        width_scale=1.0, batch_size=10, noise=0.7,
    )
    defaults.update(overrides)
    return DeepRunConfig(**defaults)


@dataclass(frozen=True)
class TimingCurve:
    """Per-epoch cumulative seconds for one setting, plus the endpoint.

    Carries the run's per-phase timer totals (``phase_seconds``, from
    the trainer's :class:`~repro.telemetry.metrics.MetricsRegistry`) and
    the cumulative E-/M-step refresh counts, so sweeps can attribute
    savings to the phase the lazy schedule actually skipped instead of
    inferring them from whole-run wall-clock.
    """

    label: str
    epochs: np.ndarray
    cumulative_seconds: np.ndarray
    total_seconds: float
    test_accuracy: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    estep_refreshes: int = 0
    mstep_refreshes: int = 0

    @classmethod
    def from_result(cls, label: str, result: DeepResult) -> "TimingCurve":
        times = result.history.cumulative_times()
        gauges = result.metrics.get("gauges", {})
        return cls(
            label=label,
            epochs=np.arange(1, times.size + 1),
            cumulative_seconds=times,
            total_seconds=float(times[-1]) if times.size else 0.0,
            test_accuracy=result.test_accuracy,
            phase_seconds=result.phase_seconds(),
            estep_refreshes=int(gauges.get("em/estep_refreshes") or 0),
            mstep_refreshes=int(gauges.get("em/mstep_refreshes") or 0),
        )

    def em_seconds(self) -> float:
        """Total time in the regularizer phases (E-step + M-step)."""
        return (self.phase_seconds.get("estep", 0.0)
                + self.phase_seconds.get("mstep", 0.0))


def run_im_sweep(
    config: DeepRunConfig,
    im_values: Sequence[int] = (1, 2, 5, 10, 20, 50),
    eager_epochs: int = 2,
    include_baseline: bool = True,
) -> List[TimingCurve]:
    """Figure 5: one curve per ``Im`` (with ``Ig = Im``) plus L2 baseline."""
    data = load_image_data(config)
    curves: List[TimingCurve] = []
    for im in im_values:
        schedule = LazyUpdateSchedule(
            model_interval=im, gm_interval=im, eager_epochs=eager_epochs
        )
        result = train_deep(config, method="gm", schedule=schedule, data=data)
        curves.append(TimingCurve.from_result(f"Im={im}", result))
    if include_baseline:
        result = train_deep(config, method="l2", data=data)
        curves.append(TimingCurve.from_result("baseline", result))
    return curves


def run_ig_sweep(
    config: DeepRunConfig,
    im: int = 50,
    ig_values: Sequence[int] = (50, 100, 200, 500),
    eager_epochs: int = 2,
) -> List[TimingCurve]:
    """Figure 6: ``Im`` fixed, GM-parameter interval ``Ig`` increasing."""
    data = load_image_data(config)
    curves = []
    for ig in ig_values:
        if ig < im:
            raise ValueError(f"Ig ({ig}) should be >= Im ({im}), per Section V-F2")
        schedule = LazyUpdateSchedule(
            model_interval=im, gm_interval=ig, eager_epochs=eager_epochs
        )
        result = train_deep(config, method="gm", schedule=schedule, data=data)
        curves.append(TimingCurve.from_result(f"Ig={ig}&Im={im}", result))
    return curves


def run_warmup_sweep(
    config: DeepRunConfig,
    e_values: Sequence[int] = (1, 2, 5, 10, 20, 50),
    im: int = 50,
    include_baseline: bool = True,
) -> List[TimingCurve]:
    """Figure 7: warm-up length ``E`` sweep at fixed intervals."""
    data = load_image_data(config)
    curves = []
    for e in e_values:
        schedule = LazyUpdateSchedule(
            model_interval=im, gm_interval=im, eager_epochs=e
        )
        result = train_deep(config, method="gm", schedule=schedule, data=data)
        curves.append(TimingCurve.from_result(f"E={e}", result))
    if include_baseline:
        result = train_deep(config, method="l2", data=data)
        curves.append(TimingCurve.from_result("baseline", result))
    return curves


def format_phase_table(curves: Sequence[TimingCurve]) -> str:
    """Per-phase timer breakdown for a sweep (seconds per phase).

    The direct Figs. 5-7 measurement: E-step/M-step cost per setting
    from the trainer's phase timers, next to the refresh counts the
    lazy schedule allowed.
    """
    from .tables import format_table

    phases = ("estep", "grad", "mstep", "sgd")
    rows = []
    for curve in curves:
        rows.append(
            [curve.label]
            + [f"{curve.phase_seconds.get(p, 0.0):.2f}s" for p in phases]
            + [str(curve.estep_refreshes), str(curve.mstep_refreshes)]
        )
    return format_table(
        ["Setting", "E-step", "grad", "M-step", "SGD",
         "#E-steps", "#M-steps"],
        rows,
    )


def speedup_table(curves: Sequence[TimingCurve]) -> Dict[str, Tuple[float, float]]:
    """``{label: (total_seconds, speedup_vs_slowest)}`` for a sweep."""
    if not curves:
        raise ValueError("curves must be non-empty")
    slowest = max(c.total_seconds for c in curves)
    return {
        c.label: (c.total_seconds, slowest / max(c.total_seconds, 1e-12))
        for c in curves
    }
