"""Regularizer construction and cross-validation grids.

Maps the paper's five method names to regularizer instances and defines
the hyper-parameter grids each method is tuned over in the Table VII
protocol ("under their best settings", Section V).  The GM grid is the
paper's own gamma grid (Section V-B1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import (
    ElasticNetRegularizer,
    GMHyperParams,
    GMRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
    LazyUpdateSchedule,
    Regularizer,
    gamma_grid,
)

__all__ = ["METHODS", "make_regularizer", "default_grid"]

METHODS = ("none", "l1", "l2", "elastic", "huber", "gm")

# Strength grid for the fixed-form baselines.  Strengths are on the
# *prior* scale (the trainer applies the 1/N normalization), so values
# span from negligible to very strong regularization.
_STRENGTHS = (0.1, 1.0, 10.0, 100.0, 1000.0)


def make_regularizer(
    method: str,
    n_dimensions: int,
    params: Optional[Dict[str, object]] = None,
    weight_init_std: float = 0.1,
    schedule: Optional[LazyUpdateSchedule] = None,
) -> Optional[Regularizer]:
    """Instantiate the named regularizer with the given setting.

    Parameters
    ----------
    method:
        One of :data:`METHODS`.
    n_dimensions:
        ``M`` for the GM regularizer (ignored by fixed baselines).
    params:
        Method-specific setting, typically one entry of
        :func:`default_grid`.
    weight_init_std, schedule:
        Forwarded to :class:`GMRegularizer`.
    """
    params = dict(params or {})
    if method == "none":
        return None
    if method == "l1":
        return L1Regularizer(strength=float(params.get("strength", 1.0)))
    if method == "l2":
        return L2Regularizer(strength=float(params.get("strength", 1.0)))
    if method == "elastic":
        return ElasticNetRegularizer(
            strength=float(params.get("strength", 1.0)),
            l1_ratio=float(params.get("l1_ratio", 0.5)),
        )
    if method == "huber":
        return HuberRegularizer(
            strength=float(params.get("strength", 1.0)),
            mu=float(params.get("mu", 1.0)),
        )
    if method == "gm":
        hp = GMHyperParams(
            n_components=int(params.get("n_components", 4)),
            gamma=float(params.get("gamma", 0.005)),
            a_scale=float(params.get("a_scale", 0.01)),
            alpha_exponent=float(params.get("alpha_exponent", 0.5)),
        )
        return GMRegularizer(
            n_dimensions=n_dimensions,
            weight_init_std=weight_init_std,
            hyperparams=hp,
            init_method=str(params.get("init_method", "linear")),
            schedule=schedule,
        )
    raise ValueError(f"unknown method {method!r}; have {METHODS}")


def default_grid(method: str, compact: bool = False) -> List[Dict[str, object]]:
    """Cross-validation candidates for the Table VII protocol.

    ``compact=True`` halves the grids for the fast benchmark variants.
    """
    if method == "none":
        return [{}]
    strengths = _STRENGTHS[1::2] if compact else _STRENGTHS
    if method in ("l1", "l2"):
        return [{"strength": s} for s in strengths]
    if method == "elastic":
        ratios = (0.5,) if compact else (0.15, 0.5, 0.85)
        return [
            {"strength": s, "l1_ratio": r} for s in strengths for r in ratios
        ]
    if method == "huber":
        mus = (1.0,) if compact else (0.1, 1.0)
        return [{"strength": s, "mu": mu} for s in strengths for mu in mus]
    if method == "gm":
        gammas = gamma_grid()[1::2] if compact else gamma_grid()
        return [{"gamma": g} for g in gammas]
    raise ValueError(f"unknown method {method!r}; have {METHODS}")
