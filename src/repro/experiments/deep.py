"""Deep-learning experiments: Tables IV, V, VI, VIII and Figure 4.

The paper trains Alex-CIFAR-10 and ResNet-20 on CIFAR-10 with three
regularization modes (none / expert-tuned L2 / adaptive GM) and studies
the learned per-layer mixtures, the GM initialization strategies and
the Dirichlet exponent.  Offline, the same code paths run on the
synthetic CIFAR substitute at a configurable (laptop) scale; see
DESIGN.md for the substitution argument.

``DeepRunConfig`` defaults to the laptop scale used by the benchmark
harness; passing ``image_size=32, n_train=50000, width_scale=1.0,
n_blocks_per_stage=3, base_width=16`` recovers the paper-scale models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import GMHyperParams, GMRegularizer, L2Regularizer, LazyUpdateSchedule
from ..core.regularizers import Regularizer
from ..datasets import ImageDataset, make_cifar_like
from ..nn import Network, alex_cifar10, make_augmenter, resnet_cifar
from ..optim import Trainer, TrainingHistory

__all__ = [
    "DeepRunConfig",
    "DeepResult",
    "alex_bench_config",
    "resnet_bench_config",
    "DEFAULT_GAMMA",
    "build_model",
    "load_image_data",
    "train_deep",
    "run_table6",
    "layer_mixture_table",
    "run_init_alpha_sweep",
    "average_by_init",
]

# Expert-tuned per-layer L2 from Tables IV/V, expressed as *per-sample*
# decay so it transfers across training-set sizes: the paper's priors
# are lambda=200 (conv) / 50000 (dense) for Alex and 50 for every ResNet
# layer with N=50000 CIFAR images.  At bench scale (different N, lr and
# epoch budget) the same priors do not transfer, so these decays were
# re-tuned by grid search -- which is exactly what "expert-tuned" means
# in the paper.  The strength handed to the trainer is decay * N (the
# trainer divides by N again).
ALEX_EXPERT_L2_DECAY = {"conv": 0.008, "dense": 0.08}
RESNET_L2_DECAY = 0.004

# Calibrated default GM gamma per model at bench scale.  The Gamma-prior
# rate b = gamma * M caps the learned precisions; with N two orders of
# magnitude below the paper's, the effective decay lambda/N needs a much
# larger gamma for the BN-heavy ResNet to stay in a useful range.
DEFAULT_GAMMA = {"alex": 0.02, "resnet": 2.0}


def alex_bench_config(**overrides) -> "DeepRunConfig":
    """The calibrated laptop-scale Alex-CIFAR-10 configuration.

    At this scale the unregularized model overfits (train ~0.91, test
    ~0.74) and the Table VI ordering none < L2 < GM reproduces.
    """
    defaults = dict(model="alex")
    defaults.update(overrides)
    return DeepRunConfig(**defaults)


def resnet_bench_config(**overrides) -> "DeepRunConfig":
    """The calibrated laptop-scale ResNet configuration.

    Deviates from the paper in disabling augmentation and using small
    batches: at 300-sample scale the augmented ResNet does not overfit
    at all, so there would be nothing for any regularizer to do.  See
    EXPERIMENTS.md for the honest comparison.
    """
    defaults = dict(
        model="resnet", augment=False, epochs=40, batch_size=10, noise=1.2
    )
    defaults.update(overrides)
    return DeepRunConfig(**defaults)


@dataclass(frozen=True)
class DeepRunConfig:
    """One deep experiment's data + model + training configuration."""

    model: str = "alex"  # "alex" | "resnet"
    image_size: int = 16
    n_train: int = 300
    n_test: int = 500
    noise: float = 1.0
    epochs: int = 25
    lr: Optional[float] = None  # None = paper default per model
    momentum: float = 0.9
    batch_size: int = 50
    width_scale: float = 0.5  # alex filter-count multiplier
    n_blocks_per_stage: int = 1  # resnet depth parameter n
    base_width: int = 8  # resnet first-stage width
    augment: Optional[bool] = None  # None = paper default (resnet only)
    data_seed: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in ("alex", "resnet"):
            raise ValueError(f"model must be 'alex' or 'resnet', got {self.model!r}")

    @property
    def effective_lr(self) -> float:
        """Paper defaults: 0.001-scale for Alex, 0.1-scale for ResNet.

        At laptop scale with far fewer samples the paper's exact rates
        underfit within the epoch budget, so the defaults are the paper
        ratios scaled to converge at bench scale.
        """
        if self.lr is not None:
            return self.lr
        return 0.01 if self.model == "alex" else 0.05

    @property
    def effective_augment(self) -> bool:
        """Paper: augmentation for ResNet, none for Alex-CIFAR-10."""
        if self.augment is not None:
            return self.augment
        return self.model == "resnet"


@dataclass
class DeepResult:
    """Outcome of one deep training run."""

    config: DeepRunConfig
    method: str
    test_accuracy: float
    train_accuracy: float
    history: TrainingHistory
    layer_mixtures: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )  # weight name -> (pi, lam)
    metrics: Dict[str, Dict] = field(default_factory=dict)
    # ^ MetricsRegistry.snapshot() of the run: per-phase timers
    #   (phase/estep, phase/grad, phase/mstep, phase/sgd), counters and
    #   the em/*_refreshes gauges — what Figs. 5-7 read.

    def phase_seconds(self) -> Dict[str, float]:
        """``{phase: total_seconds}`` from the run's metrics snapshot."""
        return {
            name[len("phase/"):]: timer["total_seconds"]
            for name, timer in self.metrics.get("timers", {}).items()
            if name.startswith("phase/")
        }


def load_image_data(config: DeepRunConfig) -> ImageDataset:
    """The synthetic CIFAR split for this configuration."""
    return make_cifar_like(
        n_train=config.n_train,
        n_test=config.n_test,
        image_size=config.image_size,
        noise=config.noise,
        seed=config.data_seed,
    )


def build_model(config: DeepRunConfig) -> Network:
    """Instantiate the configured architecture."""
    if config.model == "alex":
        return alex_cifar10(
            image_size=config.image_size,
            width_scale=config.width_scale,
            seed=config.seed,
        )
    return resnet_cifar(
        n_blocks_per_stage=config.n_blocks_per_stage,
        base_width=config.base_width,
        seed=config.seed,
    )


def _expert_l2_factory(config: DeepRunConfig):
    """Per-layer expert-tuned L2, mirroring Tables IV/V."""
    def factory(name: str, _m: int, _std: float) -> Regularizer:
        if config.model == "alex":
            decay = (
                ALEX_EXPERT_L2_DECAY["dense"]
                if name.startswith("dense")
                else ALEX_EXPERT_L2_DECAY["conv"]
            )
        else:
            decay = RESNET_L2_DECAY
        return L2Regularizer(decay * config.n_train)
    return factory


def _gm_factory(
    config: DeepRunConfig,
    gamma: float,
    alpha_exponent: float,
    init_method: str,
    schedule: Optional[LazyUpdateSchedule],
    reg_kwargs: Optional[Dict] = None,
):
    """One GM regularizer per layer, calibrated to its init std."""
    def factory(name: str, m: int, weight_init_std: float) -> Regularizer:
        del name
        hp = GMHyperParams(gamma=gamma, alpha_exponent=alpha_exponent)
        return GMRegularizer(
            n_dimensions=m,
            weight_init_std=weight_init_std,
            hyperparams=hp,
            init_method=init_method,
            schedule=schedule,
            **(reg_kwargs or {}),
        )
    return factory


def train_deep(
    config: DeepRunConfig,
    method: str = "gm",
    gamma: Optional[float] = None,
    alpha_exponent: float = 0.5,
    init_method: str = "linear",
    schedule: Optional[LazyUpdateSchedule] = None,
    data: Optional[ImageDataset] = None,
    callbacks=None,
    reg_kwargs: Optional[Dict] = None,
    trainer_kwargs: Optional[Dict] = None,
    model_dtype=None,
) -> DeepResult:
    """Train one model under one regularization mode.

    Parameters
    ----------
    method:
        ``"none"``, ``"l2"`` (expert-tuned, per Tables IV/V) or ``"gm"``.
    gamma, alpha_exponent, init_method, schedule:
        GM settings (Section V-B1 policy; ignored by other methods).
    data:
        Pre-generated dataset to share across methods (else generated
        from the config).
    callbacks:
        Optional :class:`~repro.telemetry.events.Callback` observers
        forwarded to :meth:`Trainer.fit`.
    reg_kwargs:
        Extra :class:`~repro.core.GMRegularizer` keyword arguments — the
        hot-path benchmark toggles ``fused``/``kernel``/``compute_dtype``
        here.
    trainer_kwargs:
        Extra :class:`~repro.optim.Trainer` keyword arguments (e.g.
        ``stacked_em=False`` for the unfused baseline).
    model_dtype:
        Optional dtype the network is cast to after construction
        (``np.float32`` for the reduced-precision fast path); parameters
        are initialized in float64 first so both precisions start from
        identical values.
    """
    if method not in ("none", "l2", "gm"):
        raise ValueError(f"method must be none/l2/gm, got {method!r}")
    if gamma is None:
        gamma = DEFAULT_GAMMA[config.model]
    data = data or load_image_data(config)
    model = build_model(config)
    if model_dtype is not None:
        model.to_dtype(np.dtype(model_dtype))
    if method == "l2":
        model.attach_regularizers(_expert_l2_factory(config))
    elif method == "gm":
        model.attach_regularizers(
            _gm_factory(
                config, gamma, alpha_exponent, init_method, schedule,
                reg_kwargs,
            )
        )
    trainer = Trainer(
        model,
        lr=config.effective_lr,
        momentum=config.momentum,
        batch_size=config.batch_size,
        **(trainer_kwargs or {}),
    )
    augment = make_augmenter(pad=max(1, config.image_size // 8)) \
        if config.effective_augment else None
    history = trainer.fit(
        data.x_train,
        data.y_train,
        epochs=config.epochs,
        rng=np.random.default_rng(config.seed + 1),
        augment=augment,
        callbacks=callbacks,
    )
    test_acc = float(np.mean(model.predict(data.x_test) == data.y_test))
    train_acc = float(np.mean(model.predict(data.x_train) == data.y_train))
    mixtures: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, reg in model.weight_regularizers().items():
        if isinstance(reg, GMRegularizer):
            mixtures[name] = (reg.pi.copy(), reg.lam.copy())
    return DeepResult(
        config=config,
        method=method,
        test_accuracy=test_acc,
        train_accuracy=train_acc,
        history=history,
        layer_mixtures=mixtures,
        metrics=trainer.metrics.snapshot(),
    )


def run_table6(
    config: DeepRunConfig,
    methods: Sequence[str] = ("none", "l2", "gm"),
    **gm_kwargs,
) -> Dict[str, DeepResult]:
    """Table VI: accuracy under no / L2 / GM regularization."""
    data = load_image_data(config)
    return {
        method: train_deep(config, method=method, data=data, **gm_kwargs)
        for method in methods
    }


def layer_mixture_table(result: DeepResult) -> List[Tuple[str, List[float], List[float]]]:
    """Rows of Table IV/V: ``(layer, pi, lambda)`` sorted by layer name.

    Components are reported small-pi-first like the paper (the
    large-variance "informative" component first).
    """
    rows = []
    for name in sorted(result.layer_mixtures):
        pi, lam = result.layer_mixtures[name]
        order = np.argsort(lam)  # ascending precision = descending variance
        rows.append((name, list(pi[order]), list(lam[order])))
    return rows


def run_init_alpha_sweep(
    config: DeepRunConfig,
    init_methods: Sequence[str] = ("linear", "identical", "proportional"),
    alpha_exponents: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    gamma: Optional[float] = None,
) -> Dict[Tuple[str, float], DeepResult]:
    """Figure 4's grid: accuracy per (init method, alpha exponent)."""
    data = load_image_data(config)
    results: Dict[Tuple[str, float], DeepResult] = {}
    for init in init_methods:
        for exponent in alpha_exponents:
            results[(init, exponent)] = train_deep(
                config,
                method="gm",
                gamma=gamma,
                alpha_exponent=exponent,
                init_method=init,
                data=data,
            )
    return results


def average_by_init(
    sweep: Dict[Tuple[str, float], DeepResult]
) -> Dict[str, float]:
    """Table VIII: mean accuracy per init method over the alpha sweep."""
    by_init: Dict[str, List[float]] = {}
    for (init, _exponent), result in sweep.items():
        by_init.setdefault(init, []).append(result.test_accuracy)
    return {init: float(np.mean(vals)) for init, vals in by_init.items()}
