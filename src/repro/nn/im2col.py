"""im2col / col2im utilities for convolution and pooling.

The convolution and pooling layers lower their sliding-window
computation to matrix multiplication via the classic im2col transform
(as Caffe and SINGA do on CPU).  ``im2col`` unfolds ``(N, C, H, W)``
input into a ``(N * out_h * out_w, C * kh * kw)`` patch matrix;
``col2im`` scatters patch-space gradients back, summing overlaps.

Both transforms accept an optional
:class:`~repro.core.fusion.Workspace`: the patch matrix is ``k^2``
times larger than the activation it unfolds, so reallocating it every
iteration dominated the layers' allocation traffic.  With a workspace
the same buffers are reused across iterations (keyed per call site);
the values produced are identical either way — buffer reuse changes
*where* results are written, never *what* is computed.  A returned
array may be a view into its workspace and stays valid until the next
call with the same ``(workspace, key)`` pair.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

import numpy as np

from ..core.fusion import Workspace

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"window (kernel={kernel}, stride={stride}, pad={pad}) "
            f"does not fit input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    workspace: Optional[Workspace] = None,
    key: Hashable = "im2col",
) -> Tuple[np.ndarray, int, int]:
    """Unfold sliding windows into rows.

    Returns
    -------
    (col, out_h, out_w):
        ``col`` has shape ``(N * out_h * out_w, C * kh * kw)``; rows
        iterate images first, then output positions row-major.  With a
        ``workspace`` the array is a reused buffer (valid until the next
        call under the same key), otherwise freshly allocated.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        if workspace is None:
            img = np.pad(
                x, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant"
            )
        else:
            img = workspace.zeros(
                (key, "pad"), (n, c, h + 2 * pad, w + 2 * pad), x.dtype
            )
            img[:, :, pad : pad + h, pad : pad + w] = x
    else:
        img = x
    shape6 = (n, c, kh, kw, out_h, out_w)
    if workspace is None:
        col6 = np.empty(shape6, dtype=x.dtype)
    else:
        col6 = workspace.get((key, "col6"), shape6, x.dtype)
    for dy in range(kh):
        y_end = dy + stride * out_h
        for dx in range(kw):
            x_end = dx + stride * out_w
            col6[:, :, dy, dx, :, :] = img[:, :, dy:y_end:stride, dx:x_end:stride]
    rows = n * out_h * out_w
    cols = c * kh * kw
    if workspace is None:
        col = col6.transpose(0, 4, 5, 1, 2, 3).reshape(rows, cols)
    else:
        col = workspace.get((key, "col"), (rows, cols), x.dtype)
        np.copyto(
            col.reshape(n, out_h, out_w, c, kh, kw),
            col6.transpose(0, 4, 5, 1, 2, 3),
        )
    return col, out_h, out_w


def col2im(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    workspace: Optional[Workspace] = None,
    key: Hashable = "col2im",
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradients (overlaps are summed).

    With a ``workspace`` the returned gradient image is a reused buffer
    (a view when ``pad > 0``), valid until the next call under the same
    key — the backward chain consumes it immediately.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    padded_shape = (n, c, h + 2 * pad, w + 2 * pad)
    if workspace is None:
        img = np.zeros(padded_shape, dtype=col.dtype)
    else:
        img = workspace.zeros((key, "img"), padded_shape, col.dtype)
    for dy in range(kh):
        y_end = dy + stride * out_h
        for dx in range(kw):
            x_end = dx + stride * out_w
            img[:, :, dy:y_end:stride, dx:x_end:stride] += col6[:, :, dy, dx, :, :]
    if pad == 0:
        return img
    return img[:, :, pad : pad + h, pad : pad + w]
