"""im2col / col2im utilities for convolution and pooling.

The convolution and pooling layers lower their sliding-window
computation to matrix multiplication via the classic im2col transform
(as Caffe and SINGA do on CPU).  ``im2col`` unfolds ``(N, C, H, W)``
input into a ``(N * out_h * out_w, C * kh * kw)`` patch matrix;
``col2im`` scatters patch-space gradients back, summing overlaps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"window (kernel={kernel}, stride={stride}, pad={pad}) "
            f"does not fit input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold sliding windows into rows.

    Returns
    -------
    (col, out_h, out_w):
        ``col`` has shape ``(N * out_h * out_w, C * kh * kw)``; rows
        iterate images first, then output positions row-major.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    img = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant")
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for dy in range(kh):
        y_end = dy + stride * out_h
        for dx in range(kw):
            x_end = dx + stride * out_w
            col[:, :, dy, dx, :, :] = img[:, :, dy:y_end:stride, dx:x_end:stride]
    col = col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return col, out_h, out_w


def col2im(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradients (overlaps are summed)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for dy in range(kh):
        y_end = dy + stride * out_h
        for dx in range(kw):
            x_end = dx + stride * out_w
            img[:, :, dy:y_end:stride, dx:x_end:stride] += col6[:, :, dy, dx, :, :]
    if pad == 0:
        return img
    return img[:, :, pad : pad + h, pad : pad + w]
