"""Numerical gradient checking for layers and networks.

The backward passes in this framework are hand-derived; these helpers
compare them against central finite differences.  They are used by the
test suite for every layer type and for a whole small network, which is
the strongest correctness evidence a from-scratch framework can offer.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .layers.base import Layer

__all__ = ["numerical_gradient", "check_layer_gradients", "max_relative_error"]


def numerical_gradient(
    f: Callable[[], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``.

    ``x`` is perturbed in place and restored; ``f`` must re-read ``x``
    on every call.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """``max |a - n| / max(|a|, |n|, 1e-8)`` over all entries."""
    denom = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rng: np.random.Generator,
    eps: float = 1e-5,
) -> Tuple[float, dict]:
    """Compare a layer's backward pass against finite differences.

    The scalar objective is ``sum(forward(x) * R)`` for a fixed random
    ``R``, whose analytic gradient w.r.t. the output is exactly ``R``.

    Returns
    -------
    (input_error, param_errors):
        Max relative error for the input gradient and a dict of the
        same per parameter key.
    """
    out = layer.forward(x, training=True)
    r = rng.standard_normal(out.shape)

    def objective() -> float:
        return float(np.sum(layer.forward(x, training=True) * r))

    # Analytic gradients (recompute forward so caches match `objective`).
    layer.forward(x, training=True)
    grad_in = layer.backward(r.copy())
    input_error = max_relative_error(grad_in, numerical_gradient(objective, x, eps))

    param_errors = {}
    for key, value in layer.params.items():
        analytic = layer.grads[key].copy()
        numeric = numerical_gradient(objective, value, eps)
        param_errors[key] = max_relative_error(analytic, numeric)
    return input_error, param_errors
