"""The 20-layer CIFAR ResNet of Table III (He et al., 2016).

Structure for ``n = 3`` (the paper's setting):

- 3x3 conv, 16 filters + BN + ReLU;
- three stages of ``n`` residual blocks with 16, 32, 64 filters; the
  first block of stages 2 and 3 downsamples with stride 2 and a 3x3
  projection shortcut (the ``br2`` convolutions of the paper's Table V
  layer names);
- global average pooling and a 10-way softmax (named ``ip5`` in Table
  V; we keep that name for the dense layer so the reproduced table
  lines up with the paper's).

In total ``6n + 2 = 20`` weighted conv/dense layers.  Weights use He
initialization (paper reference [30]); per Section V-E the GM base
precision for each layer is one tenth of that layer's init precision.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    ReLU,
    ResidualBlock,
)
from ..layers.base import Layer
from ..network import Network

__all__ = ["resnet_cifar", "resnet20"]


def resnet_cifar(
    n_blocks_per_stage: int = 3,
    base_width: int = 16,
    in_channels: int = 3,
    n_classes: int = 10,
    seed: Optional[int] = None,
) -> Network:
    """Build a CIFAR ResNet with ``6n + 2`` weighted layers.

    Parameters
    ----------
    n_blocks_per_stage:
        ``n`` of He et al.; 3 gives the paper's 20-layer network.
    base_width:
        Filters in the first stage (paper: 16; stages use w, 2w, 4w).
    in_channels, n_classes:
        Input channels and classes.
    seed:
        Weight-init seed.
    """
    if n_blocks_per_stage < 1:
        raise ValueError(f"n_blocks_per_stage must be >= 1, got {n_blocks_per_stage}")
    if base_width < 1:
        raise ValueError(f"base_width must be >= 1, got {base_width}")
    rng = np.random.default_rng(seed)
    widths = [base_width, 2 * base_width, 4 * base_width]

    layers: List[Layer] = [
        Conv2D("conv1", in_channels, widths[0], 3, stride=1, pad=1, rng=rng),
        BatchNorm2D("bn1", widths[0]),
        ReLU("relu1"),
    ]
    in_c = widths[0]
    for stage, width in enumerate(widths, start=2):
        for block in range(n_blocks_per_stage):
            stride = 2 if (stage > 2 and block == 0) else 1
            name = f"{stage}{chr(ord('a') + block)}"
            layers.append(
                ResidualBlock(name, in_c, width, stride=stride, rng=rng)
            )
            in_c = width
    layers.append(GlobalAvgPool2D("gap"))
    # "ip5" is the dense layer's name in the paper's Table V.
    layers.append(Dense("ip5", in_c, n_classes, rng=rng))
    depth = 6 * n_blocks_per_stage + 2
    return Network(layers, name=f"ResNet-{depth}")


def resnet20(seed: Optional[int] = None, **kwargs) -> Network:
    """The paper's twenty-layer ResNet (``n = 3``)."""
    return resnet_cifar(n_blocks_per_stage=3, seed=seed, **kwargs)
