"""Alex-CIFAR-10: the small AlexNet-style CNN of Table III.

Architecture (paper Table III / the classic Caffe CIFAR-10 recipe):

1. 5x5 conv, 32 filters -> MaxPool -> ReLU -> LRN
2. 5x5 conv, 32 filters -> ReLU -> AvgPool -> LRN
3. 5x5 conv, 64 filters -> ReLU -> AvgPool
4. 10-way fully-connected softmax

With 32x32x3 inputs and 2x2/stride-2 pooling, the weight-only parameter
count is 2400 + 25600 + 51200 + 10240 = 89440 — exactly the model-
parameter dimension the paper reports, confirming it counts weights and
not biases.

All weights are initialized from a zero-mean Gaussian with std 0.1
(precision 100), matching Section V-E ("the precisions of initialized
model parameter is 100"), which calibrates the GM starting precisions
to ``min = 10``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)
from ..network import Network

__all__ = ["alex_cifar10", "ALEX_WEIGHT_INIT_STD"]

# Section V-E: non-ResNet models initialize weights with precision 100.
ALEX_WEIGHT_INIT_STD = 0.1


def alex_cifar10(
    image_size: int = 32,
    in_channels: int = 3,
    n_classes: int = 10,
    width_scale: float = 1.0,
    seed: Optional[int] = None,
) -> Network:
    """Build the Alex-CIFAR-10 network.

    Parameters
    ----------
    image_size:
        Input height = width; must be divisible by 8 (three stride-2
        pools).  The paper uses 32; the laptop-scale benches use 16.
    in_channels, n_classes:
        Input channels and output classes (paper: 3 and 10).
    width_scale:
        Multiplier on the filter counts (1.0 = the paper's 32/32/64),
        letting benchmarks run a narrower but structurally identical
        model.
    seed:
        Weight-init seed for reproducibility.
    """
    if image_size % 8 != 0:
        raise ValueError(f"image_size must be divisible by 8, got {image_size}")
    if width_scale <= 0.0:
        raise ValueError(f"width_scale must be positive, got {width_scale}")
    rng = np.random.default_rng(seed)
    c1 = max(1, int(round(32 * width_scale)))
    c2 = max(1, int(round(32 * width_scale)))
    c3 = max(1, int(round(64 * width_scale)))
    final_spatial = image_size // 8

    layers = [
        Conv2D("conv1", in_channels, c1, 5, stride=1, pad=2,
               weight_init_std=ALEX_WEIGHT_INIT_STD, rng=rng),
        MaxPool2D("pool1", window=2, stride=2),
        ReLU("relu1"),
        LocalResponseNorm("lrn1"),
        Conv2D("conv2", c1, c2, 5, stride=1, pad=2,
               weight_init_std=ALEX_WEIGHT_INIT_STD, rng=rng),
        ReLU("relu2"),
        AvgPool2D("pool2", window=2, stride=2),
        LocalResponseNorm("lrn2"),
        Conv2D("conv3", c2, c3, 5, stride=1, pad=2,
               weight_init_std=ALEX_WEIGHT_INIT_STD, rng=rng),
        ReLU("relu3"),
        AvgPool2D("pool3", window=2, stride=2),
        Flatten("flatten"),
        Dense("dense", c3 * final_spatial * final_spatial, n_classes,
              weight_init_std=ALEX_WEIGHT_INIT_STD, rng=rng),
    ]
    return Network(layers, name="Alex-CIFAR-10")
