"""Model architectures from Table III of the paper."""

from .alexnet import ALEX_WEIGHT_INIT_STD, alex_cifar10
from .resnet import resnet20, resnet_cifar

__all__ = ["alex_cifar10", "ALEX_WEIGHT_INIT_STD", "resnet_cifar", "resnet20"]
