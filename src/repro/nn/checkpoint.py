"""Save/load model weights as ``.npz`` archives.

Parameters are addressed by their qualified names (``conv1/weight``),
so a checkpoint is robust to adding or reordering *unparameterized*
layers but intentionally strict about parameter shapes.

The functions only require a ``parameters()`` method returning named
:class:`~repro.optim.trainer.Parameter` objects, so they work for any
:class:`~repro.optim.trainer.TrainableModel` — :class:`Network`,
logistic regression, or a custom model — which is what lets
:class:`~repro.telemetry.callbacks.CheckpointCallback` delegate here
for every trainer.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["network_state_dict", "load_network_state_dict",
           "save_network", "load_network_weights"]


def network_state_dict(model) -> Dict[str, np.ndarray]:
    """``{qualified_name: array copy}`` of all trainable parameters."""
    return {p.name: p.value.copy() for p in model.parameters()}


def load_network_state_dict(
    model, state: Dict[str, np.ndarray], strict: bool = True
) -> None:
    """Copy arrays from ``state`` into the model's parameters in place.

    Parameters
    ----------
    strict:
        When True (default), missing or extra names raise; when False,
        only names present on both sides are loaded.
    """
    own = {p.name: p.value for p in model.parameters()}
    missing = sorted(set(own) - set(state))
    extra = sorted(set(state) - set(own))
    if strict and (missing or extra):
        raise KeyError(
            f"state dict mismatch: missing={missing}, unexpected={extra}"
        )
    for name, value in state.items():
        if name not in own:
            continue
        target = own[name]
        value = np.asarray(value)
        if value.shape != target.shape:
            raise ValueError(
                f"{name}: shape {value.shape} does not match {target.shape}"
            )
        target[...] = value


def save_network(model, path: str) -> None:
    """Write all parameters to ``path`` (.npz).

    Qualified names contain ``/``, which ``np.savez`` keys handle fine.
    """
    np.savez(path, **network_state_dict(model))


def load_network_weights(model, path: str, strict: bool = True) -> None:
    """Load parameters written by :func:`save_network` into ``model``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    load_network_state_dict(model, state, strict=strict)
