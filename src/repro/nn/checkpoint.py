"""Save/load model weights as ``.npz`` archives.

Parameters are addressed by their qualified names (``conv1/weight``),
so a checkpoint is robust to adding or reordering *unparameterized*
layers but intentionally strict about parameter shapes.

The functions only require a ``parameters()`` method returning named
:class:`~repro.optim.trainer.Parameter` objects, so they work for any
:class:`~repro.optim.trainer.TrainableModel` — :class:`Network`,
logistic regression, or a custom model — which is what lets
:class:`~repro.telemetry.callbacks.CheckpointCallback` delegate here
for every trainer.

Both loaders return a :class:`LoadReport` naming exactly which
parameters were loaded, which model parameters had no counterpart in
the state dict (``missing``) and which state-dict entries had no
counterpart on the model (``unexpected``).  In strict mode a non-clean
report raises; in lenient mode the caller inspects the report — this is
what :class:`~repro.serve.registry.ModelRegistry` uses for its
checkpoint/architecture compatibility check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["LoadReport", "network_state_dict", "load_network_state_dict",
           "save_network", "load_network_weights"]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of loading a state dict into a model.

    Attributes
    ----------
    loaded:
        Qualified names copied into the model.
    missing:
        Model parameters the state dict had no entry for (stale
        checkpoint or grown architecture).
    unexpected:
        State-dict entries the model has no parameter for (shrunk
        architecture or a checkpoint from a different model).
    """

    loaded: Tuple[str, ...]
    missing: Tuple[str, ...]
    unexpected: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True when every name matched on both sides."""
        return not (self.missing or self.unexpected)

    def __str__(self) -> str:
        return (
            f"LoadReport(loaded={len(self.loaded)}, "
            f"missing={list(self.missing)}, unexpected={list(self.unexpected)})"
        )


def network_state_dict(model: Any) -> Dict[str, np.ndarray]:
    """``{qualified_name: array copy}`` of all trainable parameters."""
    return {p.name: p.value.copy() for p in model.parameters()}


def load_network_state_dict(
    model: Any, state: Dict[str, np.ndarray], strict: bool = True
) -> LoadReport:
    """Copy arrays from ``state`` into the model's parameters in place.

    Parameters
    ----------
    strict:
        When True (default), missing or extra names raise; when False,
        only names present on both sides are loaded and the returned
        :class:`LoadReport` says which ones were skipped.

    Returns
    -------
    LoadReport
        Loaded / missing / unexpected qualified names.
    """
    own = {p.name: p.value for p in model.parameters()}
    missing = tuple(sorted(set(own) - set(state)))
    unexpected = tuple(sorted(set(state) - set(own)))
    if strict and (missing or unexpected):
        raise KeyError(
            f"state dict mismatch: missing={list(missing)}, "
            f"unexpected={list(unexpected)}"
        )
    loaded = []
    for name, value in state.items():
        if name not in own:
            continue
        target = own[name]
        value = np.asarray(value)
        if value.shape != target.shape:
            raise ValueError(
                f"{name}: shape {value.shape} does not match {target.shape}"
            )
        target[...] = value
        loaded.append(name)
    return LoadReport(tuple(sorted(loaded)), missing, unexpected)


def save_network(model, path: str) -> None:
    """Write all parameters to ``path`` (.npz).

    Qualified names contain ``/``, which ``np.savez`` keys handle fine.
    """
    np.savez(path, **network_state_dict(model))


def load_network_weights(model, path: str, strict: bool = True) -> LoadReport:
    """Load parameters written by :func:`save_network` into ``model``.

    Returns the :class:`LoadReport` from
    :func:`load_network_state_dict`, so ``strict=False`` callers can see
    which keys were missing or unexpected instead of having them
    silently skipped.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    return load_network_state_dict(model, state, strict=strict)
