"""Sequential network container implementing ``TrainableModel``.

A :class:`Network` is an ordered stack of layers ending (implicitly) in
a softmax cross-entropy head.  It exposes the paper's integration
surface: after construction, :meth:`attach_regularizers` walks the
layers and attaches a per-layer regularizer to every weight tensor —
for the GM tool one :class:`~repro.core.GMRegularizer` per layer, each
calibrated from that layer's actual ``weight_init_std`` (Section V-E)
and learning its own ``(pi, lambda)`` (Tables IV/V).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.regularizers import Regularizer
from ..optim.trainer import Parameter
from .layers.base import Layer
from .layers.loss import SoftmaxCrossEntropy

__all__ = ["Network", "RegularizerFactory"]

# factory(layer_name, n_dimensions, weight_init_std) -> Regularizer | None
RegularizerFactory = Callable[[str, int, float], Optional[Regularizer]]


class Network:
    """A feed-forward stack of layers with a softmax cross-entropy head."""

    def __init__(self, layers: List[Layer], name: str = "network"):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        self.layers = list(layers)
        self.loss_head = SoftmaxCrossEntropy()
        self._parameters: List[Parameter] = []
        self._grad_refs: List[np.ndarray] = []
        self._weight_regularizers: Dict[str, Regularizer] = {}
        self._dtype: Optional[np.dtype] = None
        self._rebuild_parameters()

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def _rebuild_parameters(self) -> None:
        self._parameters = []
        self._grad_refs = []
        for layer in self.layers:
            for qualified, value, grad in layer.parameter_items():
                reg = self._weight_regularizers.get(qualified)
                self._parameters.append(Parameter(qualified, value, reg))
                self._grad_refs.append(grad)

    def attach_regularizers(self, factory: RegularizerFactory) -> None:
        """Attach a regularizer to every *weight* tensor.

        ``factory`` receives the qualified parameter name (e.g.
        ``"conv1/weight"``), the tensor's scalar dimension count ``M``
        and the layer's weight-init std, and returns a regularizer or
        ``None``.  Biases and normalization parameters never get one.
        """
        self._weight_regularizers.clear()
        for layer in self.layers:
            self._attach_for_layer(layer, factory)
        self._rebuild_parameters()

    def _attach_for_layer(self, layer: Layer, factory: RegularizerFactory) -> None:
        children = getattr(layer, "children", None)
        if callable(children):
            for child in children():
                self._attach_for_layer(child, factory)
            return
        for key in layer.regularizable_keys():
            value = layer.params[key]
            init_std = float(getattr(layer, "weight_init_std", 0.1))
            reg = factory(f"{layer.name}/{key}", value.size, init_std)
            if reg is not None:
                self._weight_regularizers[f"{layer.name}/{key}"] = reg

    def weight_regularizers(self) -> Dict[str, Regularizer]:
        """``{qualified_weight_name: regularizer}`` currently attached."""
        return dict(self._weight_regularizers)

    # ------------------------------------------------------------------
    # Compute dtype (the float32 fast path)
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> Optional[np.dtype]:
        """Compute dtype set by :meth:`to_dtype` (``None`` = float64)."""
        return self._dtype

    def to_dtype(self, dtype) -> "Network":
        """Cast every layer's parameters and state to ``dtype`` in place.

        The float32 fast path: layers initialize in float64 (identical
        starting values across precisions), then the assembled network
        is converted once.  Inputs are cast on entry to :meth:`forward`,
        so the whole forward/backward pipeline — im2col patch matrices,
        BLAS matmuls, activation caches — runs at the reduced precision
        and halved memory traffic.  Call *before*
        :meth:`attach_regularizers` / trainer construction so
        regularizers and optimizer state bind the cast arrays.

        Returns ``self`` for chaining.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(f"dtype must be floating, got {dtype}")
        self._dtype = None if dtype == np.dtype(np.float64) else dtype
        for layer in self.layers:
            layer.cast_params(dtype)
        self._rebuild_parameters()
        return self

    # ------------------------------------------------------------------
    # TrainableModel interface
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return self._parameters

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        logits = self.forward(x, training=True)
        loss, grad = self.loss_head.loss_and_gradient(logits, y)
        self.backward(grad)
        return loss, list(self._grad_refs)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions, evaluated in inference mode in chunks."""
        outputs = []
        for lo in range(0, x.shape[0], batch_size):
            logits = self.forward(x[lo : lo + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        out = x if self._dtype is None else np.asarray(x, dtype=self._dtype)
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    @property
    def n_parameters(self) -> int:
        """Total scalar parameter count (the paper reports 89440 for
        Alex-CIFAR-10 and 270896 for ResNet-20 at full scale)."""
        return int(sum(p.value.size for p in self._parameters))

    def summary(self) -> str:
        """One line per layer with its parameter count."""
        lines = [f"Network {self.name!r}: {self.n_parameters} parameters"]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:24s} {type(layer).__name__:18s}"
                f" {layer.n_parameters:8d} params"
            )
        return "\n".join(lines)
