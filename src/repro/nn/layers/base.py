"""Layer base class of the from-scratch deep-learning framework.

The paper integrates its regularization tool with Apache SINGA, a
layer-based deep-learning platform.  This package is the offline
substitute: a small but complete layer framework with explicit
forward/backward passes, in the style of SINGA/Caffe.

Conventions shared by every layer:

- activations are ``(N, ...)`` numpy arrays with the batch first;
  convolutional tensors use ``(N, C, H, W)``;
- ``forward(x, training)`` returns the output and caches whatever the
  backward pass needs;
- ``backward(grad_out)`` consumes the gradient w.r.t. the output and
  returns the gradient w.r.t. the input, accumulating parameter
  gradients into ``grads`` (aligned with ``params``);
- parameters are exposed as named numpy arrays so the trainer can
  attach per-layer regularizers to the *weights* and leave biases and
  normalization scales unregularized, as the paper does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base class: a (possibly parameterless) differentiable transform."""

    def __init__(self, name: str):
        self.name = name
        # Parallel dicts: parameter arrays and their gradient accumulators.
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Compute the layer output; cache state needed by backward."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the input; fills ``self.grads`` for parameters."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def add_param(self, key: str, value: np.ndarray) -> np.ndarray:
        """Register a trainable array and its zeroed gradient buffer.

        Parameters are always created in float64 so every precision
        starts from identical values; :meth:`cast_params` converts an
        assembled model to a lower compute dtype afterwards.
        """
        value = np.ascontiguousarray(value, dtype=np.float64)
        self.params[key] = value
        self.grads[key] = np.zeros_like(value)
        return value

    def cast_params(self, dtype: np.dtype) -> None:
        """Convert every parameter and gradient buffer to ``dtype``.

        The float32 fast path: parameters are initialized in float64
        (identical starting values across precisions) and cast in place
        here.  Both the ``params``/``grads`` dicts and any instance
        attributes aliasing the same arrays (``self.weight`` et al.) are
        rebound, so layer code keeps working unchanged.  Composite
        layers recurse into ``children()``; layers holding non-parameter
        state in other dtypes override :meth:`cast_extras`.
        """
        dtype = np.dtype(dtype)
        children = getattr(self, "children", None)
        if callable(children):
            for child in children():
                child.cast_params(dtype)
        for key, value in list(self.params.items()):
            if value.dtype == dtype:
                continue
            old_grad = self.grads[key]
            new_value = np.ascontiguousarray(value, dtype=dtype)
            new_grad = old_grad.astype(dtype)
            for attr, ref in list(vars(self).items()):
                if ref is value:
                    setattr(self, attr, new_value)
                elif ref is old_grad:
                    setattr(self, attr, new_grad)
            self.params[key] = new_value
            self.grads[key] = new_grad
        self.cast_extras(dtype)

    def cast_extras(self, dtype: np.dtype) -> None:
        """Hook for non-parameter floating state (e.g. batch-norm running
        statistics); the base layer has none."""

    def parameter_items(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """``(qualified_name, value, grad)`` triples for the trainer."""
        return [
            (f"{self.name}/{key}", self.params[key], self.grads[key])
            for key in self.params
        ]

    @property
    def n_parameters(self) -> int:
        """Total scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def regularizable_keys(self) -> List[str]:
        """Parameter keys that should carry a regularizer.

        By default only ``"weight"`` — biases, batch-norm scales and
        offsets stay unregularized, matching standard weight-decay
        practice and the paper's per-layer weight GMs.
        """
        return [key for key in self.params if key == "weight"]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
