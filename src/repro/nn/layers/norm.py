"""Normalization layers: batch normalization and local response norm.

The Alex-CIFAR-10 model of Table III uses **LRN** (local response
normalization across channels, Krizhevsky et al. 2012); the ResNet uses
**batch normalization** — which the paper notes acts as an implicit
regularizer and is why ResNet benefits less from explicit L2 (Section
V-B3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Layer

__all__ = ["BatchNorm2D", "LocalResponseNorm"]


class BatchNorm2D(Layer):
    """Per-channel batch normalization for ``(N, C, H, W)`` tensors.

    Running statistics (exponential moving average) are used at
    inference time.  The scale ``gamma`` and offset ``beta`` are
    trainable but *not* regularized (see
    :meth:`Layer.regularizable_keys`).
    """

    def __init__(self, name: str, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__(name)
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.channels = int(channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = self.add_param("gamma", np.ones(channels))
        self.beta = self.add_param("beta", np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: Optional[dict] = None

    def cast_extras(self, dtype: np.dtype) -> None:
        """Running statistics follow the compute dtype: left at float64
        they would silently upcast every inference forward."""
        self.running_mean = self.running_mean.astype(dtype)
        self.running_var = self.running_var.astype(dtype)

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: expected (N, {self.channels}, H, W), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma[None, :, None, None] * x_hat
            + self.beta[None, :, None, None]
        )
        if training:
            self._cache = {"x_hat": x_hat, "inv_std": inv_std}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        n, _, h, w = grad_out.shape
        m = n * h * w
        self.grads["gamma"][...] = (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"][...] = grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_in = (
            inv_std[None, :, None, None] / m * (m * g - sum_g - x_hat * sum_gx)
        )
        return grad_in


class LocalResponseNorm(Layer):
    """Across-channel LRN (Krizhevsky et al., 2012).

    ``y_c = x_c / (k + (alpha / n) * sum_{c' in window} x_{c'}^2) ** beta``

    with a window of ``n`` adjacent channels centered at ``c``.  The
    Caffe CIFAR-10 "alexnet" recipe uses n=3, alpha=5e-5, beta=0.75,
    which are the defaults here.
    """

    def __init__(
        self,
        name: str,
        size: int = 3,
        alpha: float = 5e-5,
        beta: float = 0.75,
        k: float = 1.0,
    ):
        super().__init__(name)
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = int(size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._cache: Optional[dict] = None

    def _window_sum_sq(self, x: np.ndarray) -> np.ndarray:
        """Per-channel windowed sum of squares across channels."""
        sq = x * x
        c = x.shape[1]
        half = self.size // 2
        # Cumulative-sum trick along the channel axis.
        padded = np.zeros((x.shape[0], c + 1) + x.shape[2:], dtype=x.dtype)
        np.cumsum(sq, axis=1, out=padded[:, 1:])
        lo = np.clip(np.arange(c) - half, 0, c)
        hi = np.clip(np.arange(c) + half + 1, 0, c)
        return padded[:, hi] - padded[:, lo]

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected (N, C, H, W), got {x.shape}")
        window = self._window_sum_sq(x)
        denom_base = self.k + (self.alpha / self.size) * window
        denom = denom_base**self.beta
        out = x / denom
        if training:
            self._cache = {"x": x, "denom_base": denom_base, "denom": denom}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        x = self._cache["x"]
        denom_base = self._cache["denom_base"]
        denom = self._cache["denom"]
        # dy_c/dx_c (direct) and the cross-channel term through the window.
        direct = grad_out / denom
        # For each channel c', sum over channels c whose window contains c':
        # dL/dx_{c'} -= 2 alpha beta / n * x_{c'} * sum_c [g_c x_c / base_c^{beta+1}]
        inner = grad_out * x / (denom_base ** (self.beta + 1.0))
        c = x.shape[1]
        half = self.size // 2
        padded = np.zeros((x.shape[0], c + 1) + x.shape[2:], dtype=x.dtype)
        np.cumsum(inner, axis=1, out=padded[:, 1:])
        lo = np.clip(np.arange(c) - half, 0, c)
        hi = np.clip(np.arange(c) + half + 1, 0, c)
        window_inner = padded[:, hi] - padded[:, lo]
        cross = (2.0 * self.alpha * self.beta / self.size) * x * window_inner
        return direct - cross
