"""Shape adapters."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Collapse ``(N, ...)`` to ``(N, prod(...))`` before a dense head."""

    def __init__(self, name: str):
        super().__init__(name)
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        self._input_shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        return grad_out.reshape(self._input_shape)
