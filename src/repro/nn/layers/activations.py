"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Layer

__all__ = ["ReLU", "Sigmoid", "Tanh"]


class ReLU(Layer):
    """Rectified linear unit, the paper's activation throughout."""

    def __init__(self, name: str):
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        mask = x > 0.0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        return np.where(self._mask, grad_out, 0.0)


class Sigmoid(Layer):
    """Logistic activation (provided for completeness / examples)."""

    def __init__(self, name: str):
        super().__init__(name)
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float64)
        out = np.empty_like(x, dtype=dtype)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ez = np.exp(x[~pos])
        out[~pos] = ez / (1.0 + ez)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: str):
        super().__init__(name)
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        return grad_out * (1.0 - self._out * self._out)
