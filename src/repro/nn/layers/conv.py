"""2-D convolution layer (im2col-based)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.fusion import Workspace
from ...rng import default_generator
from ..im2col import col2im, im2col
from .base import Layer

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """Cross-correlation with learned filters, ``(N, C, H, W)`` layout.

    Parameters
    ----------
    name:
        Layer name.
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel extent (the paper uses 5x5 and 3x3).
    stride, pad:
        Stride and symmetric zero padding.
    weight_init_std:
        Std of the Gaussian weight init.  ``None`` = He initialization
        ``sqrt(2 / (in_channels * k * k))``, the scheme the paper's
        ResNet uses ([30] in the paper); the value actually used is
        exposed as :attr:`weight_init_std` for GM calibration.
    rng:
        Seeded generator.
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        weight_init_std: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ValueError("channels, kernel_size and stride must be >= 1")
        if pad < 0:
            raise ValueError(f"pad must be >= 0, got {pad}")
        rng = rng if rng is not None else default_generator()
        fan_in = in_channels * kernel_size * kernel_size
        if weight_init_std is None:
            weight_init_std = float(np.sqrt(2.0 / fan_in))
        self.weight_init_std = float(weight_init_std)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.pad = int(pad)
        self.weight = self.add_param(
            "weight",
            rng.normal(
                0.0,
                self.weight_init_std,
                size=(out_channels, in_channels, kernel_size, kernel_size),
            ),
        )
        self.bias = self.add_param("bias", np.zeros(out_channels))
        self._col: Optional[np.ndarray] = None
        self._input_shape: Optional[tuple] = None
        # Per-layer buffer cache: the im2col patch matrix is k^2 times
        # the activation size, and reallocating it every iteration
        # dominated this layer's allocation traffic.  Training and
        # inference use distinct keys so an eval forward between a
        # training forward and its backward cannot clobber the cached
        # patch matrix.
        self._workspace = Workspace()

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        k = self.kernel_size
        col, out_h, out_w = im2col(
            x, k, k, self.stride, self.pad,
            workspace=self._workspace,
            key="im2col/train" if training else "im2col/eval",
        )
        w_mat = self.weight.reshape(self.out_channels, -1).T  # (C*k*k, OC)
        out = col @ w_mat + self.bias
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._col = col
            self._input_shape = x.shape
        else:
            self._col = None
            self._input_shape = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._col is None or self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        k = self.kernel_size
        # (N, OC, OH, OW) -> (N*OH*OW, OC) aligned with im2col rows.
        grad_mat = np.ascontiguousarray(
            grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        )
        self.grads["weight"][...] = (
            (self._col.T @ grad_mat).T.reshape(self.weight.shape)
        )
        self.grads["bias"][...] = grad_mat.sum(axis=0)
        grad_col = self._workspace.get(
            ("grad_col",), (grad_mat.shape[0], self._col.shape[1]),
            grad_mat.dtype,
        )
        np.matmul(
            grad_mat, self.weight.reshape(self.out_channels, -1), out=grad_col
        )
        return col2im(
            grad_col, self._input_shape, k, k, self.stride, self.pad,
            workspace=self._workspace,
        )
