"""Fully connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...rng import default_generator
from .base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    name:
        Layer name (weights appear as ``<name>/weight`` to the trainer).
    in_features, out_features:
        Input/output widths.
    weight_init_std:
        Std of the zero-mean Gaussian weight init.  ``None`` uses He
        initialization ``sqrt(2 / in_features)``; the GM regularizer's
        starting precisions are derived from the value actually used,
        exposed as :attr:`weight_init_std`.
    rng:
        Seeded generator for initialization.
    """

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        weight_init_std: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise ValueError("in_features and out_features must be >= 1")
        rng = rng if rng is not None else default_generator()
        if weight_init_std is None:
            weight_init_std = float(np.sqrt(2.0 / in_features))
        self.weight_init_std = float(weight_init_std)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = self.add_param(
            "weight",
            rng.normal(0.0, self.weight_init_std, size=(in_features, out_features)),
        )
        self.bias = self.add_param("bias", np.zeros(out_features))
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        self.grads["weight"][...] = self._x.T @ grad_out
        self.grads["bias"][...] = grad_out.sum(axis=0)
        return grad_out @ self.weight.T
