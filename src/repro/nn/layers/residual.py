"""Residual block (He et al., 2016) as a composite layer.

Matches the ResNet rows of Table III: two 3x3 convolutions with batch
norm and ReLU in the residual branch ("br1" in the paper's Table V
naming), an identity shortcut within a stage, and a 3x3 stride-2
projection convolution ("br2") at stage transitions where the channel
count doubles and the spatial extent halves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...rng import default_generator
from .base import Layer
from .conv import Conv2D
from .norm import BatchNorm2D

__all__ = ["ResidualBlock"]


class ResidualBlock(Layer):
    """``out = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))``.

    Parameters
    ----------
    name:
        Block name; children are named ``<name>-br1-conv1``,
        ``<name>-br1-conv2`` and (when projecting) ``<name>-br2-conv``,
        mirroring the layer names of the paper's Table V.
    in_channels, out_channels:
        Channel counts; differing counts force a projection shortcut.
    stride:
        Stride of the first convolution (2 at stage transitions).
    rng:
        Seeded generator shared by the child convolutions.
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        rng = rng if rng is not None else default_generator()
        self.conv1 = Conv2D(
            f"{name}-br1-conv1", in_channels, out_channels, 3, stride=stride,
            pad=1, rng=rng,
        )
        self.bn1 = BatchNorm2D(f"{name}-br1-bn1", out_channels)
        self.conv2 = Conv2D(
            f"{name}-br1-conv2", out_channels, out_channels, 3, stride=1,
            pad=1, rng=rng,
        )
        self.bn2 = BatchNorm2D(f"{name}-br1-bn2", out_channels)
        self.projection: Optional[Conv2D] = None
        self.projection_bn: Optional[BatchNorm2D] = None
        if stride != 1 or in_channels != out_channels:
            self.projection = Conv2D(
                f"{name}-br2-conv", in_channels, out_channels, 3, stride=stride,
                pad=1, rng=rng,
            )
            self.projection_bn = BatchNorm2D(f"{name}-br2-bn", out_channels)
        self._relu_mask1: Optional[np.ndarray] = None
        self._relu_mask_out: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def children(self) -> List[Layer]:
        """Child layers in forward order (projection last)."""
        kids: List[Layer] = [self.conv1, self.bn1, self.conv2, self.bn2]
        if self.projection is not None:
            kids.append(self.projection)
            if self.projection_bn is None:
                raise RuntimeError(
                    f"{self.name}: projection exists without projection_bn"
                )
            kids.append(self.projection_bn)
        return kids

    def parameter_items(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        items: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for child in self.children():
            items.extend(child.parameter_items())
        return items

    @property
    def n_parameters(self) -> int:
        return int(sum(child.n_parameters for child in self.children()))

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        branch = self.conv1.forward(x, training)
        branch = self.bn1.forward(branch, training)
        mask1 = branch > 0.0
        branch = np.where(mask1, branch, 0.0)
        branch = self.conv2.forward(branch, training)
        branch = self.bn2.forward(branch, training)
        if self.projection is not None:
            if self.projection_bn is None:
                raise RuntimeError(
                    f"{self.name}: projection exists without projection_bn"
                )
            shortcut = self.projection_bn.forward(
                self.projection.forward(x, training), training
            )
        else:
            shortcut = x
        out = branch + shortcut
        mask_out = out > 0.0
        out = np.where(mask_out, out, 0.0)
        if training:
            self._relu_mask1 = mask1
            self._relu_mask_out = mask_out
        else:
            self._relu_mask1 = None
            self._relu_mask_out = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._relu_mask1 is None or self._relu_mask_out is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        grad = np.where(self._relu_mask_out, grad_out, 0.0)
        # Residual branch.
        grad_branch = self.bn2.backward(grad)
        grad_branch = self.conv2.backward(grad_branch)
        grad_branch = np.where(self._relu_mask1, grad_branch, 0.0)
        grad_branch = self.bn1.backward(grad_branch)
        grad_branch = self.conv1.backward(grad_branch)
        # Shortcut branch.
        if self.projection is not None:
            if self.projection_bn is None:
                raise RuntimeError(
                    f"{self.name}: projection exists without projection_bn"
                )
            grad_shortcut = self.projection.backward(
                self.projection_bn.backward(grad)
            )
        else:
            grad_shortcut = grad
        return grad_branch + grad_shortcut
