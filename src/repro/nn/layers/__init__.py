"""Layer zoo of the from-scratch deep-learning framework."""

from .activations import ReLU, Sigmoid, Tanh
from .base import Layer
from .conv import Conv2D
from .dense import Dense
from .dropout import Dropout
from .flatten import Flatten
from .loss import SoftmaxCrossEntropy, softmax
from .norm import BatchNorm2D, LocalResponseNorm
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .residual import ResidualBlock

__all__ = [
    "Layer",
    "Dense",
    "Dropout",
    "Conv2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "LocalResponseNorm",
    "ResidualBlock",
    "SoftmaxCrossEntropy",
    "softmax",
]
