"""Softmax cross-entropy loss head.

All the paper's deep models end in a "10-way softmax" (Table III); the
loss is the mean negative log likelihood, i.e. the data-misfit term of
Equation (1).  Softmax and cross-entropy are fused for the standard
numerically stable gradient ``(softmax(z) - onehot(y)) / N``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + mean cross-entropy over integer class labels."""

    def loss_and_gradient(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean NLL and its gradient w.r.t. the logits.

        Parameters
        ----------
        logits:
            ``(N, n_classes)`` unnormalized scores.
        labels:
            ``(N,)`` integer class indices.
        """
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got {logits.shape}")
        n = logits.shape[0]
        if labels.shape != (n,):
            raise ValueError(
                f"labels must be shape ({n},), got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError(
                f"labels out of range [0, {logits.shape[1]}): "
                f"[{labels.min()}, {labels.max()}]"
            )
        probs = softmax(logits)
        nll = -np.log(probs[np.arange(n), labels] + 1e-12)
        loss = float(nll.mean())
        grad = probs
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return loss, grad
