"""Inverted dropout (extension baseline).

Not part of the paper's comparison set, but the most common *implicit*
regularizer in deep learning and a natural extension baseline for the
Table VI study.  Uses the inverted formulation: activations are scaled
by ``1 / keep_prob`` at training time so inference is a plain identity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...rng import default_generator
from .base import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Randomly zero activations with probability ``drop_prob``.

    Parameters
    ----------
    name:
        Layer name.
    drop_prob:
        Probability of zeroing each activation during training.
    rng:
        Seeded generator; required for reproducible training runs.
    """

    def __init__(
        self,
        name: str,
        drop_prob: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.drop_prob = float(drop_prob)
        self._rng = rng if rng is not None else default_generator()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if not training or self.drop_prob <= 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.drop_prob
        dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float64)
        mask = (self._rng.random(x.shape) < keep).astype(dtype) / dtype.type(keep)
        self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # Training forward ran with drop_prob == 0 (identity).
            if self.drop_prob <= 0.0:
                return grad_out
            raise RuntimeError(f"{self.name}: backward before training forward")
        return grad_out * self._mask
