"""Max and average pooling layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.fusion import Workspace
from ..im2col import col2im, im2col
from .base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared plumbing for window pooling over ``(N, C, H, W)``."""

    def __init__(self, name: str, window: int, stride: Optional[int] = None, pad: int = 0):
        super().__init__(name)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if pad < 0:
            raise ValueError(f"pad must be >= 0, got {pad}")
        self.window = int(window)
        self.stride = int(stride) if stride is not None else int(window)
        self.pad = int(pad)
        self._cache: Optional[dict] = None
        # Reused im2col/col2im buffers; train/eval keys kept separate so
        # a mid-iteration inference pass cannot clobber training state.
        self._workspace = Workspace()

    def _unfold(self, x: np.ndarray, training: bool):
        n, c, h, w = x.shape
        k = self.window
        col, out_h, out_w = im2col(
            x, k, k, self.stride, self.pad,
            workspace=self._workspace,
            key="im2col/train" if training else "im2col/eval",
        )
        # Rows: (N*OH*OW, C*k*k) -> (N*OH*OW*C, k*k), pooling per channel;
        # im2col rows are laid out [c][kh][kw], so a plain reshape splits
        # channels correctly.
        col = col.reshape(-1, k * k)
        return col, out_h, out_w, (n, c, h, w)


class MaxPool2D(_Pool2D):
    """Max pooling (``MaxPooling`` rows of Table III)."""

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        col, out_h, out_w, shape = self._unfold(x, training)
        n, c, _, _ = shape
        argmax = col.argmax(axis=1)
        out = col[np.arange(col.shape[0]), argmax]
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if training:
            self._cache = {
                "argmax": argmax,
                "col_shape": col.shape,
                "input_shape": shape,
                "out_hw": (out_h, out_w),
            }
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        cache = self._cache
        n, c, _, _ = cache["input_shape"]
        grad_rows = grad_out.transpose(0, 2, 3, 1).reshape(-1)  # rows*C
        grad_col = self._workspace.zeros(
            ("grad_col",), cache["col_shape"], grad_out.dtype
        )
        grad_col[np.arange(grad_col.shape[0]), cache["argmax"]] = grad_rows
        k = self.window
        grad_col = grad_col.reshape(-1, c * k * k)
        return col2im(
            grad_col, cache["input_shape"], k, k, self.stride, self.pad,
            workspace=self._workspace,
        )


class AvgPool2D(_Pool2D):
    """Average pooling (``AvgPooling`` rows of Table III)."""

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        col, out_h, out_w, shape = self._unfold(x, training)
        n, c, _, _ = shape
        out = col.mean(axis=1)
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if training:
            self._cache = {"col_shape": col.shape, "input_shape": shape}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        cache = self._cache
        n, c, _, _ = cache["input_shape"]
        k = self.window
        grad_rows = grad_out.transpose(0, 2, 3, 1).reshape(-1)
        grad_col = np.repeat(grad_rows[:, None], k * k, axis=1) / (k * k)
        grad_col = grad_col.reshape(-1, c * k * k)
        return col2im(
            grad_col, cache["input_shape"], k, k, self.stride, self.pad,
            workspace=self._workspace,
        )


class GlobalAvgPool2D(Layer):
    """Spatial mean over the whole feature map (ResNet's final pooling)."""

    def __init__(self, name: str):
        super().__init__(name)
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected (N, C, H, W), got {x.shape}")
        self._input_shape = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before training forward")
        n, c, h, w = self._input_shape
        grad = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, (n, c, h, w)).copy()
