"""From-scratch layer-based deep-learning framework (the SINGA substitute).

Provides the layers, networks and model architectures the paper's deep
experiments need: conv/pool/LRN/BN/dense layers with hand-derived
backward passes (all verified against finite differences in the test
suite), a :class:`Network` container implementing the trainer's
``TrainableModel`` protocol, the Alex-CIFAR-10 and ResNet-20 models of
Table III, and the ResNet pad-crop/flip augmentation.
"""

from .augment import make_augmenter, pad_crop_flip
from .checkpoint import (
    LoadReport,
    load_network_state_dict,
    load_network_weights,
    network_state_dict,
    save_network,
)
from .gradcheck import check_layer_gradients, max_relative_error, numerical_gradient
from .layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
    softmax,
)
from .models import ALEX_WEIGHT_INIT_STD, alex_cifar10, resnet20, resnet_cifar
from .network import Network, RegularizerFactory

__all__ = [
    "Layer",
    "Dense",
    "Dropout",
    "Conv2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "LocalResponseNorm",
    "ResidualBlock",
    "SoftmaxCrossEntropy",
    "softmax",
    "Network",
    "RegularizerFactory",
    "network_state_dict",
    "LoadReport",
    "load_network_state_dict",
    "save_network",
    "load_network_weights",
    "alex_cifar10",
    "ALEX_WEIGHT_INIT_STD",
    "resnet_cifar",
    "resnet20",
    "pad_crop_flip",
    "make_augmenter",
    "numerical_gradient",
    "check_layer_gradients",
    "max_relative_error",
]
