"""Data augmentation for the ResNet experiments.

The paper performs data augmentation for ResNet but not for
Alex-CIFAR-10 (Section V-A).  The standard CIFAR recipe it follows (He
et al., 2016) is: pad 4 pixels on each side, take a random crop of the
original size, and flip horizontally with probability 0.5.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pad_crop_flip", "make_augmenter"]


def pad_crop_flip(
    batch: np.ndarray,
    rng: np.random.Generator,
    pad: int = 4,
    flip_probability: float = 0.5,
) -> np.ndarray:
    """Randomly pad-crop and horizontally flip a ``(N, C, H, W)`` batch."""
    if batch.ndim != 4:
        raise ValueError(f"batch must be (N, C, H, W), got {batch.shape}")
    if pad < 0:
        raise ValueError(f"pad must be >= 0, got {pad}")
    n, _, h, w = batch.shape
    padded = np.pad(batch, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant")
    out = np.empty_like(batch)
    offsets_y = rng.integers(0, 2 * pad + 1, size=n)
    offsets_x = rng.integers(0, 2 * pad + 1, size=n)
    flips = rng.random(n) < flip_probability
    for i in range(n):
        crop = padded[i, :, offsets_y[i] : offsets_y[i] + h,
                      offsets_x[i] : offsets_x[i] + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out


def make_augmenter(pad: int = 4, flip_probability: float = 0.5):
    """An ``(batch, rng) -> batch`` callable for ``Trainer.fit(augment=...)``."""
    def augment(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return pad_crop_flip(batch, rng, pad=pad, flip_probability=flip_probability)
    return augment
