"""Command-line experiment runner: ``python -m repro <experiment>``.

Exposes every reproduced table and figure as a subcommand so results
can be regenerated without pytest:

    python -m repro table2
    python -m repro table7 --datasets horse-colic conn-sonar
    python -m repro fig5 --epochs 8
    python -m repro all --fast

Beyond the experiments, the ``repro.serve`` subsystem is exposed as two
subcommands (not part of ``all``):

    python -m repro serve --requests 200 --registry models/
    python -m repro predict --registry models/ --input rows.npy --proba

``serve`` trains a small model on the synthetic dataset, publishes it
to a model registry, starts a micro-batching server, replays concurrent
predict traffic against it and verifies the serving metrics — the CI
smoke test for the serving layer.  ``predict`` scores rows from a
``.npy``/``.npz`` file with the registry's active model version.

Observability surfaces (see ``docs/RUNBOOK.md``):

    python -m repro serve --requests 200 --metrics-port 0 \\
        --trace-out spans.jsonl --chaos
    python -m repro metrics --from-json BENCH_serve.json
    python -m repro trace summarize --span-log spans.jsonl

``--metrics-port`` exposes the server's metrics registry in Prometheus
text format on a stdlib HTTP thread (port 0 picks an ephemeral port;
the smoke scrapes itself once and validates the exposition).
``--trace-out`` writes a JSONL span log of every request's trace;
``repro trace summarize`` aggregates such a log into a per-operation
self/total-time table and renders one trace's critical path.

``--fast`` shrinks every experiment to roughly example scale.
``--telemetry-out run.jsonl`` writes a structured JSONL event log of
every training run the command performs (per-epoch losses, per-phase
E-step/M-step timers, GM state) and ``--log-metrics`` prints each run's
phase-timer summary to stderr; see :mod:`repro.telemetry`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .datasets import UCI_SPECS, make_uci_dataset, uci_dataset_names
from .experiments import (
    PAPER_FIG3_MIXTURES,
    PAPER_TABLE4_ALEX,
    PAPER_TABLE5_RESNET,
    PAPER_TABLE7,
    PAPER_TABLE8,
    SmallRunConfig,
    alex_bench_config,
    average_by_init,
    fit_gm_mixture_for_dataset,
    format_mixture_rows,
    format_series,
    format_table,
    format_table6,
    format_table7,
    format_timing_curves,
    layer_mixture_table,
    resnet_bench_config,
    run_ig_sweep,
    run_im_sweep,
    run_init_alpha_sweep,
    run_table6,
    run_table7,
    run_warmup_sweep,
    timing_bench_config,
    train_deep,
)
from .telemetry import (
    JsonlRunLogger,
    JsonlSpanExporter,
    MetricsServer,
    MetricsSummary,
    Tracer,
    format_summary_table,
    format_trace_tree,
    load_spans,
    longest_trace,
    render_exposition,
    summarize_spans,
    use_callbacks,
    validate_exposition,
)

__all__ = ["main"]


def _cmd_table2(_args) -> None:
    rows = []
    for name in uci_dataset_names():
        dataset = make_uci_dataset(name, seed=0)
        rows.append([name, dataset.n_samples, dataset.encoded_dim(),
                     dataset.feature_type])
    print(format_table(["Dataset", "# Samples", "# Features", "Type"], rows))


def _cmd_table4(args) -> None:
    config = alex_bench_config(epochs=8 if args.fast else 25)
    result = train_deep(config, method="gm")
    print(format_mixture_rows(layer_mixture_table(result), PAPER_TABLE4_ALEX))
    print(f"test accuracy: {result.test_accuracy:.3f}")


def _cmd_table5(args) -> None:
    config = resnet_bench_config(epochs=10 if args.fast else 40)
    result = train_deep(config, method="gm")
    print(format_mixture_rows(layer_mixture_table(result), PAPER_TABLE5_RESNET))
    print(f"test accuracy: {result.test_accuracy:.3f}")


def _cmd_table6(args) -> None:
    for model, config in (
        ("alex", alex_bench_config(epochs=10 if args.fast else 25)),
        ("resnet", resnet_bench_config(epochs=15 if args.fast else 40)),
    ):
        print(f"--- {model} ---")
        print(format_table6(run_table6(config), model))


def _cmd_table7(args) -> None:
    datasets = args.datasets or list(PAPER_TABLE7.keys())
    if args.fast:
        config = SmallRunConfig(n_subsamples=2, cv_folds=2,
                                compact_grids=True, epochs=80)
    else:
        config = SmallRunConfig(n_subsamples=3, cv_folds=2,
                                compact_grids=True)
    print(format_table7(run_table7(datasets, config)))


def _cmd_table8(args) -> None:
    config = alex_bench_config(epochs=6 if args.fast else 10)
    table8 = average_by_init(run_init_alpha_sweep(config))
    rows = [[m, f"{a:.3f}", f"{PAPER_TABLE8['alex'].get(m, float('nan')):.3f}"]
            for m, a in table8.items()]
    print(format_table(["Init method", "avg accuracy", "paper"], rows))


def _cmd_fig3(_args) -> None:
    for name in ("horse-colic", "conn-sonar"):
        mixture = fit_gm_mixture_for_dataset(name)
        paper_pi, paper_lam = PAPER_FIG3_MIXTURES[name]
        print(f"{name}: pi={np.round(mixture.pi, 3).tolist()} "
              f"lambda={np.round(mixture.lam, 3).tolist()} "
              f"A/B={np.round(mixture.crossovers, 3).tolist()} "
              f"[paper pi={paper_pi} lambda={paper_lam}]")


def _cmd_fig4(args) -> None:
    config = alex_bench_config(epochs=6 if args.fast else 10)
    sweep = run_init_alpha_sweep(config)
    alphas = sorted({a for _i, a in sweep})
    for init in ("linear", "identical", "proportional"):
        series = [sweep[(init, a)].test_accuracy for a in alphas]
        print(format_series(f"{init:12s}", alphas, series))


def _cmd_fig5(args) -> None:
    config = timing_bench_config(epochs=args.epochs or (6 if args.fast else 12))
    curves = run_im_sweep(config, im_values=(1, 2, 5, 10, 20, 50),
                          eager_epochs=2)
    print(format_timing_curves(curves))


def _cmd_fig6(args) -> None:
    config = timing_bench_config(epochs=args.epochs or (6 if args.fast else 12))
    curves = run_ig_sweep(config, im=50, ig_values=(50, 100, 200, 500),
                          eager_epochs=2)
    print(format_timing_curves(curves))


def _cmd_fig7(args) -> None:
    config = timing_bench_config(epochs=args.epochs or (6 if args.fast else 12))
    curves = run_warmup_sweep(config, e_values=(1, 2, 5, 10), im=50)
    print(format_timing_curves(curves))


# ----------------------------------------------------------------------
# Serving subcommands (repro.serve)
# ----------------------------------------------------------------------
def _train_demo_model(seed: int = 0, fast: bool = False):
    """Train a small readmission-style model on the synthetic dataset."""
    from .datasets.preprocessing import TabularEncoder
    from .datasets.synthetic import CategoricalSpec, TabularSchema, generate_dataset
    from .linear.logistic import LogisticRegression
    from .optim.trainer import Trainer

    schema = TabularSchema(
        n_continuous=12,
        categorical=(CategoricalSpec("ward", 4), CategoricalSpec("payer", 3)),
        predictive_fraction=0.4,
    )
    rng = np.random.default_rng(seed)
    table, labels, _weights = generate_dataset(
        schema, n_samples=200 if fast else 600, rng=rng
    )
    encoder = TabularEncoder()
    x = encoder.fit_transform(table)
    model = LogisticRegression(x.shape[1], rng=np.random.default_rng(seed + 1))
    Trainer(model, lr=0.5, batch_size=64).fit(
        x, labels, epochs=2 if fast else 8, rng=np.random.default_rng(seed + 2)
    )
    return model, x


def _cmd_serve(args) -> None:
    """Serve smoke test: publish, replay concurrent traffic, verify.

    With ``--chaos`` the replay runs under the seeded fault injector
    (model/registry errors and latency spikes, cache corruption) behind
    the default resilience policy — the smoke then additionally asserts
    that chaos changed no answer and dropped no request.
    """
    from concurrent.futures import ThreadPoolExecutor

    from .linear.logistic import LogisticRegression
    from .serve import (
        CircuitBreaker,
        FaultInjector,
        ModelRegistry,
        ModelServer,
        ResiliencePolicy,
        RetryPolicy,
    )

    n_requests = args.requests
    model, x = _train_demo_model(fast=args.fast)
    rows = x[np.arange(n_requests) % x.shape[0]]
    expected = model.predict(rows)

    registry = ModelRegistry(args.registry)
    registry.register(
        args.name,
        lambda: LogisticRegression(model.n_features, weight_init_std=0.0),
    )
    version = registry.publish(args.name, model)
    print(f"published {args.name}:{version} "
          f"({registry.metadata(args.name, version)['n_parameters']} params)")

    tracer = None
    exporter = None
    if args.trace_out:
        exporter = JsonlSpanExporter(path=args.trace_out)
        tracer = Tracer(exporter=exporter, sample_rate=args.trace_sample)
        print(f"tracing to {args.trace_out} "
              f"(sample_rate={args.trace_sample})")

    injector = None
    resilience = None
    if args.chaos:
        injector = FaultInjector.chaos(
            error_rate=0.1,
            latency_rate=0.05,
            latency_seconds=0.01,
            corruption_rate=0.1,
            seed=args.chaos_seed,
        )
        # Extra attempts push the per-call drop probability to
        # error_rate**max_attempts ~ 1e-6; delays stay small so the
        # smoke remains quick.
        resilience = ResiliencePolicy(
            retry=RetryPolicy(
                max_attempts=6,
                base_delay=0.001,
                max_delay=0.01,
                seed=args.chaos_seed,
            ),
            registry_breaker=CircuitBreaker(
                name="registry", reset_timeout=0.2
            ),
        )
        print(f"chaos enabled (seed={args.chaos_seed}): "
              "10% errors, 5% latency spikes, 10% cache corruption")

    server = ModelServer(
        registry=registry,
        name=args.name,
        max_batch_size=args.max_batch,
        workers=args.serve_workers,
        resilience=resilience,
        fault_injector=injector,
        tracer=tracer,
    )
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            server.metrics, port=args.metrics_port,
            extra={"/health": lambda: repr(server.health())},
        )
        print(f"metrics exposed at {metrics_server.url}")
    with server, ThreadPoolExecutor(max_workers=16) as pool:
        got = np.array(list(pool.map(server.predict, rows)))
        health = server.health()
    stats = server.stats()

    # Self-scrape once: the exposition endpoint is part of the smoke's
    # contract, so an invalid scrape fails the run like a wrong answer.
    scrape_problems: List[str] = []
    if metrics_server is not None:
        import urllib.request

        with urllib.request.urlopen(metrics_server.url, timeout=5) as response:
            body = response.read().decode("utf-8")
        scrape_problems = validate_exposition(body)
        print(f"scraped {metrics_server.url}: "
              f"{len(body.splitlines())} lines, "
              f"{len(scrape_problems)} problems")
        metrics_server.close()
    if tracer is not None:
        tracer_stats = tracer.stats()
        print(f"traces: started={tracer_stats['started']} "
              f"sampled={tracer_stats['sampled']} "
              f"finished={tracer_stats['finished']}")
    if exporter is not None:
        exporter.close()

    failures = []
    failures.extend(
        f"exposition invalid: {problem}" for problem in scrape_problems
    )
    if not np.array_equal(got, expected):
        failures.append("served predictions differ from direct predictions")
    if stats["requests"] != n_requests:
        failures.append(
            f"requests_total={stats['requests']} != issued {n_requests}"
        )
    counters = stats["metrics"]["counters"]
    # Every request is answered by exactly one path: cache hit, shed to
    # inline, deadline-expired to inline, a row of a dispatched batch,
    # or (under chaos) a rescue of a failed batch's row.
    accounted = (
        counters.get("serve/cache_hits_total", 0.0)
        + stats["shed"]
        + counters.get("serve/deadline_expired_total", 0.0)
        + stats["metrics"]["histograms"]["serve/batch_size"].get("sum", 0.0)
        + stats["rescued"]
    )
    if accounted != n_requests:
        failures.append(
            f"request accounting mismatch: {accounted} != {n_requests}"
        )
    if health["status"] not in ("ok", "degraded"):
        failures.append(f"unexpected health status {health['status']!r}")
    if not server.closed:
        failures.append("server did not shut down cleanly")

    print(f"requests={stats['requests']:.0f} batches={stats['batches']:.0f} "
          f"mean_batch={stats['mean_batch_size']:.1f} "
          f"shed={stats['shed']:.0f} "
          f"cache_hit_rate={stats['cache_hit_rate']:.2f}")
    if "latency_p50_ms" in stats:
        print(f"latency p50={stats['latency_p50_ms']:.3f}ms "
              f"p99={stats['latency_p99_ms']:.3f}ms")
    if args.chaos:
        injected = sum(
            value for key, value in counters.items()
            if key.startswith("resilience/faults/")
        )
        print(f"chaos: injected={injected:.0f} retries={stats['retries']:.0f} "
              f"rescued={stats['rescued']:.0f} "
              f"stale_served={stats['stale_model_served']:.0f} "
              f"cache_corruptions="
              f"{server.cache.stats()['corruptions']} "
              f"health={health['status']} breakers={health['breakers']}")
    if failures:
        for failure in failures:
            print(f"serve smoke FAILED: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("serve smoke test OK")


def _cmd_serve_sharded(args) -> None:
    """Sharded serve smoke: replay traffic over N worker processes.

    Publishes the demo model, stands up a
    :class:`~repro.serve.sharding.server.ShardedModelServer`, replays
    concurrent traffic, then verifies bit-identical labels against the
    direct model, the per-path request accounting identity, and a
    healthy per-shard status report.
    """
    from concurrent.futures import ThreadPoolExecutor

    from .linear.logistic import LogisticRegression
    from .serve import ModelRegistry, ShardedModelServer

    n_requests = args.requests
    model, x = _train_demo_model(fast=args.fast)
    rows = x[np.arange(n_requests) % x.shape[0]]
    expected = model.predict(rows)

    registry = ModelRegistry(args.registry)
    registry.register(
        args.name,
        lambda: LogisticRegression(model.n_features, weight_init_std=0.0),
    )
    version = registry.publish(args.name, model)
    print(f"published {args.name}:{version}")

    tracer = None
    exporter = None
    if args.trace_out:
        exporter = JsonlSpanExporter(path=args.trace_out)
        tracer = Tracer(exporter=exporter, sample_rate=args.trace_sample)
        print(f"tracing to {args.trace_out} "
              f"(sample_rate={args.trace_sample})")

    server = ShardedModelServer(
        registry=registry,
        name=args.name,
        n_shards=args.shards,
        max_batch_size=args.max_batch,
        tracer=tracer,
    )
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            server.metrics, port=args.metrics_port,
            extra={"/health": lambda: repr(server.health())},
        )
        print(f"metrics exposed at {metrics_server.url}")
    with server, ThreadPoolExecutor(max_workers=16) as pool:
        got = np.array(list(pool.map(server.predict, rows)))
        health = server.health()
        stats = server.stats()
    if metrics_server is not None:
        metrics_server.close()
    if exporter is not None:
        exporter.close()

    failures = []
    if not np.array_equal(got, expected):
        failures.append("sharded predictions differ from direct predictions")
    if stats["requests"] != n_requests:
        failures.append(
            f"requests_total={stats['requests']} != issued {n_requests}"
        )
    counters = stats["metrics"]["counters"]
    accounted = (
        counters.get("serve/cache_hits_total", 0.0)
        + stats["shed"]
        + counters.get("serve/deadline_expired_total", 0.0)
        + stats["metrics"]["histograms"]["serve/batch_size"].get("sum", 0.0)
        + stats["rescued"]
    )
    if accounted != n_requests:
        failures.append(
            f"request accounting mismatch: {accounted} != {n_requests}"
        )
    if health["status"] not in ("ok", "degraded"):
        failures.append(f"unexpected health status {health['status']!r}")
    if health["alive_shards"] != args.shards:
        failures.append(
            f"alive_shards={health['alive_shards']} != {args.shards}"
        )

    print(f"shards={args.shards} requests={stats['requests']:.0f} "
          f"batches={stats['batches']:.0f} "
          f"mean_batch={stats['mean_batch_size']:.1f} "
          f"shed={stats['shed']:.0f} rescued={stats['rescued']:.0f} "
          f"cache_hit_rate={stats['cache_hit_rate']:.2f}")
    print("shard split: " + ", ".join(
        f"{shard}:{count:.0f}"
        for shard, count in sorted(stats["shard_requests"].items())
    ))
    for status in health["shards"]:
        print(f"  shard {status['shard']}: alive={status['alive']} "
              f"version={status['active_version']} "
              f"queue={status['queue_depth']} "
              f"breaker={status['breaker']} "
              f"respawns={status['respawns']}")
    if failures:
        for failure in failures:
            print(f"sharded serve smoke FAILED: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("sharded serve smoke test OK")


def _cmd_loadgen(args) -> None:
    """Replay a seeded traffic mix against a (sharded) server.

    Prints the per-shard QPS / p50 / p99 table; with ``--kill-shard``
    the run SIGKILLs that worker mid-replay and the command fails if
    any request was dropped or errored (the chaos drill from
    ``docs/RUNBOOK.md``).
    """
    from .loadgen import LoadGenerator, TrafficMix, build_schedule
    from .serve import ModelServer, ShardedModelServer

    model, x = _train_demo_model(fast=args.fast)
    mix = (
        TrafficMix.closed_loop()
        if args.mix == "closed_loop"
        else TrafficMix.heavy_tail(mean_gap=0.0002 * args.time_scale)
    )
    schedule = build_schedule(
        mix, n_requests=args.requests, n_rows=min(64, len(x)),
        seed=args.chaos_seed,
    )
    if args.shards > 0:
        server = ShardedModelServer(
            model=model, n_shards=args.shards,
            max_batch_size=args.max_batch,
        )
    else:
        server = ModelServer(
            model=model, max_batch_size=args.max_batch,
            workers=args.serve_workers,
        )
    kill = None
    if args.kill_shard is not None:
        if args.shards <= 0:
            print("--kill-shard requires --shards >= 1", file=sys.stderr)
            raise SystemExit(2)
        kill = (args.requests // 2, args.kill_shard)
    with server:
        generator = LoadGenerator(
            server, schedule, x[:64], workers=8, mix_name=mix.name,
            time_scale=args.time_scale, kill_shard_at=kill,
            metrics=server.metrics,
        )
        report = generator.run()
        health = server.health()
    print(f"mix={mix.name} requests={report.n_requests} "
          f"duration={report.duration_seconds:.2f}s qps={report.qps:.0f}")
    print(report.format_table())
    failures = []
    if report.n_requests != args.requests:
        failures.append(
            f"dropped requests: answered {report.n_requests} of "
            f"{args.requests}"
        )
    if report.errors:
        failures.append(f"{report.errors} requests errored")
    if kill is not None:
        respawns = sum(
            status.get("respawns", 0) for status in health["shards"]
        )
        print(f"chaos: killed shard {args.kill_shard} mid-run, "
              f"respawns={respawns}")
        if respawns < 1:
            failures.append("kill drill ran but no respawn was recorded")
    if failures:
        for failure in failures:
            print(f"loadgen FAILED: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("loadgen OK")


def _cmd_predict(args) -> None:
    """Score rows from ``--input`` with the registry's active model."""
    from .serve import ModelRegistry

    if not args.registry or not args.input:
        print("predict requires --registry and --input", file=sys.stderr)
        raise SystemExit(2)
    loaded = np.load(args.input)
    rows = loaded["x"] if hasattr(loaded, "files") else loaded
    registry = ModelRegistry(args.registry)
    active = registry.active(args.name)
    print(f"# {args.name}:{active.version} on {rows.shape[0]} rows",
          file=sys.stderr)
    method = "predict_proba" if args.proba else "predict"
    for value in getattr(active.model, method)(rows):
        print(f"{value:.6f}" if args.proba else int(value))


# ----------------------------------------------------------------------
# Continuous learning subcommands (repro.online)
# ----------------------------------------------------------------------
def _cmd_online_run(args) -> None:
    """Drive the closed loop over a drifting stream; the CI online smoke.

    Streams labeled batches through the full train–serve–retrain loop —
    live serving via a :class:`~repro.serve.server.ModelServer`, online
    EM training, cadence publishing, shadow evaluation, the promotion
    gate, and registry retention pruning — then fails unless the run
    published at least one candidate, made at least one promotion
    decision, dropped zero requests, and (when the stream drifted)
    recovered live accuracy.
    """
    import json

    from .linear.logistic import LogisticRegression
    from .online import (
        ContinuousLoop,
        DecayedGMRegularizer,
        DriftStream,
        OnlineTrainer,
        PromotionPolicy,
        PublishTriggers,
        RegistryPublisher,
        ShadowEvaluator,
    )
    from .rng import spawn
    from .serve import ModelRegistry, ModelServer
    from .telemetry.metrics import MetricsRegistry

    steps = args.steps or (60 if args.fast else 150)
    drift_at = args.drift_at if args.drift_at is not None else steps // 3
    n_features = 12
    stream = DriftStream(
        n_features=n_features, batch_size=32, drift_at=drift_at or None
    )
    regularizer = DecayedGMRegularizer(
        n_features, rho=args.rho, warmup_steps=10
    )
    model = LogisticRegression(
        n_features, regularizer=regularizer, rng=spawn(args.chaos_seed, 3)
    )
    registry = ModelRegistry(args.registry)
    registry.register(
        args.name,
        lambda: LogisticRegression(n_features, weight_init_std=0.0),
    )
    first = registry.publish(args.name, model, activate=True)
    print(f"published initial {args.name}:{first}")

    tracer = None
    exporter = None
    if args.trace_out:
        exporter = JsonlSpanExporter(path=args.trace_out)
        tracer = Tracer(exporter=exporter, sample_rate=args.trace_sample)
        print(f"tracing to {args.trace_out} "
              f"(sample_rate={args.trace_sample})")

    metrics = MetricsRegistry()
    trainer = OnlineTrainer(
        model, lr=0.3, n_reference=32 * steps, metrics=metrics
    )
    publisher = RegistryPublisher(
        registry, args.name,
        PublishTriggers(every_steps=args.publish_every), metrics=metrics,
    )
    shadow = ShadowEvaluator(
        registry, args.name, fraction=args.shadow_fraction, metrics=metrics,
    )
    policy = PromotionPolicy(min_samples=20, metrics=metrics)
    server = ModelServer(
        registry=registry,
        name=args.name,
        max_batch_size=args.max_batch,
        workers=args.serve_workers,
        tracer=tracer,
    )
    loop = ContinuousLoop(
        trainer, publisher, shadow, policy,
        server=server, metrics=metrics, tracer=tracer,
    )
    with server:
        status = loop.run(stream, steps)
    pruned = registry.prune(args.name, keep_last=args.keep_last)
    status["pruned_versions"] = len(pruned)
    status["drift_at"] = drift_at
    if exporter is not None:
        exporter.close()

    print(f"steps={status['steps']} published={status['published_total']} "
          f"decisions={status['decisions_total']} "
          f"(promote={status['promotions']} hold={status['holds']} "
          f"reject={status['rejections']}) rollbacks={status['rollbacks']}")
    print(f"requests={status['requests_total']} "
          f"dropped={status['dropped_requests']} "
          f"live_accuracy={status['live_accuracy']:.3f} "
          f"active={status['active_version']} "
          f"last_known_good={status['last_known_good']}")
    print(f"pruned {len(pruned)} old versions, "
          f"{len(registry.versions(args.name))} kept")
    if args.status_out:
        with open(args.status_out, "w", encoding="utf-8") as handle:
            json.dump(status, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"status written to {args.status_out}")

    failures = []
    if status["published_total"] < 1:
        failures.append("no candidate was published")
    if status["decisions_total"] < 1:
        failures.append("no promotion decision was made")
    if status["dropped_requests"] > 0:
        failures.append(f"{status['dropped_requests']} requests dropped")
    if drift_at and status["promotions"] < 1:
        failures.append("drift scenario completed without a promotion")
    if drift_at and status["live_accuracy"] < 0.8:
        failures.append(
            f"live accuracy did not recover after drift "
            f"({status['live_accuracy']:.3f} < 0.8)"
        )
    if failures:
        for failure in failures:
            print(f"online smoke FAILED: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("online loop smoke OK")


def _cmd_online_status(args) -> None:
    """Render a status JSON written by ``online run --status-out``."""
    import json

    if not args.status_file:
        print("online status requires --status-file status.json",
              file=sys.stderr)
        raise SystemExit(2)
    with open(args.status_file, encoding="utf-8") as handle:
        status = json.load(handle)
    for key in sorted(status):
        print(f"{key}: {status[key]}")


def _cmd_online(args) -> None:
    """Route ``online`` to its ``run``/``status`` subaction."""
    if args.subaction in (None, "run"):
        _cmd_online_run(args)
    elif args.subaction == "status":
        _cmd_online_status(args)
    else:
        print(f"unknown online subcommand {args.subaction!r} "
              "(expected: run, status)", file=sys.stderr)
        raise SystemExit(2)


# ----------------------------------------------------------------------
# Observability subcommands (repro.telemetry)
# ----------------------------------------------------------------------
def _cmd_metrics(args) -> None:
    """Render a persisted metrics snapshot in Prometheus text format.

    Accepts either a raw :meth:`MetricsRegistry.snapshot` dict or any
    JSON document with a ``"metrics"`` key holding one (the shape the
    serve benchmarks and ``ModelServer.stats()`` persist).
    """
    import json

    if not args.from_json:
        print("metrics requires --from-json SNAPSHOT.json", file=sys.stderr)
        raise SystemExit(2)
    with open(args.from_json, encoding="utf-8") as handle:
        payload = json.load(handle)
    snapshot = payload
    if isinstance(payload, dict) and "counters" not in payload:
        snapshot = payload.get("metrics", payload)
    families = ("counters", "gauges", "histograms", "timers")
    if not (
        isinstance(snapshot, dict)
        and any(key in snapshot for key in families)
    ):
        print(
            f"{args.from_json}: no metrics snapshot found (expected a "
            'MetricsRegistry.snapshot() dict or a document with a '
            '"metrics" key holding one)',
            file=sys.stderr,
        )
        raise SystemExit(1)
    text = render_exposition(snapshot)
    sys.stdout.write(text)
    problems = validate_exposition(text)
    if problems:
        for problem in problems:
            print(f"exposition problem: {problem}", file=sys.stderr)
        raise SystemExit(1)


def _cmd_trace(args) -> None:
    """``trace summarize``: aggregate a JSONL span log.

    Prints the per-operation self/total-time table across every trace
    in the log, then renders one trace's tree with its critical path
    starred — ``--trace-id`` picks the trace, defaulting to the one
    with the longest root span.
    """
    if args.subaction != "summarize":
        print(f"unknown trace subcommand {args.subaction!r} "
              "(expected: summarize)", file=sys.stderr)
        raise SystemExit(2)
    if not args.span_log:
        print("trace summarize requires --span-log spans.jsonl",
              file=sys.stderr)
        raise SystemExit(2)
    spans = load_spans(args.span_log)
    if not spans:
        print(f"no spans in {args.span_log}", file=sys.stderr)
        raise SystemExit(1)
    print(format_summary_table(summarize_spans(spans)))
    trace_id = args.trace_id or longest_trace(spans)
    if trace_id is not None:
        print()
        print(format_trace_tree(spans, trace_id))


def _cmd_serve_dispatch(args) -> None:
    """Route ``serve`` to the single-process or sharded smoke."""
    if args.shards > 0:
        if args.chaos:
            print("--chaos is not supported with --shards (use "
                  "'loadgen --kill-shard' for the sharded chaos drill)",
                  file=sys.stderr)
            raise SystemExit(2)
        _cmd_serve_sharded(args)
    else:
        _cmd_serve(args)


_SERVE_COMMANDS = {
    "serve": _cmd_serve_dispatch,
    "predict": _cmd_predict,
    "loadgen": _cmd_loadgen,
}

# Run outside the experiment banner loop: their stdout (exposition
# text, summary tables) must stay machine-readable / pipeable.
_TOOL_COMMANDS = {
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "online": _cmd_online,
}

_COMMANDS = {
    "table2": _cmd_table2,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "table7": _cmd_table7,
    "table8": _cmd_table8,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=(sorted(_COMMANDS) + ["all"] + sorted(_SERVE_COMMANDS)
                 + sorted(_TOOL_COMMANDS)),
        help="which table/figure to reproduce ('all' runs every "
             "experiment; 'serve'/'predict' drive the serving layer; "
             "'metrics'/'trace' are observability tools; 'lint' and "
             "'analyze' run the code-health tools and take their own "
             "flags)",
    )
    parser.add_argument(
        "subaction", nargs="?", default=None,
        help="trace: subcommand (summarize); "
             "online: subcommand (run, status)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shrink every experiment to roughly example scale",
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None,
        help="table7 only: subset of dataset names",
    )
    parser.add_argument(
        "--epochs", type=int, default=None,
        help="fig5/6/7 only: override the epoch budget",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="write a JSONL telemetry event log (train/epoch/EM-step "
             "events, per-phase timers, GM state) covering every "
             "training run the command performs",
    )
    parser.add_argument(
        "--log-metrics", action="store_true",
        help="print each run's phase-timer/counter summary to stderr",
    )
    serving = parser.add_argument_group("serving (serve/predict only)")
    serving.add_argument(
        "--registry", metavar="DIR", default=None,
        help="model registry directory (serve: omit for in-memory)",
    )
    serving.add_argument(
        "--name", default="synthetic-readmission",
        help="model name inside the registry",
    )
    serving.add_argument(
        "--requests", type=int, default=100,
        help="serve only: number of concurrent predict requests to replay",
    )
    serving.add_argument(
        "--max-batch", type=int, default=32,
        help="serve only: micro-batch size cap",
    )
    serving.add_argument(
        "--serve-workers", type=int, default=2,
        help="serve only: dispatch worker threads",
    )
    serving.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve/loadgen: worker processes for the sharded tier "
             "(0 = single-process server)",
    )
    serving.add_argument(
        "--mix", choices=("heavy_tail", "closed_loop"),
        default="heavy_tail",
        help="loadgen only: traffic mix to replay",
    )
    serving.add_argument(
        "--kill-shard", type=int, default=None, metavar="SHARD",
        help="loadgen only: SIGKILL this shard's worker at the "
             "schedule midpoint (zero-dropped-requests drill)",
    )
    serving.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="loadgen only: multiplier on inter-arrival gaps and "
             "client stalls (0 = closed loop)",
    )
    serving.add_argument(
        "--chaos", action="store_true",
        help="serve only: replay the traffic under the seeded fault "
             "injector (errors, latency spikes, cache corruption) with "
             "the default resilience policy engaged",
    )
    serving.add_argument(
        "--chaos-seed", type=int, default=2018, metavar="SEED",
        help="serve only: seed for the chaos fault/jitter streams",
    )
    serving.add_argument(
        "--input", metavar="PATH", default=None,
        help="predict only: .npy/.npz file of encoded feature rows",
    )
    serving.add_argument(
        "--proba", action="store_true",
        help="predict only: print probabilities instead of labels",
    )
    online = parser.add_argument_group("continuous learning (online only)")
    online.add_argument(
        "--steps", type=int, default=None,
        help="online run: streamed mini-batches to drive "
             "(default 150, 60 with --fast)",
    )
    online.add_argument(
        "--drift-at", type=int, default=None, metavar="STEP",
        help="online run: batch index of the distribution shift "
             "(default steps/3; 0 disables drift)",
    )
    online.add_argument(
        "--rho", type=float, default=0.9,
        help="online run: decay factor of the online EM statistics",
    )
    online.add_argument(
        "--publish-every", type=int, default=10, metavar="STEPS",
        help="online run: publisher cadence in trainer steps",
    )
    online.add_argument(
        "--shadow-fraction", type=float, default=0.5, metavar="FRAC",
        help="online run: fraction of live requests mirrored to the "
             "shadow candidate",
    )
    online.add_argument(
        "--keep-last", type=int, default=5, metavar="N",
        help="online run: registry versions retained by the final prune",
    )
    online.add_argument(
        "--status-out", metavar="PATH", default=None,
        help="online run: write the final loop status as JSON",
    )
    online.add_argument(
        "--status-file", metavar="PATH", default=None,
        help="online status: status JSON written by 'online run'",
    )
    obs = parser.add_argument_group("observability (serve/metrics/trace)")
    obs.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve only: expose Prometheus-format /metrics on this "
             "port during the replay (0 picks an ephemeral port) and "
             "self-scrape it once to validate the exposition",
    )
    obs.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="serve only: write a JSONL span log of the replayed "
             "requests (readable by 'trace summarize')",
    )
    obs.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="serve only: head-sampling rate for root spans (default 1.0)",
    )
    obs.add_argument(
        "--from-json", metavar="PATH", default=None,
        help="metrics only: JSON file holding a metrics snapshot "
             "(raw snapshot or any document with a 'metrics' key)",
    )
    obs.add_argument(
        "--span-log", metavar="PATH", default=None,
        help="trace only: JSONL span log to summarize",
    )
    obs.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="trace only: trace to render (default: longest root span)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    # `repro lint ...` / `repro analyze ...` forward the rest of the
    # command line to the dedicated tool parsers before the experiment
    # parser runs — their flags (--json, --dot, --write-baseline, ...)
    # have nothing to do with the experiment positionals.
    if raw and raw[0] == "lint":
        from .tools.lint.cli import main as lint_main

        return lint_main(raw[1:])
    if raw and raw[0] == "analyze":
        from .tools.analyze.cli import main as analyze_main

        return analyze_main(raw[1:])
    if raw and raw[0] == "linkcheck":
        from .tools.linkcheck import main as linkcheck_main

        return linkcheck_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.experiment in _TOOL_COMMANDS:
        _TOOL_COMMANDS[args.experiment](args)
        return 0
    if args.datasets:
        unknown = [d for d in args.datasets
                   if d not in UCI_SPECS and d != "Hosp-FA"]
        if unknown:
            print(f"unknown datasets: {unknown}", file=sys.stderr)
            return 2
    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    # Ambient telemetry: every Trainer.fit reached through the experiment
    # runners picks these callbacks up without any explicit threading.
    callbacks = []
    logger = None
    if args.telemetry_out:
        logger = JsonlRunLogger(path=args.telemetry_out)
        callbacks.append(logger)
    if args.log_metrics:
        callbacks.append(MetricsSummary())
    try:
        with use_callbacks(*callbacks):
            for name in names:
                print(f"\n===== {name} =====")
                {**_COMMANDS, **_SERVE_COMMANDS}[name](args)
    finally:
        if logger is not None:
            logger.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
