"""Synthetic tabular data generation.

The paper evaluates on UCI datasets and a proprietary hospital dataset,
neither of which ships with this offline reproduction.  This module
provides the seeded generator those stand-ins are built from.  The
generated data mirrors the structure the paper attributes to its data
(Section V-A):

- a minority of **predictive** features (whose Bayes-optimal weights
  have large variance) and a majority of **noisy** features (near-zero
  weights) — the regime in which the GM prior's two learned components
  (strong regularization for noise, weak for signal) pay off;
- a mix of **continuous** and **categorical** raw features, the latter
  one-hot encoded downstream;
- optional **missing values** in both kinds of features;
- genuinely separated classes: features are sampled *conditionally on
  the label* (shifted class means for continuous features, tilted level
  frequencies for categorical ones), so the optimal decision boundary
  is linear in the encoded features with a bimodal margin distribution
  — like the real, fairly separable UCI tasks the paper uses.  The
  ``class_separation`` knob plus a label ``flip_rate`` let per-dataset
  difficulty be calibrated against the paper's accuracy bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .table import Column, ColumnType, Table

__all__ = [
    "TabularSchema",
    "CategoricalSpec",
    "generate_dataset",
    "generate_table",
    "generate_labels",
]


@dataclass(frozen=True)
class CategoricalSpec:
    """One raw categorical attribute: ``n_levels`` distinct string values."""

    name: str
    n_levels: int

    def __post_init__(self) -> None:
        if self.n_levels < 2:
            raise ValueError(
                f"categorical {self.name!r} needs >= 2 levels, got {self.n_levels}"
            )

    def levels(self) -> List[str]:
        return [f"{self.name}_v{i}" for i in range(self.n_levels)]


@dataclass(frozen=True)
class TabularSchema:
    """Schema + generative knobs of a synthetic dataset.

    Attributes
    ----------
    n_continuous:
        Number of raw continuous features.
    categorical:
        Raw categorical attributes (one-hot encoded later).
    missing_continuous_rate / missing_categorical_rate:
        Per-cell probability of a missing value in continuous vs.
        categorical features.  They are separate because a missing
        categorical value adds an extra one-hot column ("a separate
        class", Section V-A) and changes the encoded width, while
        continuous missing values are mean-imputed and do not.
    predictive_fraction:
        Fraction of raw features that carry class signal; the rest are
        pure noise (the "noisy features" of Section V-A).
    class_separation:
        Strength of the class-conditional shift/tilt on the predictive
        features.  Larger = more separable classes = higher Bayes
        accuracy.  The main difficulty dial.
    flip_rate:
        Fraction of labels flipped after generation — irreducible label
        noise on top of the class overlap.
    class_balance:
        Probability of the positive class.
    category_concentration:
        Dirichlet concentration of the per-attribute level frequencies.
        Small values (1.5) give skewed frequencies with rare levels, as
        in real survey/medical data; large values give near-uniform
        levels.
    signal_std / noise_std:
        Relative strength of the class signal carried by predictive vs.
        noisy features.  Noisy features get a *small but nonzero*
        signal (the paper's point: L1 zeroes them outright and loses
        that information, while the GM's small-variance component
        merely shrinks them) — this is what makes the paper's
        "GM beats L1 everywhere" claim reproducible.
    """

    n_continuous: int = 0
    categorical: Tuple[CategoricalSpec, ...] = ()
    missing_continuous_rate: float = 0.0
    missing_categorical_rate: float = 0.0
    predictive_fraction: float = 0.2
    class_separation: float = 3.0
    flip_rate: float = 0.02
    class_balance: float = 0.5
    category_concentration: float = 1.5
    signal_std: float = 1.0
    noise_std: float = 0.3

    def __post_init__(self) -> None:
        if self.n_continuous < 0:
            raise ValueError("n_continuous must be >= 0")
        if self.n_continuous == 0 and not self.categorical:
            raise ValueError("schema must have at least one feature")
        for rate in (self.missing_continuous_rate, self.missing_categorical_rate):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"missing rates must be in [0, 1), got {rate}")
        if not 0.0 < self.predictive_fraction <= 1.0:
            raise ValueError("predictive_fraction must be in (0, 1]")
        if self.class_separation < 0.0:
            raise ValueError("class_separation must be >= 0")
        if not 0.0 <= self.flip_rate < 0.5:
            raise ValueError(f"flip_rate must be in [0, 0.5), got {self.flip_rate}")
        if not 0.0 < self.class_balance < 1.0:
            raise ValueError("class_balance must be in (0, 1)")
        if self.category_concentration <= 0.0:
            raise ValueError("category_concentration must be positive")

    @property
    def n_encoded_features(self) -> int:
        """Width after one-hot encoding (no missing columns counted)."""
        return self.n_continuous + sum(c.n_levels for c in self.categorical)


def generate_dataset(
    schema: TabularSchema,
    n_samples: int,
    rng: np.random.Generator,
) -> Tuple[Table, np.ndarray, np.ndarray]:
    """Sample labels and class-conditional features from the schema.

    Returns
    -------
    (table, labels, true_weights):
        The raw feature table, the 0/1 labels and the Bayes-optimal
        linear weights over the *encoded* feature order (continuous
        features first, then each categorical attribute's one-hot
        block).  Continuous weights are expressed in standardized
        coordinates, matching what a model sees after preprocessing.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    labels = (rng.random(n_samples) < schema.class_balance).astype(np.int64)
    centered = labels - 0.5  # +-0.5 class signs

    columns: List[Column] = []
    weight_blocks: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Continuous block: shared correlated noise + class-mean shift along
    # a sparse random direction over the predictive features.
    # ------------------------------------------------------------------
    if schema.n_continuous:
        n_cont = schema.n_continuous
        latent_dim = max(1, n_cont // 2)
        mixing = rng.normal(size=(latent_dim, n_cont))
        latent = rng.normal(size=(n_samples, latent_dim))
        values = latent @ mixing / np.sqrt(latent_dim)
        values += 0.7 * rng.normal(size=values.shape)

        n_predictive = max(1, int(round(schema.predictive_fraction * n_cont)))
        support = rng.choice(n_cont, size=n_predictive, replace=False)
        # Noisy features carry a small but nonzero share of the signal
        # (scaled by noise_std); predictive features carry the bulk.
        direction = rng.normal(
            0.0, schema.noise_std * schema.signal_std, size=n_cont
        )
        direction[support] = rng.normal(0.0, schema.signal_std,
                                        size=n_predictive)
        norm = np.linalg.norm(direction)
        if norm > 0.0:
            direction /= norm
        shift = schema.class_separation * direction
        values += centered[:, None] * shift[None, :]

        # Bayes weights in standardized coordinates: diagonal-LDA
        # approximation shift_j / var_j, scaled by the feature std the
        # encoder will divide by.
        stds = values.std(axis=0)
        weight_blocks.append(shift / np.maximum(stds, 1e-12))

        for j in range(n_cont):
            col_values = values[:, j].copy()
            if schema.missing_continuous_rate > 0.0:
                mask = rng.random(n_samples) < schema.missing_continuous_rate
                col_values[mask] = np.nan
            columns.append(Column(f"num{j}", ColumnType.CONTINUOUS, col_values))

    # ------------------------------------------------------------------
    # Categorical block: class-tilted level frequencies.  A predictive
    # attribute's class-1 and class-0 distributions are exponential
    # tilts of a shared base; noisy attributes get a near-zero tilt.
    # ------------------------------------------------------------------
    if schema.categorical:
        n_attrs = len(schema.categorical)
        n_predictive = max(1, int(round(schema.predictive_fraction * n_attrs)))
        predictive_attrs = set(
            rng.choice(n_attrs, size=n_predictive, replace=False).tolist()
        )
        for attr_index, spec in enumerate(schema.categorical):
            base = rng.dirichlet(
                np.full(spec.n_levels, schema.category_concentration)
            )
            tilt_std = (
                schema.signal_std
                if attr_index in predictive_attrs
                else schema.noise_std
            )
            tilt = rng.normal(0.0, tilt_std, size=spec.n_levels)
            tilt = tilt - tilt.mean()
            half = 0.5 * schema.class_separation * tilt
            probs_pos = base * np.exp(half)
            probs_pos /= probs_pos.sum()
            probs_neg = base * np.exp(-half)
            probs_neg /= probs_neg.sum()

            levels = np.asarray(spec.levels(), dtype=object)
            draws = np.empty(n_samples, dtype=object)
            pos_mask = labels == 1
            if pos_mask.any():
                draws[pos_mask] = levels[
                    rng.choice(spec.n_levels, size=int(pos_mask.sum()), p=probs_pos)
                ]
            if (~pos_mask).any():
                draws[~pos_mask] = levels[
                    rng.choice(spec.n_levels, size=int((~pos_mask).sum()), p=probs_neg)
                ]
            # Guarantee every declared level is observed at least once so
            # the one-hot width matches the schema exactly (Table II).
            if n_samples >= spec.n_levels:
                observed = set(draws.tolist())
                unseen = [lv for lv in levels if lv not in observed]
                if unseen:
                    slots = rng.choice(n_samples, size=len(unseen), replace=False)
                    for slot, level in zip(slots, unseen):
                        draws[slot] = level
            if schema.missing_categorical_rate > 0.0:
                mask = rng.random(n_samples) < schema.missing_categorical_rate
                draws[mask] = None
            columns.append(Column(spec.name, ColumnType.CATEGORICAL, draws))
            # Bayes weight of level l: log probs_pos[l] - log probs_neg[l].
            weight_blocks.append(np.log(probs_pos) - np.log(probs_neg))

    if schema.flip_rate > 0.0:
        flips = rng.random(n_samples) < schema.flip_rate
        labels = labels.copy()
        labels[flips] = 1 - labels[flips]

    table = Table(columns)
    true_weights = (
        np.concatenate(weight_blocks) if weight_blocks else np.zeros(0)
    )
    return table, labels, true_weights


# ----------------------------------------------------------------------
# Backwards-compatible two-step interface
# ----------------------------------------------------------------------
def generate_table(
    schema: TabularSchema,
    n_samples: int,
    rng: np.random.Generator,
) -> Table:
    """Features only (labels discarded); see :func:`generate_dataset`."""
    table, _labels, _weights = generate_dataset(schema, n_samples, rng)
    return table


def generate_labels(
    table: Table,
    schema: TabularSchema,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deprecated shim: labels must be drawn jointly with the features.

    The class-conditional generator cannot label a pre-existing table;
    use :func:`generate_dataset` instead.  This function regenerates a
    dataset of the same size and returns its labels and weights, which
    only makes sense when the caller passes the table produced by
    :func:`generate_table` with the *same* rng stream — the datasets
    modules all use :func:`generate_dataset` directly.
    """
    raise NotImplementedError(
        "generate_labels was replaced by generate_dataset(schema, n, rng); "
        "features and labels are now sampled jointly"
    )
