"""Synthetic Hospital Frequent Admitter (Hosp-FA) dataset.

The paper's real hospital dataset (Section V-A) cannot be distributed:
it contains inpatient visits of actual patients.  This module generates
a synthetic stand-in with the published structure:

- **1755 patient samples**, **375 features** (diagnosis flags, lab
  values, demographics), predicting 30-day readmission;
- an explicit split into **predictive** features (whose true model
  weights have large variance) and **noisy** features (small variance)
  — the property the paper highlights as what makes the GM prior fit
  this data well;
- a raw, *uncleaned* variant with duplicates and out-of-range vitals so
  the GEMINI-style cleaning stage (:mod:`repro.pipeline.cleaning`) has
  real work to do in the end-to-end example.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import DatasetBundle
from .synthetic import CategoricalSpec, TabularSchema, generate_dataset
from .table import Column, ColumnType, Table

__all__ = ["HOSP_FA_SAMPLES", "HOSP_FA_FEATURES", "make_hospital_dataset",
           "make_raw_hospital_table"]

HOSP_FA_SAMPLES = 1755
HOSP_FA_FEATURES = 375

# 275 binary diagnosis/procedure flags + 88 continuous lab/vital features
# + demographics (sex:2, admission type:4, age-band:6) = 375 encoded.
_HOSP_SCHEMA = TabularSchema(
    n_continuous=88,
    categorical=(
        tuple(CategoricalSpec(f"dx{i}", 2) for i in range(137))
        + (
            CategoricalSpec("sex", 2),
            CategoricalSpec("admission_type", 4),
            CategoricalSpec("age_band", 7),
        )
    ),
    missing_continuous_rate=0.05,
    predictive_fraction=0.15,
    class_separation=1.7,
    flip_rate=0.03,
)


def make_hospital_dataset(seed: int = 0) -> DatasetBundle:
    """Generate the Hosp-FA stand-in (1755 x 375 encoded features)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, 9001]))
    table, labels, true_weights = generate_dataset(_HOSP_SCHEMA, HOSP_FA_SAMPLES, rng)
    bundle = DatasetBundle(
        name="Hosp-FA",
        table=table,
        labels=labels,
        feature_type="combined",
        true_weights=true_weights,
        description=(
            "Synthetic hospital frequent-admitter dataset: "
            f"{HOSP_FA_SAMPLES} inpatient cases, {HOSP_FA_FEATURES} encoded "
            "features, 30-day readmission label; predictive features have "
            "large-variance true weights, noisy features small-variance."
        ),
    )
    return bundle


def make_raw_hospital_table(
    seed: int = 0,
    duplicate_fraction: float = 0.03,
    outlier_fraction: float = 0.01,
) -> Tuple[Table, np.ndarray]:
    """The *uncleaned* version of the hospital data for the pipeline demo.

    Starts from :func:`make_hospital_dataset` and injects the data-quality
    problems the GEMINI cleaning stage (DICE) removes:

    - exact duplicate admissions (re-keyed rows appended at the end),
    - physically impossible vitals (negative lab values far outside the
      standardized range) in a random subset of cells,
    - a ``patient_id`` categorical column so cohort analysis has a key.

    Returns the dirty table and the labels *for the clean prefix*; the
    cleaning stage is expected to restore a table whose first
    ``HOSP_FA_SAMPLES`` rows align with these labels.
    """
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError(f"duplicate_fraction must be in [0,1), got {duplicate_fraction}")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError(f"outlier_fraction must be in [0,1), got {outlier_fraction}")
    bundle = make_hospital_dataset(seed)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 9002]))
    n = bundle.n_samples

    patient_ids = np.asarray([f"P{idx:05d}" for idx in range(n)], dtype=object)
    table = bundle.table.with_column(
        Column("patient_id", ColumnType.CATEGORICAL, patient_ids)
    )

    # Inject outliers into a random continuous column subset.
    continuous = [c for c in table.columns() if c.is_continuous]
    data = table.to_dict()
    for col in continuous:
        mask = rng.random(n) < outlier_fraction
        values = data[col.name]
        values[mask] = -9999.0  # impossible vital / lab value
        data[col.name] = values

    # Append exact duplicates of random rows (same patient_id).
    n_dup = int(round(duplicate_fraction * n))
    dup_idx = rng.choice(n, size=n_dup, replace=False)
    ctypes = {c.name: c.ctype for c in table.columns()}
    merged = {}
    for name, values in data.items():
        merged[name] = np.concatenate([values, values[dup_idx]])
    dirty = Table(
        [Column(name, ctypes[name], values) for name, values in merged.items()]
    )
    return dirty, bundle.labels.copy()
