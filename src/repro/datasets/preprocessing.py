"""Feature preprocessing matching the paper's protocol (Section V-A).

For the UCI datasets the paper preprocesses as follows:

- **categorical** features are one-hot encoded; *missing values are
  assigned a separate class* (an extra one-hot column);
- **continuous** features are standardized to zero mean / unit variance;
  *missing values are imputed by the (training) mean*.

:class:`TabularEncoder` implements exactly this, with scikit-learn-style
``fit`` / ``transform`` semantics: statistics (means, scales, category
vocabularies) are estimated on the training split only and reused for
the test split, which keeps the evaluation honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .table import Column, Table

__all__ = ["TabularEncoder", "one_hot", "standardize"]

# Sentinel category used for missing categorical values ("a separate class").
MISSING_CATEGORY = "<missing>"


def one_hot(values: np.ndarray, categories: List[object]) -> np.ndarray:
    """One-hot encode ``values`` against a fixed category vocabulary.

    Values outside the vocabulary (unseen test categories) map to the
    all-zero row, a common and safe convention.
    """
    index = {c: i for i, c in enumerate(categories)}
    out = np.zeros((len(values), len(categories)), dtype=np.float64)
    for row, value in enumerate(values):
        col = index.get(value)
        if col is not None:
            out[row, col] = 1.0
    return out


def standardize(
    values: np.ndarray, mean: float, scale: float
) -> np.ndarray:
    """``(values - mean) / scale`` with a guarded scale."""
    return (np.asarray(values, dtype=np.float64) - mean) / max(scale, 1e-12)


@dataclass
class _ContinuousStats:
    mean: float
    scale: float


@dataclass
class TabularEncoder:
    """Encode a :class:`Table` into a dense feature matrix.

    Usage::

        encoder = TabularEncoder()
        x_train = encoder.fit_transform(train_table)
        x_test = encoder.transform(test_table)

    After fitting, :attr:`feature_names` lists the produced columns in
    order (``col`` for continuous, ``col=value`` for one-hot indicators)
    so model weights can be traced back to input features.
    """

    _continuous: Dict[str, _ContinuousStats] = field(default_factory=dict)
    _categorical: Dict[str, List[object]] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)
    feature_names: List[str] = field(default_factory=list)
    _fitted: bool = False

    def fit(self, table: Table) -> "TabularEncoder":
        """Estimate imputation/scaling statistics and vocabularies."""
        self._continuous.clear()
        self._categorical.clear()
        self._order = []
        self.feature_names = []
        for col in table.columns():
            self._order.append(col.name)
            if col.is_continuous:
                present = col.values[~np.isnan(col.values)]
                mean = float(present.mean()) if present.size else 0.0
                scale = float(present.std()) if present.size else 1.0
                self._continuous[col.name] = _ContinuousStats(mean, scale)
                self.feature_names.append(col.name)
            else:
                categories = col.categories()
                if col.n_missing() > 0:
                    categories = categories + [MISSING_CATEGORY]
                self._categorical[col.name] = categories
                self.feature_names.extend(
                    f"{col.name}={c}" for c in categories
                )
        self._fitted = True
        return self

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` with the fitted statistics."""
        if not self._fitted:
            raise RuntimeError("encoder must be fitted before transform")
        blocks: List[np.ndarray] = []
        for name in self._order:
            col = table.column(name)
            if name in self._continuous:
                stats = self._continuous[name]
                values = col.values.copy()
                values[np.isnan(values)] = stats.mean  # mean imputation
                blocks.append(
                    standardize(values, stats.mean, stats.scale)[:, None]
                )
            else:
                categories = self._categorical[name]
                values = np.asarray(
                    [MISSING_CATEGORY if v is None else v for v in col.values],
                    dtype=object,
                )
                blocks.append(one_hot(values, categories))
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, table: Table) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`transform`."""
        return self.fit(table).transform(table)

    @property
    def n_features(self) -> int:
        """Width of the encoded matrix."""
        if not self._fitted:
            raise RuntimeError("encoder must be fitted first")
        return len(self.feature_names)


def encode_label_column(column: Column) -> np.ndarray:
    """Map a binary label column to contiguous integer codes 0/1.

    Labels are sorted by ``repr`` for determinism; the greater value
    becomes class 1.
    """
    if column.is_categorical:
        categories = column.categories()
    else:
        categories = sorted(set(float(v) for v in column.values))
    if len(categories) != 2:
        raise ValueError(
            f"expected a binary label column, found classes {categories}"
        )
    index = {c: i for i, c in enumerate(categories)}
    if column.is_categorical:
        return np.asarray([index[v] for v in column.values], dtype=np.int64)
    return np.asarray([index[float(v)] for v in column.values], dtype=np.int64)
