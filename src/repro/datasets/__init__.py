"""Datasets: seeded synthetic stand-ins for the paper's 13 datasets.

The paper evaluates on CIFAR-10, 11 UCI datasets and a proprietary
hospital dataset.  None are redistributable/available offline, so each
is replaced by a generator matching its published shape and the
statistical structure the paper attributes to it (see DESIGN.md,
"Substitutions").
"""

from .base import DatasetBundle, EncodedSplit
from .cifar import ImageDataset, make_cifar_like
from .hospital import (
    HOSP_FA_FEATURES,
    HOSP_FA_SAMPLES,
    make_hospital_dataset,
    make_raw_hospital_table,
)
from .preprocessing import TabularEncoder, encode_label_column, one_hot, standardize
from .synthetic import CategoricalSpec, TabularSchema, generate_dataset, generate_table
from .table import Column, ColumnType, Table
from .uci import UCI_SPECS, UCISpec, make_uci_dataset, uci_dataset_names

__all__ = [
    "DatasetBundle",
    "EncodedSplit",
    "Table",
    "Column",
    "ColumnType",
    "TabularEncoder",
    "one_hot",
    "standardize",
    "encode_label_column",
    "TabularSchema",
    "CategoricalSpec",
    "generate_table",
    "generate_dataset",
    "UCISpec",
    "UCI_SPECS",
    "uci_dataset_names",
    "make_uci_dataset",
    "HOSP_FA_SAMPLES",
    "HOSP_FA_FEATURES",
    "make_hospital_dataset",
    "make_raw_hospital_table",
    "ImageDataset",
    "make_cifar_like",
]
