"""A minimal typed, column-oriented table.

The paper's tool sits inside the GEMINI analytics stack, whose upstream
stages (cleaning, aggregation, cohort analysis) operate on tabular
patient data.  pandas is not a dependency of this reproduction, so this
module provides the small column-store those stages and the dataset
generators share.

A :class:`Table` is an ordered collection of named, typed
:class:`Column` objects of equal length.  Continuous columns hold
``float64`` with ``NaN`` as the missing marker; categorical columns hold
Python objects (typically strings) with ``None`` as the missing marker.
Tables are immutable in style: every operation returns a new table and
shares no mutable state with its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["ColumnType", "Column", "Table"]


class ColumnType:
    """Column type tags (a tiny enum kept as strings for readability)."""

    CONTINUOUS = "continuous"
    CATEGORICAL = "categorical"

    ALL = (CONTINUOUS, CATEGORICAL)


@dataclass(frozen=True)
class Column:
    """One named, typed column.

    Attributes
    ----------
    name:
        Column name, unique within a table.
    ctype:
        ``ColumnType.CONTINUOUS`` or ``ColumnType.CATEGORICAL``.
    values:
        ``float64`` array (continuous, NaN = missing) or object array
        (categorical, None = missing).
    """

    name: str
    ctype: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.ctype not in ColumnType.ALL:
            raise ValueError(f"unknown column type {self.ctype!r}")
        if self.ctype == ColumnType.CONTINUOUS:
            values = np.asarray(self.values, dtype=np.float64)
        else:
            values = np.asarray(self.values, dtype=object)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def is_continuous(self) -> bool:
        return self.ctype == ColumnType.CONTINUOUS

    @property
    def is_categorical(self) -> bool:
        return self.ctype == ColumnType.CATEGORICAL

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing entries."""
        if self.is_continuous:
            return np.isnan(self.values)
        return np.asarray([v is None for v in self.values], dtype=bool)

    def n_missing(self) -> int:
        """Number of missing entries."""
        return int(self.missing_mask().sum())

    def categories(self) -> List[object]:
        """Sorted distinct non-missing values of a categorical column."""
        if not self.is_categorical:
            raise TypeError(f"column {self.name!r} is not categorical")
        distinct = {v for v in self.values if v is not None}
        return sorted(distinct, key=repr)

    def take(self, indices: np.ndarray) -> "Column":
        """Column restricted to ``indices`` (a copy)."""
        return Column(self.name, self.ctype, self.values[indices].copy())


class Table:
    """An immutable-style collection of equally long columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns disagree on length: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self._columns: Dict[str, Column] = {c.name: c for c in columns}
        self._order: List[str] = names

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._columns[self._order[0]])

    @property
    def n_columns(self) -> int:
        return len(self._order)

    @property
    def column_names(self) -> List[str]:
        return list(self._order)

    def column(self, name: str) -> Column:
        """The column named ``name`` (KeyError if absent)."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}; have {self._order}")
        return self._columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def columns(self) -> List[Column]:
        """All columns in declaration order."""
        return [self._columns[n] for n in self._order]

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.ctype[:4]}" for c in self.columns())
        return f"Table({self.n_rows} rows; {cols})"

    # ------------------------------------------------------------------
    # Relational-style operations (used by the pipeline stages)
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Projection onto the given columns, preserving request order."""
        return Table([self.column(n) for n in names])

    def filter(self, predicate: Callable[[Dict[str, object]], bool]) -> "Table":
        """Rows for which ``predicate(row_dict)`` is truthy."""
        keep = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.take(np.asarray(keep, dtype=np.int64))

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder by integer indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table([c.take(indices) for c in self.columns()])

    def head(self, n: int) -> "Table":
        """First ``n`` rows."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return self.take(np.arange(min(n, self.n_rows)))

    def with_column(self, column: Column) -> "Table":
        """New table with ``column`` appended (or replaced if name exists)."""
        if len(column) != self.n_rows:
            raise ValueError(
                f"column length {len(column)} != table rows {self.n_rows}"
            )
        cols = [column if c.name == column.name else c for c in self.columns()]
        if column.name not in self._columns:
            cols.append(column)
        return Table(cols)

    def without_columns(self, names: Iterable[str]) -> "Table":
        """New table with the given columns dropped."""
        drop = set(names)
        remaining = [c for c in self.columns() if c.name not in drop]
        return Table(remaining)

    def iter_rows(self) -> Iterable[Dict[str, object]]:
        """Iterate rows as ``{column_name: value}`` dicts."""
        cols = self.columns()
        for i in range(self.n_rows):
            yield {c.name: c.values[i] for c in cols}

    def row(self, index: int) -> Dict[str, object]:
        """Row ``index`` as a dict."""
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row {index} out of range [0, {self.n_rows})")
        return {c.name: c.values[index] for c in self.columns()}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Sequence[object]],
        ctypes: Optional[Dict[str, str]] = None,
    ) -> "Table":
        """Build a table from ``{name: values}``.

        Column types are taken from ``ctypes`` when given, otherwise
        inferred: numeric dtypes become continuous, everything else
        categorical.
        """
        ctypes = ctypes or {}
        columns = []
        for name, values in data.items():
            if name in ctypes:
                ctype = ctypes[name]
            else:
                arr = np.asarray(values)
                ctype = (
                    ColumnType.CONTINUOUS
                    if np.issubdtype(arr.dtype, np.number)
                    else ColumnType.CATEGORICAL
                )
            columns.append(Column(name, ctype, np.asarray(values, dtype=object)
                                  if ctype == ColumnType.CATEGORICAL
                                  else np.asarray(values, dtype=np.float64)))
        return cls(columns)

    def to_dict(self) -> Dict[str, np.ndarray]:
        """``{name: values}`` view of the table (copies)."""
        return {c.name: c.values.copy() for c in self.columns()}

    def equals(self, other: "Table") -> bool:
        """Structural equality (names, types, values; NaN == NaN)."""
        if self._order != other._order:
            return False
        for a, b in zip(self.columns(), other.columns()):
            if a.ctype != b.ctype or len(a) != len(b):
                return False
            if a.is_continuous:
                if not np.array_equal(a.values, b.values, equal_nan=True):
                    return False
            elif not all(x == y for x, y in zip(a.values, b.values)):
                return False
        return True
