"""Dataset bundle: raw table + labels + the paper's split/encode protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..linear.model_selection import stratified_train_test_split
from .preprocessing import TabularEncoder
from .table import Table

__all__ = ["DatasetBundle", "EncodedSplit"]


@dataclass(frozen=True)
class EncodedSplit:
    """One stratified train/test subsample, encoded and ready to train on.

    The encoder is fitted on the training rows only (means, scales and
    category vocabularies never see the test split), then applied to
    both — the honest version of the paper's preprocessing protocol.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    encoder: TabularEncoder

    @property
    def n_features(self) -> int:
        return int(self.x_train.shape[1])


@dataclass(frozen=True)
class DatasetBundle:
    """A named dataset: raw feature table, binary labels, provenance.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"horse-colic"``).
    table:
        Raw features as a typed :class:`~repro.datasets.table.Table`.
    labels:
        Binary 0/1 labels aligned with the table rows.
    feature_type:
        ``"categorical"`` / ``"continuous"`` / ``"combined"`` as
        reported in Table II of the paper.
    true_weights:
        The planted weight vector over the encoded feature space for
        synthetic data (None when not applicable); used by tests to
        verify the GM regularizer separates signal from noise.
    description:
        Human-readable provenance note.
    """

    name: str
    table: Table
    labels: np.ndarray
    feature_type: str
    true_weights: Optional[np.ndarray] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.labels.shape[0] != self.table.n_rows:
            raise ValueError(
                f"labels ({self.labels.shape[0]}) and table rows "
                f"({self.table.n_rows}) disagree"
            )
        classes = np.unique(self.labels)
        if not np.array_equal(classes, [0, 1]) and not np.array_equal(classes, [0]) \
                and not np.array_equal(classes, [1]):
            raise ValueError(f"labels must be 0/1, found classes {classes}")

    @property
    def n_samples(self) -> int:
        return self.table.n_rows

    def encoded_dim(self) -> int:
        """Width of the one-hot/standardized encoding over the full table."""
        encoder = TabularEncoder()
        return encoder.fit_transform(self.table).shape[1]

    def encode_all(self) -> Tuple[np.ndarray, np.ndarray]:
        """Encode the full table (encoder fitted on everything).

        Convenience for examples and the Figure 3 case study, where no
        held-out evaluation is involved.
        """
        encoder = TabularEncoder()
        return encoder.fit_transform(self.table), self.labels.copy()

    def stratified_split(
        self, seed: int, test_fraction: float = 0.2
    ) -> EncodedSplit:
        """One of the paper's 5 stratified 80-20 subsamples (Section V-C)."""
        rng = np.random.default_rng(seed)
        train_idx, test_idx = stratified_train_test_split(
            self.labels, test_fraction=test_fraction, rng=rng
        )
        train_table = self.table.take(train_idx)
        test_table = self.table.take(test_idx)
        encoder = TabularEncoder()
        x_train = encoder.fit_transform(train_table)
        x_test = encoder.transform(test_table)
        return EncodedSplit(
            x_train=x_train,
            y_train=self.labels[train_idx].copy(),
            x_test=x_test,
            y_test=self.labels[test_idx].copy(),
            encoder=encoder,
        )
