"""Synthetic stand-ins for the paper's 11 UCI benchmark datasets.

The paper evaluates on the first 11 binary-classification UCI datasets
(alphabetical order, Table II).  The UCI repository is not available
offline, so each dataset is replaced by a seeded synthetic generator
whose *published shape* is matched exactly:

- sample count (Table II "# Samples"),
- encoded feature count (Table II "# Features", i.e. after one-hot),
- feature type (categorical / continuous / combined),
- presence of missing values in the combined datasets,
- high feature-to-sample ratio (most > 10%), the regime the paper
  highlights.

Difficulty (``class_separation`` / ``flip_rate`` of the class-
conditional generative model) is calibrated per dataset so that a tuned
logistic regression lands near the accuracy band reported in Table VII
— which is what makes the reproduced Table VII comparable in *shape* to
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .base import DatasetBundle
from .synthetic import CategoricalSpec, TabularSchema, generate_dataset

__all__ = ["UCISpec", "UCI_SPECS", "uci_dataset_names", "make_uci_dataset"]


def _cats(prefix: str, levels: Tuple[int, ...]) -> Tuple[CategoricalSpec, ...]:
    return tuple(
        CategoricalSpec(f"{prefix}{i}", n) for i, n in enumerate(levels)
    )


@dataclass(frozen=True)
class UCISpec:
    """Published characteristics + generator knobs for one UCI stand-in."""

    name: str
    n_samples: int
    feature_type: str  # "categorical" | "continuous" | "combined"
    schema: TabularSchema
    paper_gm_accuracy: float  # Table VII, GM Reg column
    seed_offset: int  # decorrelates datasets generated from the same seed

    @property
    def n_encoded_features(self) -> int:
        """Expected encoded width (Table II '# Features')."""
        return self.schema.n_encoded_features


# ----------------------------------------------------------------------
# The 11 datasets of Table II.  Encoded widths match the table exactly:
# categorical attributes contribute n_levels one-hot columns each and
# missing values are only injected into continuous features (mean-imputed,
# hence width-neutral).  class_separation / flip_rate are calibrated so a
# tuned logistic regression reproduces the Table VII accuracy band.
# ----------------------------------------------------------------------
UCI_SPECS: Dict[str, UCISpec] = {
    spec.name: spec
    for spec in [
        UCISpec(
            name="breast-canc",
            n_samples=699,
            feature_type="categorical",
            schema=TabularSchema(
                categorical=_cats("attr", (9,) * 9),  # 9 x 9 = 81
                predictive_fraction=0.4,
                class_separation=3.2,
                flip_rate=0.01,
            ),
            paper_gm_accuracy=0.970,
            seed_offset=101,
        ),
        UCISpec(
            name="breast-canc-dia",
            n_samples=569,
            feature_type="continuous",
            schema=TabularSchema(
                n_continuous=30,
                predictive_fraction=0.3,
                class_separation=4.0,
                flip_rate=0.005,
            ),
            paper_gm_accuracy=0.981,
            seed_offset=102,
        ),
        UCISpec(
            name="breast-canc-pro",
            n_samples=198,
            feature_type="continuous",
            schema=TabularSchema(
                n_continuous=33,
                predictive_fraction=0.2,
                class_separation=2.6,
                flip_rate=0.02,
            ),
            paper_gm_accuracy=0.859,
            seed_offset=103,
        ),
        UCISpec(
            name="climate-model",
            n_samples=540,
            feature_type="continuous",
            schema=TabularSchema(
                n_continuous=18,
                predictive_fraction=0.25,
                class_separation=4.0,
                flip_rate=0.02,
            ),
            paper_gm_accuracy=0.969,
            seed_offset=104,
        ),
        UCISpec(
            name="congress-voting",
            n_samples=435,
            feature_type="categorical",
            schema=TabularSchema(
                categorical=_cats("vote", (2,) * 16),  # 16 x 2 = 32
                predictive_fraction=0.5,
                class_separation=4.0,
                signal_std=1.2,
                flip_rate=0.015,
                category_concentration=5.0,
            ),
            paper_gm_accuracy=0.977,
            seed_offset=105,
        ),
        UCISpec(
            name="conn-sonar",
            n_samples=208,
            feature_type="continuous",
            schema=TabularSchema(
                n_continuous=60,
                predictive_fraction=0.3,
                class_separation=3.3,
                flip_rate=0.01,
            ),
            paper_gm_accuracy=0.847,
            seed_offset=106,
        ),
        UCISpec(
            name="credit-approval",
            n_samples=690,
            feature_type="combined",
            schema=TabularSchema(
                n_continuous=6,
                categorical=_cats("cat", (2, 2, 3, 3, 4, 4, 5, 6, 7)),  # 6+36=42
                missing_continuous_rate=0.02,
                predictive_fraction=0.25,
                class_separation=1.9,
                flip_rate=0.06,
            ),
            paper_gm_accuracy=0.878,
            seed_offset=107,
        ),
        UCISpec(
            name="cylindar-bands",
            n_samples=541,
            feature_type="combined",
            schema=TabularSchema(
                n_continuous=19,
                categorical=_cats("cat", (2, 3, 4, 5, 6, 7, 8, 9, 10, 20)),  # 19+74=93
                missing_continuous_rate=0.05,
                predictive_fraction=0.15,
                class_separation=1.7,
                flip_rate=0.1,
            ),
            paper_gm_accuracy=0.798,
            seed_offset=108,
        ),
        UCISpec(
            name="hepatitis",
            n_samples=155,
            feature_type="combined",
            schema=TabularSchema(
                n_continuous=6,
                categorical=_cats("cat", (2,) * 14),  # 6+28=34
                missing_continuous_rate=0.02,
                predictive_fraction=0.35,
                class_separation=2.4,
                flip_rate=0.03,
                category_concentration=5.0,
            ),
            paper_gm_accuracy=0.904,
            seed_offset=109,
        ),
        UCISpec(
            name="horse-colic",
            n_samples=368,
            feature_type="combined",
            schema=TabularSchema(
                n_continuous=7,
                categorical=_cats("cat", (3,) * 17),  # 7+51=58
                missing_continuous_rate=0.1,
                predictive_fraction=0.25,
                class_separation=1.9,
                flip_rate=0.03,
            ),
            paper_gm_accuracy=0.870,
            seed_offset=110,
        ),
        UCISpec(
            name="ionosphere",
            n_samples=351,
            feature_type="combined",
            schema=TabularSchema(
                n_continuous=31,
                categorical=_cats("cat", (2,)),  # 31+2=33
                predictive_fraction=0.25,
                class_separation=2.9,
                flip_rate=0.02,
            ),
            paper_gm_accuracy=0.920,
            seed_offset=111,
        ),
    ]
}


def uci_dataset_names() -> List[str]:
    """The 11 dataset names in the paper's (alphabetical) order."""
    return list(UCI_SPECS.keys())


def make_uci_dataset(name: str, seed: int = 0) -> DatasetBundle:
    """Generate the named UCI stand-in.

    Parameters
    ----------
    name:
        One of :func:`uci_dataset_names`.
    seed:
        Base seed; the per-dataset ``seed_offset`` is mixed in so two
        datasets generated from the same base seed are independent.
    """
    if name not in UCI_SPECS:
        raise KeyError(f"unknown UCI dataset {name!r}; have {uci_dataset_names()}")
    spec = UCI_SPECS[name]
    rng = np.random.default_rng(np.random.SeedSequence([seed, spec.seed_offset]))
    table, labels, true_weights = generate_dataset(spec.schema, spec.n_samples, rng)
    return DatasetBundle(
        name=spec.name,
        table=table,
        labels=labels,
        feature_type=spec.feature_type,
        true_weights=true_weights,
        description=(
            f"Synthetic stand-in for UCI {spec.name!r} "
            f"({spec.n_samples} samples, {spec.n_encoded_features} encoded "
            f"features, {spec.feature_type})"
        ),
    )
