"""Synthetic CIFAR-10-like image dataset.

CIFAR-10 itself is not available offline, so the deep-learning
experiments run on a seeded synthetic substitute: a 10-class,
3-channel image set where each class is defined by a superposition of
oriented sinusoidal gratings plus a colour bias, and every sample is a
randomly translated, contrast-jittered, noisy realization of its class
template.

Why this preserves the behaviour the paper measures:

- classes are separable by *spatial structure*, so convolutional
  features genuinely help and the networks train away from chance;
- per-sample noise and limited sample counts let a CNN **overfit** the
  training split, which is the phenomenon regularization exists to fix
  — the no-reg / L2 / GM accuracy ordering of Table VI is measurable;
- layer weights develop non-trivial distributions, so the per-layer GMs
  of Tables IV/V learn distinct (pi, lambda).

Image tensors use the ``(N, C, H, W)`` layout throughout the ``nn``
package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImageDataset", "make_cifar_like"]


@dataclass(frozen=True)
class ImageDataset:
    """Train/test image classification splits in ``(N, C, H, W)`` layout."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        for name, x, y in (
            ("train", self.x_train, self.y_train),
            ("test", self.x_test, self.y_test),
        ):
            if x.ndim != 4:
                raise ValueError(f"x_{name} must be (N, C, H, W), got {x.shape}")
            if x.shape[0] != y.shape[0]:
                raise ValueError(
                    f"{name} split: {x.shape[0]} images vs {y.shape[0]} labels"
                )

    @property
    def image_shape(self) -> tuple:
        """``(C, H, W)`` of a single image."""
        return tuple(self.x_train.shape[1:])


def _class_templates(
    n_classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One spatial template per class: oriented gratings + colour bias."""
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, size), np.linspace(0.0, 1.0, size), indexing="ij"
    )
    templates = np.zeros((n_classes, channels, size, size), dtype=np.float64)
    for cls in range(n_classes):
        colour = rng.normal(0.0, 0.5, size=channels)
        for _ in range(3):  # superpose a few gratings
            theta = rng.uniform(0.0, np.pi)
            freq = rng.uniform(1.5, 4.5)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            grating = np.sin(
                2.0 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy)
                + phase
            )
            weights = rng.normal(0.0, 1.0, size=channels)
            templates[cls] += weights[:, None, None] * grating[None, :, :]
        templates[cls] += colour[:, None, None]
        templates[cls] /= max(np.abs(templates[cls]).max(), 1e-12)
    return templates


def _render(
    templates: np.ndarray,
    labels: np.ndarray,
    noise: float,
    max_shift: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Noisy, shifted, contrast-jittered realizations of class templates."""
    n = labels.shape[0]
    _, channels, size, _ = templates.shape
    images = np.empty((n, channels, size, size), dtype=np.float64)
    contrasts = rng.uniform(0.6, 1.4, size=n)
    shifts_y = rng.integers(-max_shift, max_shift + 1, size=n)
    shifts_x = rng.integers(-max_shift, max_shift + 1, size=n)
    for i in range(n):
        img = contrasts[i] * templates[labels[i]]
        img = np.roll(img, (int(shifts_y[i]), int(shifts_x[i])), axis=(1, 2))
        images[i] = img
    images += rng.normal(0.0, noise, size=images.shape)
    return images.astype(np.float32)


def make_cifar_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_size: int = 32,
    n_classes: int = 10,
    channels: int = 3,
    noise: float = 0.5,
    seed: int = 0,
) -> ImageDataset:
    """Generate the CIFAR-10 substitute.

    Parameters
    ----------
    n_train, n_test:
        Split sizes (class-balanced up to rounding).  The real CIFAR-10
        is 50000/10000; the benchmarks default to laptop-scale counts.
    image_size:
        Height = width in pixels (CIFAR: 32; benches may use 16).
    n_classes, channels:
        Defaults match CIFAR-10 (10 classes, RGB).
    noise:
        Per-pixel Gaussian noise std; higher = harder + more overfitting
        headroom.
    seed:
        Controls templates and realizations; the same seed always yields
        the identical dataset.
    """
    if min(n_train, n_test) < 1:
        raise ValueError("n_train and n_test must be >= 1")
    if image_size < 4:
        raise ValueError(f"image_size must be >= 4, got {image_size}")
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 777]))
    templates = _class_templates(n_classes, channels, image_size, rng)
    max_shift = max(1, image_size // 8)

    y_train = np.arange(n_train, dtype=np.int64) % n_classes
    rng.shuffle(y_train)
    y_test = np.arange(n_test, dtype=np.int64) % n_classes
    rng.shuffle(y_test)
    x_train = _render(templates, y_train, noise, max_shift, rng)
    x_test = _render(templates, y_test, noise, max_shift, rng)

    # Per-pixel mean subtraction, as in the paper's ResNet preprocessing.
    mean = x_train.mean(axis=0, keepdims=True)
    x_train = x_train - mean
    x_test = x_test - mean
    return ImageDataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        n_classes=n_classes,
    )
