"""Table VI: accuracy of the deep models under each regularization mode.

Trains Alex-CIFAR-10 and the ResNet under no regularization, expert-
tuned L2 and adaptive GM, and prints the accuracy column against the
paper's Table VI.  Reproduction targets:

- Alex-CIFAR-10: the full ordering none < L2 < GM (the paper's primary
  case study);
- ResNet: regularization effects are small (BN is itself a regularizer,
  as the paper notes) — GM must at least beat no regularization *or*
  match L2 within noise; the honest comparison is in EXPERIMENTS.md.
"""

from conftest import run_once

from repro.experiments import (
    alex_bench_config,
    format_table6,
    resnet_bench_config,
    run_table6,
)


def test_table6_alexnet(benchmark, report):
    results = run_once(benchmark, lambda: run_table6(alex_bench_config()))
    report("=== Table VI (Alex-CIFAR-10) ===\n" + format_table6(results, "alex"))
    accs = {m: r.test_accuracy for m, r in results.items()}
    # The paper's ordering on its primary case study.
    assert accs["none"] < accs["gm"]
    assert accs["l2"] < accs["gm"]


def test_table6_resnet(benchmark, report):
    results = run_once(benchmark, lambda: run_table6(resnet_bench_config()))
    report("=== Table VI (ResNet) ===\n" + format_table6(results, "resnet"))
    accs = {m: r.test_accuracy for m, r in results.items()}
    # At bench scale the BN-heavy ResNet shows small regularization
    # effects; require GM to be competitive with the better of the
    # other two modes rather than strictly dominant.
    assert accs["gm"] >= max(accs["none"], accs["l2"]) - 0.08
