"""Figure 7: wall-clock time per warm-up length E.

Sweeps the number of eager epochs E in {1, 2, 5, 10} (at Im = Ig = 50)
plus the L2 baseline.  Reproduction targets (Section V-F3):

- larger E costs more total time (eager epochs pay full EM cost);
- small E (E=1) reaches a comparable accuracy at a fraction of the
  E=max cost — the paper reports ~70% of the E=50 time; with our
  12-epoch budget the sweep tops out at E=10 and the same monotone
  shape must hold.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    format_series,
    format_timing_curves,
    run_warmup_sweep,
    timing_bench_config,
)

E_VALUES = (1, 2, 5, 10)


def run_experiment():
    return run_warmup_sweep(timing_bench_config(), e_values=E_VALUES, im=50)


def test_fig7_warmup_sweep(benchmark, report):
    curves = run_once(benchmark, run_experiment)
    lines = ["=== Figure 7: time vs epoch per warm-up length E ==="]
    for curve in curves:
        lines.append(format_series(
            f"{curve.label:9s}", curve.epochs.tolist(),
            curve.cumulative_seconds, fmt=".2f",
        ))
    lines.append("")
    lines.append(format_timing_curves(curves))
    report("\n".join(lines))

    times = {c.label: c.total_seconds for c in curves}
    accs = {c.label: c.test_accuracy for c in curves}
    # Monotone: more eager epochs, more time (allowing 10% timing noise).
    assert times["E=1"] <= times["E=10"] * 1.1
    assert times["E=1"] < times["E=10"]
    # E=1 reaches a clearly sub-1 fraction of the E=10 cost.
    assert times["E=1"] / times["E=10"] < 0.9
    # ... with no accuracy drop.
    assert accs["E=1"] >= accs["E=10"] - 0.06
    for curve in curves:
        assert np.all(np.diff(curve.cumulative_seconds) > 0.0)
