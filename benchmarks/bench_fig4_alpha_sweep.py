"""Figure 4: accuracy vs Dirichlet exponent per GM init method.

Sweeps the Dirichlet exponent (the paper's alpha axis: alpha_k =
M**exponent for exponent in {0.3, 0.5, 0.7, 0.9}) for the three GM
initialization methods on Alex-CIFAR-10 and prints one accuracy series
per method — the text analogue of Figure 4(a).
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    alex_bench_config,
    format_series,
    run_init_alpha_sweep,
)

ALPHAS = (0.3, 0.5, 0.7, 0.9)
INITS = ("linear", "identical", "proportional")


def run_experiment():
    config = alex_bench_config(epochs=10)
    return run_init_alpha_sweep(config, init_methods=INITS,
                                alpha_exponents=ALPHAS)


def test_fig4_alpha_sweep(benchmark, report):
    sweep = run_once(benchmark, run_experiment)
    lines = ["=== Figure 4: accuracy vs Dirichlet exponent (Alex) ==="]
    for init in INITS:
        series = [sweep[(init, a)].test_accuracy for a in ALPHAS]
        lines.append(format_series(f"{init:12s}", ALPHAS, series))
    report("\n".join(lines))

    assert len(sweep) == len(ALPHAS) * len(INITS)
    accs = np.array([r.test_accuracy for r in sweep.values()])
    assert np.all((accs >= 0.0) & (accs <= 1.0))
    # Every run trained away from chance (10 classes).
    assert accs.mean() > 0.3
