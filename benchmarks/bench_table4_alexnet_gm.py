"""Table IV: learned per-layer GM regularization for Alex-CIFAR-10.

Trains the Alex-CIFAR-10 architecture with one adaptive GM per layer
(identical hyper-parameter rule for all layers) and prints the learned
(pi, lambda) per layer against the paper's Table IV.  The reproduction
target is the *structure*: every layer collapses to <= 2 components
with a dominant high-precision component, and layers differ in their
learned precisions despite sharing the hyper-parameter rule.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    PAPER_TABLE4_ALEX,
    alex_bench_config,
    format_mixture_rows,
    layer_mixture_table,
    train_deep,
)


def run_experiment():
    config = alex_bench_config()
    return train_deep(config, method="gm")


def test_table4_alexnet_learned_gm(benchmark, report):
    result = run_once(benchmark, run_experiment)
    rows = layer_mixture_table(result)
    report(
        "=== Table IV: learned GM per Alex-CIFAR-10 layer ===\n"
        + format_mixture_rows(rows, PAPER_TABLE4_ALEX)
        + f"\n(test accuracy {result.test_accuracy:.3f})"
    )
    assert len(rows) == 4  # conv1-3 + dense, as in Table IV
    for _name, pi, lam in rows:
        assert len(pi) <= 2  # K=4 collapsed, like the paper
        assert np.isclose(sum(pi), 1.0)
        # Dominant high-precision component (the paper's pattern).
        if len(pi) == 2:
            assert pi[1] > pi[0]
            assert lam[1] > lam[0]
