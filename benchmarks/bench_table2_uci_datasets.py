"""Table II: UCI dataset characteristics.

Regenerates all 11 UCI stand-ins and prints their characteristics table,
which must match the paper's Table II exactly (sample counts, encoded
feature counts, feature types).
"""

from conftest import run_once

from repro.datasets import UCI_SPECS, make_uci_dataset, uci_dataset_names
from repro.experiments import format_table


def build_table2():
    rows = []
    for name in uci_dataset_names():
        dataset = make_uci_dataset(name, seed=0)
        spec = UCI_SPECS[name]
        rows.append([
            name,
            dataset.n_samples,
            dataset.encoded_dim(),
            dataset.feature_type,
            "OK" if dataset.encoded_dim() == spec.n_encoded_features
            else "MISMATCH",
        ])
    return rows


def test_table2_uci_datasets(benchmark, report):
    rows = run_once(benchmark, build_table2)
    report(
        "=== Table II: UCI dataset characteristics ===\n"
        + format_table(
            ["Dataset", "# Samples", "# Features", "Feature Type", "vs paper"],
            rows,
        )
    )
    assert all(row[4] == "OK" for row in rows)
