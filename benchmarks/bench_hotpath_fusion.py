"""Hot-path fusion: fused E-step/gradient training vs the legacy path.

Trains the Alex-CIFAR timing configuration (the Figures 5-7 setup, run
*eagerly* so the EM machinery fires every iteration) under four
configurations of the same experiment:

- ``legacy``     — ``fused=False`` + per-layer E-steps
  (``stacked_em=False``): the pre-fusion arithmetic, which evaluates
  the per-component Gaussian densities twice per iteration;
- ``fused_exact``— the default: one shared density evaluation per
  iteration with bit-identical reference arithmetic;
- ``fused_fast`` — the single-``exp`` buffered kernel over the stacked
  multi-layer block;
- ``fused_fast_f32`` — the same kernel computing in float32 with the
  model cast to float32 (float64 M-step accumulation).

It writes ``BENCH_hotpath.json`` with per-phase attribution (the
``phase/estep`` … ``phase/sgd`` timer totals per mode) and enforces the
tentpole's claims:

- ``fused_fast`` trains >= 2x faster than ``legacy`` (training-loop
  wall-clock, same data, same seed);
- the float64 fused modes' final losses are within 1e-6 of the legacy
  run (``fused_exact``'s whole loss trajectory is bit-identical); the
  float32 mode is held to single-precision scale (1e-3);
- the win is attributable to the E-/M-step phases: the fused run's
  density-evaluation count is half the legacy run's, and the E+M phase
  savings account for the bulk of the wall-clock saved.

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_hotpath_fusion.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath_fusion.py
"""

import argparse
import sys

import numpy as np

from repro.experiments.deep import load_image_data, train_deep
from repro.experiments.timing import timing_bench_config
from repro.telemetry import bench_filename, bench_payload, write_bench_json

MIN_SPEEDUP = 2.0
MAX_LOSS_DIFF = 1e-6
# float32 accumulates rounding over the whole SGD trajectory, so its
# final loss is compared at single-precision scale, not the float64
# bit-comparability gate.
MAX_LOSS_DIFF_F32 = 1e-3
# Fraction of the wall-clock saving that must come from the phases the
# fusion actually touches (E-step + M-step + grad), per the phase timers.
MIN_EM_ATTRIBUTION = 0.5

MODES = {
    "legacy": dict(
        reg_kwargs={"fused": False}, trainer_kwargs={"stacked_em": False}
    ),
    "fused_exact": dict(),
    "fused_fast": dict(reg_kwargs={"kernel": "fast"}),
    "fused_fast_f32": dict(
        reg_kwargs={"kernel": "fast", "compute_dtype": np.float32},
        model_dtype=np.float32,
    ),
}

PHASES = ("estep", "grad", "mstep", "sgd")


def run_benchmark(quick: bool = False):
    config = timing_bench_config(epochs=3 if quick else 12)
    data = load_image_data(config)

    modes = {}
    for mode, kwargs in MODES.items():
        result = train_deep(config, data=data, **kwargs)
        times = result.history.cumulative_times()
        gauges = result.metrics.get("gauges", {})
        modes[mode] = {
            "wall_seconds": float(times[-1]),
            "phases": {
                p: result.phase_seconds().get(p, 0.0) for p in PHASES
            },
            "losses": [float(v) for v in result.history.losses()],
            "final_loss": float(result.history.losses()[-1]),
            "test_accuracy": result.test_accuracy,
            "density_evals": int(gauges.get("em/density_evals") or 0),
            "estep_refreshes": int(gauges.get("em/estep_refreshes") or 0),
        }

    legacy = modes["legacy"]
    for mode, m in modes.items():
        m["speedup"] = legacy["wall_seconds"] / m["wall_seconds"]
        m["loss_abs_diff"] = abs(m["final_loss"] - legacy["final_loss"])

    payload = bench_payload(
        "hotpath",
        metrics={},
        extra={
            "quick": quick,
            "config": {
                "model": config.model,
                "image_size": config.image_size,
                "n_train": config.n_train,
                "epochs": config.epochs,
                "batch_size": config.batch_size,
            },
            "min_speedup": MIN_SPEEDUP,
            "max_loss_diff": MAX_LOSS_DIFF,
            "max_loss_diff_f32": MAX_LOSS_DIFF_F32,
            "min_em_attribution": MIN_EM_ATTRIBUTION,
            "modes": modes,
        },
    )
    path = write_bench_json(bench_filename("hotpath"), payload)
    return payload, path


def check_claims(payload):
    modes = payload["extra"]["modes"]
    legacy, fast = modes["legacy"], modes["fused_fast"]

    assert fast["speedup"] >= MIN_SPEEDUP, (
        f"fused fast path is only {fast['speedup']:.2f}x faster than the "
        f"legacy path (gate: >= {MIN_SPEEDUP}x; legacy "
        f"{legacy['wall_seconds']:.2f}s, fused {fast['wall_seconds']:.2f}s)"
    )
    for mode, tol in (
        ("fused_exact", MAX_LOSS_DIFF),
        ("fused_fast", MAX_LOSS_DIFF),
        ("fused_fast_f32", MAX_LOSS_DIFF_F32),
    ):
        diff = modes[mode]["loss_abs_diff"]
        assert diff <= tol, (
            f"{mode} final loss differs from legacy by {diff:.2e} (> {tol:.0e})"
        )
    assert modes["fused_exact"]["losses"] == legacy["losses"], (
        "fused exact kernel must be bit-identical to the legacy path"
    )

    # Attribution: the fused path evaluates the densities once per
    # refresh instead of twice, and the saving shows up in the phases
    # the fusion touches.
    assert legacy["density_evals"] == 2 * fast["density_evals"], (
        f"expected legacy to evaluate densities twice per refresh "
        f"(legacy {legacy['density_evals']}, fused {fast['density_evals']})"
    )
    em_saved = sum(
        legacy["phases"][p] - fast["phases"][p]
        for p in ("estep", "grad", "mstep")
    )
    wall_saved = legacy["wall_seconds"] - fast["wall_seconds"]
    attribution = em_saved / wall_saved
    assert attribution >= MIN_EM_ATTRIBUTION, (
        f"only {attribution:.0%} of the saving is in the E-step/grad/"
        f"M-step phases (gate: >= {MIN_EM_ATTRIBUTION:.0%})"
    )


def format_report(payload, path):
    extra = payload["extra"]
    modes = extra["modes"]
    lines = ["=== hot-path fusion: training wall-clock by mode ==="]
    header = (
        f"{'mode':16s} {'wall':>7s} {'speedup':>8s} "
        + " ".join(f"{p:>7s}" for p in PHASES)
        + f" {'|dloss|':>9s} {'#dens':>6s}"
    )
    lines.append(header)
    for mode, m in modes.items():
        lines.append(
            f"{mode:16s} {m['wall_seconds']:6.2f}s {m['speedup']:7.2f}x "
            + " ".join(f"{m['phases'][p]:6.2f}s" for p in PHASES)
            + f" {m['loss_abs_diff']:9.1e} {m['density_evals']:6d}"
        )
    lines.append(
        f"gates: speedup >= {extra['min_speedup']}x, "
        f"|final loss - legacy| <= {extra['max_loss_diff']:.0e} "
        f"(f32: {extra['max_loss_diff_f32']:.0e}), "
        f"E/M attribution >= {extra['min_em_attribution']:.0%}"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_hotpath_fusion(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer epochs for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
