"""Figure 3: learned Gaussian components on horse-colic and conn-sonar.

Trains logistic regression with GM regularization on the two
representative small datasets and prints the learned mixtures, the
density series over the weight axis, and the crossover points A/B where
the dominant component changes.  Reproduction targets:

- two components are learned on both datasets;
- the high-precision component dominates near zero, the low-precision
  one beyond the crossover;
- the two datasets learn clearly *different* mixtures (the paper's
  point about adaptivity across datasets).
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    PAPER_FIG3_MIXTURES,
    fit_gm_mixture_for_dataset,
    format_series,
)


def run_experiment():
    return {
        name: fit_gm_mixture_for_dataset(name)
        for name in ("horse-colic", "conn-sonar")
    }


def test_fig3_learned_components(benchmark, report):
    mixtures = run_once(benchmark, run_experiment)
    lines = ["=== Figure 3: learned Gaussian components ==="]
    for name, mixture in mixtures.items():
        paper_pi, paper_lam = PAPER_FIG3_MIXTURES[name]
        lines.append(
            f"{name}: pi={np.round(mixture.pi, 3).tolist()} "
            f"lambda={np.round(mixture.lam, 3).tolist()} "
            f"crossovers(A/B)={np.round(mixture.crossovers, 3).tolist()}"
            f"   [paper: pi={paper_pi} lambda={paper_lam}]"
        )
        # Coarse density series (the text analogue of the figure line).
        stride = max(1, mixture.grid.size // 9)
        lines.append("  " + format_series(
            "density", np.round(mixture.grid[::stride], 2),
            mixture.density[::stride],
        ))
    report("\n".join(lines))

    for name, mixture in mixtures.items():
        assert mixture.pi.size == 2, name
        assert mixture.crossovers.size >= 1, name
        # High-precision component dominates at w=0.
        high = int(np.argmax(mixture.lam))
        comp_at_zero = mixture.component_densities[:, mixture.grid.size // 2]
        assert comp_at_zero[high] == comp_at_zero.max()
    # Different datasets learn different mixtures.
    lam_a = np.sort(mixtures["horse-colic"].lam)
    lam_b = np.sort(mixtures["conn-sonar"].lam)
    assert not np.allclose(lam_a, lam_b, rtol=0.25)
