"""Serving resilience under injected faults: zero drops, bounded p99.

Replays bursts of single-row predict requests against a registry-backed
``repro.serve`` stack in three regimes and writes
``BENCH_resilience.json``:

- **baseline** — no chaos, the fault-free reference for p99;
- **chaos** — the seeded :class:`~repro.serve.resilience.FaultInjector`
  drives >=10% injected errors and 50ms latency spikes on the model and
  registry sites plus 10% cache corruption, with the resilience policy
  (retry + registry breaker + batch rescue + cache integrity) engaged;
- **registry outage** — the registry site fails 100% of the time, so
  the circuit breaker must open and the server must degrade to its
  last-known-good model snapshot.

The run asserts the resilience claims this PR is anchored on:

- **zero dropped requests** in every regime — each request either
  returns the correct label or the bench counts it as dropped;
- served labels stay **bit-identical** to a direct per-row model loop
  (chaos may slow answers, never change them);
- chaos p99 stays **bounded**: under the retry/latency worst case
  (``2 * max_attempts * (spike + max_backoff)`` plus 10x the baseline
  p99) rather than collapsing;
- the outage is **visible in telemetry**: the registry breaker records
  transitions/opens and stale-snapshot serves are counted;
- injected cache corruption is **detected** (checksum mismatches
  counted, no corrupted value ever returned).

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_resilience.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py
"""

import argparse
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.linear.logistic import LogisticRegression
from repro.serve import (
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    ModelRegistry,
    ModelServer,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.telemetry import bench_filename, bench_payload, write_bench_json

N_FEATURES = 24
ERROR_RATE = 0.1
LATENCY_RATE = 0.1
LATENCY_SECONDS = 0.05
CORRUPTION_RATE = 0.1
MAX_ATTEMPTS = 6
MAX_BACKOFF = 0.02
CLIENT_THREADS = 16


def build_workload(quick):
    """Seeded rows plus a trained-ish logistic model behind a registry."""
    n = 256 if quick else 1024
    rng = np.random.default_rng(7)
    x = rng.normal(size=(n, N_FEATURES))
    model = LogisticRegression(N_FEATURES, rng=np.random.default_rng(11))
    registry = ModelRegistry()
    registry.register(
        "bench", lambda: LogisticRegression(N_FEATURES, weight_init_std=0.0)
    )
    registry.publish("bench", model)
    reference = np.array(
        [model.predict(row[np.newaxis, :])[0] for row in x]
    )
    return x, model, registry, reference


def fresh_policy():
    """One resilience policy per regime (breaker state must not leak)."""
    return ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=MAX_ATTEMPTS,
            base_delay=0.002,
            max_delay=MAX_BACKOFF,
            seed=2018,
        ),
        registry_breaker=CircuitBreaker(
            name="registry",
            window=32,
            failure_threshold=0.5,
            min_calls=8,
            reset_timeout=0.25,
            half_open_probes=2,
        ),
    )


def serve_burst(server, x, passes=1):
    """Fire every row per-request from a client pool; count drops.

    Any exception escaping ``server.request`` is a dropped request —
    the thing the resilience layer exists to prevent.  Returns the
    last pass's labels plus the drop count across all passes.
    """
    dropped = [0]

    def one(row):
        try:
            return server.request("predict", row)
        except Exception:
            dropped[0] += 1
            return None

    labels = None
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        for _ in range(passes):
            labels = list(pool.map(one, x))
    return labels, dropped[0]


def summarize(server, labels, dropped, reference):
    """Per-regime result row for the payload."""
    stats = server.stats()
    counters = stats["metrics"]["counters"]
    answered = [label for label in labels if label is not None]
    return {
        "requests": stats["requests"],
        "dropped": dropped,
        "labels_match_reference": bool(
            len(answered) == len(reference)
            and np.array_equal(np.array(answered), reference)
        ),
        "p50_ms": stats.get("latency_p50_ms", 0.0),
        "p99_ms": stats.get("latency_p99_ms", 0.0),
        "retries": stats["retries"],
        "rescued": stats["rescued"],
        "stale_model_served": stats["stale_model_served"],
        "shed": stats["shed"],
        "cache": server.cache.stats(),
        "breaker_transitions": counters.get(
            "resilience/breaker/registry/transitions_total", 0.0
        ),
        "breaker_opened": counters.get(
            "resilience/breaker/registry/opened_total", 0.0
        ),
        "breaker_state": server.health()["breakers"].get("registry"),
        "injected_faults": {
            key.split("resilience/faults/", 1)[1]: value
            for key, value in counters.items()
            if key.startswith("resilience/faults/")
        },
    }


def run_baseline(x, registry, reference):
    server = ModelServer(
        registry=registry, name="bench", resilience=fresh_policy(),
        max_queue=len(x) + 8, cache_size=0, workers=2,
    )
    with server:
        labels, dropped = serve_burst(server, x)
        row = summarize(server, labels, dropped, reference)
    return row


def run_chaos(x, registry, reference):
    injector = FaultInjector.chaos(
        error_rate=ERROR_RATE,
        latency_rate=LATENCY_RATE,
        latency_seconds=LATENCY_SECONDS,
        corruption_rate=CORRUPTION_RATE,
        seed=2018,
    )
    server = ModelServer(
        registry=registry, name="bench", resilience=fresh_policy(),
        fault_injector=injector, max_queue=len(x) + 8,
        cache_size=len(x), workers=2,
    )
    with server:
        # Two passes: the second replays every row against the (10%
        # poisoned) cache, so corruption detection is exercised.
        labels, dropped = serve_burst(server, x, passes=2)
        row = summarize(server, labels, dropped, reference)
    return row


def run_outage(x, registry, reference):
    injector = FaultInjector(seed=2018)
    server = ModelServer(
        registry=registry, name="bench", resilience=fresh_policy(),
        fault_injector=injector, max_queue=len(x) + 8,
        cache_size=0, workers=2,
    )
    with server:
        # Warm resolve so a last-known-good snapshot exists, then cut
        # the registry off completely.
        server.request("predict", x[0])
        injector.profiles["registry"] = FaultProfile(error_rate=1.0)
        outage_rows = x[: max(64, len(x) // 8)]
        labels, dropped = serve_burst(server, outage_rows)
        row = summarize(
            server, labels, dropped, reference[: len(outage_rows)]
        )
        # The warm-up request is not part of the outage accounting.
        row["requests"] -= 1
    return row


def run_benchmark(quick=False):
    x, _model, registry, reference = build_workload(quick)

    baseline = run_baseline(x, registry, reference)
    chaos = run_chaos(x, registry, reference)
    outage = run_outage(x, registry, reference)

    # Worst-case added latency for one request that eats a full retry
    # ladder of latency spikes and max backoffs on both the batched and
    # the rescue path, plus 10x the fault-free p99 for scheduling slop.
    p99_bound_ms = (
        2 * MAX_ATTEMPTS * (LATENCY_SECONDS + MAX_BACKOFF) * 1e3
        + 10.0 * max(baseline["p99_ms"], 1.0)
    )

    payload = bench_payload(
        "resilience",
        extra={
            "quick": quick,
            "n_requests": int(len(x)),
            "n_features": N_FEATURES,
            "client_threads": CLIENT_THREADS,
            "fault_profile": {
                "error_rate": ERROR_RATE,
                "latency_rate": LATENCY_RATE,
                "latency_seconds": LATENCY_SECONDS,
                "corruption_rate": CORRUPTION_RATE,
            },
            "retry": {
                "max_attempts": MAX_ATTEMPTS,
                "max_backoff_seconds": MAX_BACKOFF,
            },
            "p99_bound_ms": p99_bound_ms,
            "baseline": baseline,
            "chaos": chaos,
            "outage": outage,
        },
    )
    path = write_bench_json(bench_filename("resilience"), payload)
    return payload, path


def check_claims(payload):
    extra = payload["extra"]
    baseline, chaos, outage = (
        extra["baseline"], extra["chaos"], extra["outage"],
    )
    for regime_name, regime in (
        ("baseline", baseline), ("chaos", chaos), ("outage", outage),
    ):
        assert regime["dropped"] == 0, (
            f"{regime_name}: {regime['dropped']} requests dropped"
        )
        assert regime["labels_match_reference"], (
            f"{regime_name}: served labels differ from the direct "
            f"per-row model loop"
        )
    faults = chaos["injected_faults"]
    assert sum(faults.values()) > 0, "chaos run injected nothing"
    assert chaos["p99_ms"] <= extra["p99_bound_ms"], (
        f"chaos p99 {chaos['p99_ms']:.1f}ms exceeds bound "
        f"{extra['p99_bound_ms']:.1f}ms (baseline "
        f"{baseline['p99_ms']:.1f}ms)"
    )
    assert chaos["cache"]["corruptions"] > 0, (
        "cache-corruption chaos was never detected by integrity checks"
    )
    assert outage["breaker_opened"] >= 1, (
        "registry outage never opened the circuit breaker"
    )
    assert outage["breaker_transitions"] >= 1, (
        "breaker transitions not visible in MetricsRegistry"
    )
    assert outage["stale_model_served"] > 0, (
        "outage requests were not served from the stale snapshot"
    )


def format_report(payload, path):
    extra = payload["extra"]
    lines = ["=== serving resilience: baseline vs chaos vs registry outage ==="]
    for name in ("baseline", "chaos", "outage"):
        row = extra[name]
        lines.append(
            f"{name:9s} requests={row['requests']:6.0f} dropped={row['dropped']}"
            f"  p50={row['p50_ms']:8.3f}ms  p99={row['p99_ms']:8.3f}ms"
            f"  retries={row['retries']:.0f} rescued={row['rescued']:.0f}"
            f"  stale={row['stale_model_served']:.0f}"
            f"  breaker={row['breaker_state']}"
        )
    chaos = extra["chaos"]
    lines.append(
        f"chaos p99 bound: {chaos['p99_ms']:.1f}ms <= "
        f"{extra['p99_bound_ms']:.1f}ms; injected={chaos['injected_faults']}; "
        f"cache corruptions detected={chaos['cache']['corruptions']}"
    )
    lines.append(
        f"outage breaker: opened={extra['outage']['breaker_opened']:.0f} "
        f"transitions={extra['outage']['breaker_transitions']:.0f}"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_resilience(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller burst for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
