"""Sharded serving: aggregate QPS across a shard-count sweep + chaos drill.

Replays the same closed-loop burst against
:class:`repro.serve.sharding.server.ShardedModelServer` at shard counts
1 / 2 / 4 / ``os.cpu_count()`` (deduplicated), over the same seeded MLP
and synthetic rows as ``bench_serve_throughput``, and writes
``BENCH_serve_sharded.json`` with per-shard-count QPS and latency
percentiles plus a :mod:`repro.loadgen` heavy-tail run and a
kill-one-worker chaos drill.

Asserted claims:

- the served hard labels are **bit-identical** at every shard count and
  against a direct per-row model loop (float64 slab transport is
  lossless; only BLAS batch shapes could differ, and those affect
  probabilities by ulps, never thresholded labels);
- the chaos drill (SIGKILL one of two workers at the schedule midpoint)
  answers **every** scheduled request with zero errors and records a
  respawn;
- **aggregate scaling**: 4 shards deliver >= 2.5x the 1-shard QPS.
  This last gate needs real parallel hardware, so it is enforced only
  when ``os.cpu_count() >= 4`` — on smaller machines the sweep is still
  measured and recorded, and the JSON says the gate was skipped (a
  1-core box physically cannot scale process-parallel scoring).

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_serve_sharded.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_sharded.py
"""

import argparse
import os
import sys
import time

import numpy as np

from repro.datasets.preprocessing import TabularEncoder
from repro.datasets.synthetic import CategoricalSpec, TabularSchema, generate_dataset
from repro.loadgen import LoadGenerator, TrafficMix, build_schedule
from repro.nn import Network
from repro.nn.layers import Dense, ReLU
from repro.serve.sharding import ShardedModelServer
from repro.telemetry import bench_filename, bench_payload, write_bench_json

WIDTHS = (256, 128)
SCALING_FLOOR = 2.5
SCALING_SHARDS = 4


def build_workload(quick: bool):
    """Encoded synthetic-dataset rows plus a seeded MLP to score them."""
    schema = TabularSchema(
        n_continuous=24,
        categorical=(
            CategoricalSpec("ward", 6),
            CategoricalSpec("payer", 4),
            CategoricalSpec("admission", 3),
        ),
        predictive_fraction=0.4,
    )
    n_rows = 512 if quick else 2048
    table, _labels, _weights = generate_dataset(
        schema, n_samples=n_rows, rng=np.random.default_rng(7)
    )
    x = TabularEncoder().fit_transform(table)
    rng = np.random.default_rng(11)
    d = x.shape[1]
    model = Network([
        Dense("fc1", d, WIDTHS[0], rng=rng),
        ReLU("r1"),
        Dense("fc2", WIDTHS[0], WIDTHS[1], rng=rng),
        ReLU("r2"),
        Dense("head", WIDTHS[1], 2, rng=rng),
    ], name="serve-mlp")
    return x, model


def shard_counts():
    """1 / 2 / 4 / core-count, deduplicated and sorted."""
    cores = os.cpu_count() or 1
    return sorted({1, 2, 4, cores})


def sharded_burst(model, x, n_shards, repeats=3):
    """Closed-loop burst at one shard count; best-of-N pass is reported."""
    server = ShardedModelServer(
        model=model,
        n_shards=n_shards,
        n_features=x.shape[1],
        max_batch_size=32,
        batch_timeout=0.0,
        max_queue=len(x) + 8,     # no shedding: measure the sharded path
        cache_size=0,             # every request must cross to a worker
        monitor_interval=0.05,
    )
    with server:
        server.predict_many(x[:64])  # warm-up, untimed
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            labels = np.array(server.predict_many(x))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        stats = server.stats()
    return labels, len(x) / best, stats


def chaos_drill(model, x, n_requests=400):
    """Kill one of two workers mid-replay; every request must answer."""
    schedule = build_schedule(
        TrafficMix.closed_loop(), n_requests, min(64, len(x)), seed=2018
    )
    server = ShardedModelServer(
        model=model, n_shards=2, n_features=x.shape[1],
        cache_size=0, monitor_interval=0.02,
    )
    with server:
        report = LoadGenerator(
            server, schedule, x[:64], workers=8, mix_name="closed_loop",
            kill_shard_at=(n_requests // 2, 1),
        ).run()
        respawns = sum(h.respawns for h in server.supervisor.handles)
    return {
        "n_scheduled": n_requests,
        "n_answered": report.n_requests,
        "errors": report.errors,
        "dropped": n_requests - report.n_requests,
        "respawns": respawns,
        "qps": report.qps,
    }


def heavy_tail_run(model, x, n_requests=600):
    """One seeded heavy-tail mix replay for the per-shard table."""
    mix = TrafficMix.heavy_tail(mean_gap=0.0)
    schedule = build_schedule(mix, n_requests, min(64, len(x)), seed=2018)
    server = ShardedModelServer(
        model=model, n_shards=2, n_features=x.shape[1],
        monitor_interval=0.05,
    )
    with server:
        report = LoadGenerator(
            server, schedule, x[:64], workers=8, mix_name=mix.name,
        ).run()
    return report


def run_benchmark(quick: bool = False):
    x, model = build_workload(quick)
    reference = np.array([model.predict(row[np.newaxis, :])[0] for row in x])
    cores = os.cpu_count() or 1

    sweep = []
    labels_by_count = {}
    for n_shards in shard_counts():
        labels, qps, stats = sharded_burst(model, x, n_shards)
        labels_by_count[n_shards] = labels
        entry = {
            "shards": n_shards,
            "qps": qps,
            "mean_batch_size": stats["mean_batch_size"],
            "p50_ms": stats.get("latency_p50_ms"),
            "p99_ms": stats.get("latency_p99_ms"),
            "shard_requests": stats["shard_requests"],
        }
        sweep.append(entry)

    bit_identical = all(
        np.array_equal(labels, reference)
        for labels in labels_by_count.values()
    )
    by_count = {entry["shards"]: entry["qps"] for entry in sweep}
    scaling = (
        by_count[SCALING_SHARDS] / by_count[1]
        if SCALING_SHARDS in by_count else None
    )
    scaling_gate = (
        "enforced" if cores >= SCALING_SHARDS
        else f"skipped (cpu_count={cores} < {SCALING_SHARDS}: "
             "process-parallel scoring cannot scale on this machine)"
    )

    chaos = chaos_drill(model, x)
    tail_report = heavy_tail_run(model, x)

    payload = bench_payload(
        "serve_sharded",
        extra={
            "quick": quick,
            "cpu_count": cores,
            "n_requests": int(len(x)),
            "n_features": int(x.shape[1]),
            "model": f"mlp {x.shape[1]}-{WIDTHS[0]}-{WIDTHS[1]}-2",
            "sweep": sweep,
            "scaling_qps_4_over_1": scaling,
            "scaling_floor": SCALING_FLOOR,
            "scaling_gate": scaling_gate,
            "bit_identical_predictions": bit_identical,
            "chaos_kill_one_worker": chaos,
            "heavy_tail": tail_report.to_dict(),
        },
    )
    path = write_bench_json(bench_filename("serve_sharded"), payload)
    return payload, path


def check_claims(payload):
    extra = payload["extra"]
    assert extra["bit_identical_predictions"], (
        "sharded labels differ from the per-row reference"
    )
    chaos = extra["chaos_kill_one_worker"]
    assert chaos["dropped"] == 0, f"chaos drill dropped {chaos['dropped']}"
    assert chaos["errors"] == 0, f"chaos drill errored {chaos['errors']}"
    assert chaos["respawns"] >= 1, "worker was killed but never respawned"
    if extra["scaling_gate"] == "enforced":
        assert extra["scaling_qps_4_over_1"] >= extra["scaling_floor"], (
            f"4-shard scaling {extra['scaling_qps_4_over_1']:.2f}x < "
            f"{extra['scaling_floor']}x"
        )


def format_report(payload, path):
    extra = payload["extra"]
    lines = ["=== sharded serving: shard-count sweep ==="]
    for entry in extra["sweep"]:
        p50 = entry["p50_ms"]
        p99 = entry["p99_ms"]
        lines.append(
            f"shards={entry['shards']:<2d} qps={entry['qps']:9.0f}  "
            f"mean_batch={entry['mean_batch_size']:5.1f}  "
            f"p50={p50:8.3f}ms  p99={p99:8.3f}ms"
        )
    scaling = extra["scaling_qps_4_over_1"]
    if scaling is not None:
        lines.append(
            f"scaling 4/1: {scaling:.2f}x (gate {extra['scaling_gate']})"
        )
    chaos = extra["chaos_kill_one_worker"]
    lines.append(
        f"chaos: answered {chaos['n_answered']}/{chaos['n_scheduled']} "
        f"dropped={chaos['dropped']} errors={chaos['errors']} "
        f"respawns={chaos['respawns']}"
    )
    lines.append(
        f"bit-identical predictions: {extra['bit_identical_predictions']}"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_serve_sharded(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller burst for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
