"""Serving throughput: micro-batched vs. unbatched dispatch.

Replays a burst of single-row predict requests against the
``repro.serve`` stack twice — once with micro-batching enabled
(``max_batch_size=32``) and once fully unbatched (``max_batch_size=1``)
— over the same MLP scoring the same synthetic-dataset rows, and writes
``BENCH_serve.json`` with QPS and p50/p99 latency for both modes.

Both modes pay the identical per-request queue/handoff cost, so the
measured gap is exactly what coalescing buys: one NumPy forward pass
per 32 rows instead of 32 passes.  The run asserts the paper-stack
deployment claims this PR is anchored on:

- batched QPS >= 3x unbatched QPS at batch size 32;
- the served hard predictions are bit-identical across the batched
  path, the unbatched path and a direct per-row model loop (probability
  scores may differ by ulps — BLAS reduction order depends on the batch
  shape — but labels must not).

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py
"""

import argparse
import sys
import time

import numpy as np

from repro.datasets.preprocessing import TabularEncoder
from repro.datasets.synthetic import CategoricalSpec, TabularSchema, generate_dataset
from repro.nn import Network
from repro.nn.layers import Dense, ReLU
from repro.serve import ModelServer
from repro.telemetry import bench_filename, bench_payload, write_bench_json

BATCH_SIZE = 32
WIDTHS = (768, 384)


def build_workload(quick: bool):
    """Encoded synthetic-dataset rows plus a seeded MLP to score them."""
    schema = TabularSchema(
        n_continuous=24,
        categorical=(
            CategoricalSpec("ward", 6),
            CategoricalSpec("payer", 4),
            CategoricalSpec("admission", 3),
        ),
        predictive_fraction=0.4,
    )
    n_rows = 768 if quick else 4096
    table, _labels, _weights = generate_dataset(
        schema, n_samples=n_rows, rng=np.random.default_rng(7)
    )
    x = TabularEncoder().fit_transform(table)
    rng = np.random.default_rng(11)
    d = x.shape[1]
    model = Network([
        Dense("fc1", d, WIDTHS[0], rng=rng),
        ReLU("r1"),
        Dense("fc2", WIDTHS[0], WIDTHS[1], rng=rng),
        ReLU("r2"),
        Dense("head", WIDTHS[1], 2, rng=rng),
    ], name="serve-mlp")
    return x, model


def serve_burst(model, x, max_batch_size, repeats=3):
    """Push every row through a server; returns (labels, qps, stats).

    The first pass is an untimed warm-up (worker-thread spin-up, BLAS
    first-touch); the burst then repeats and the best pass is reported,
    the usual way to reject scheduler noise on shared CI runners.
    """
    server = ModelServer(
        model=model,
        max_batch_size=max_batch_size,
        batch_timeout=0.0,        # burst load keeps the queue full anyway
        max_queue=len(x) + 8,     # no shedding: measure the queued path only
        workers=1,                # single dispatcher = clean mode comparison
        cache_size=0,             # every request must hit the model
    )
    with server:
        server.predict_many(x[:64])  # warm-up, untimed
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            labels = np.array(server.predict_many(x))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
    stats = server.stats()
    return labels, len(x) / best, stats


def run_benchmark(quick: bool = False):
    x, model = build_workload(quick)
    reference = np.array([model.predict(row[np.newaxis, :])[0] for row in x])

    batched_labels, batched_qps, batched = serve_burst(model, x, BATCH_SIZE)
    unbatched_labels, unbatched_qps, unbatched = serve_burst(model, x, 1)

    bit_identical = bool(
        np.array_equal(batched_labels, reference)
        and np.array_equal(unbatched_labels, reference)
    )
    speedup = batched_qps / unbatched_qps

    payload = bench_payload(
        "serve",
        metrics=batched["metrics"],
        extra={
            "quick": quick,
            "n_requests": int(len(x)),
            "n_features": int(x.shape[1]),
            "model": f"mlp {x.shape[1]}-{WIDTHS[0]}-{WIDTHS[1]}-2",
            "batched": {
                "max_batch_size": BATCH_SIZE,
                "qps": batched_qps,
                "mean_batch_size": batched["mean_batch_size"],
                "p50_ms": batched["latency_p50_ms"],
                "p99_ms": batched["latency_p99_ms"],
            },
            "unbatched": {
                "max_batch_size": 1,
                "qps": unbatched_qps,
                "mean_batch_size": unbatched["mean_batch_size"],
                "p50_ms": unbatched["latency_p50_ms"],
                "p99_ms": unbatched["latency_p99_ms"],
            },
            "speedup_qps": speedup,
            "bit_identical_predictions": bit_identical,
        },
    )
    path = write_bench_json(bench_filename("serve"), payload)
    return payload, path


def check_claims(payload):
    extra = payload["extra"]
    assert extra["bit_identical_predictions"], (
        "served labels differ between batched/unbatched/per-row paths"
    )
    assert extra["speedup_qps"] >= 3.0, (
        f"micro-batching speedup {extra['speedup_qps']:.2f}x < 3x "
        f"(batched {extra['batched']['qps']:.0f} qps, "
        f"unbatched {extra['unbatched']['qps']:.0f} qps)"
    )
    # The batched run must have genuinely coalesced.
    assert extra["batched"]["mean_batch_size"] > BATCH_SIZE / 2


def format_report(payload, path):
    extra = payload["extra"]
    lines = ["=== serving throughput: micro-batched vs unbatched ==="]
    for mode in ("batched", "unbatched"):
        m = extra[mode]
        lines.append(
            f"{mode:10s} qps={m['qps']:9.0f}  mean_batch={m['mean_batch_size']:5.1f}"
            f"  p50={m['p50_ms']:8.3f}ms  p99={m['p99_ms']:8.3f}ms"
        )
    lines.append(
        f"speedup: {extra['speedup_qps']:.2f}x at batch size "
        f"{extra['batched']['max_batch_size']}  "
        f"(bit-identical predictions: {extra['bit_identical_predictions']})"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_serve_throughput(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller burst for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
