"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify the implementation decisions:
component pruning, component merging, log-space responsibilities, and
per-layer vs. global GMs for deep models.
"""

import numpy as np
from conftest import run_once

from repro.experiments import DeepRunConfig, format_table
from repro.experiments.ablations import (
    responsibility_stability_comparison,
    run_layer_sharing_ablation,
    run_merge_ablation,
    run_pruning_ablation,
)


def test_ablation_pruning_and_merging(benchmark, report):
    def run():
        rng = np.random.default_rng(0)
        return run_pruning_ablation(rng), run_merge_ablation(
            np.random.default_rng(1)
        )

    counts, merge = run_once(benchmark, run)
    rows = [[k, v] for k, v in counts.items()]
    rows += [[k, f"K={v[0]}, min rel precision gap={v[1]:.4f}"]
             for k, v in merge.items()]
    report("=== Ablation: component pruning & merging ===\n"
           + format_table(["Variant", "Outcome"], rows))
    assert counts["paper (prune+merge)"] <= 2
    assert counts["ablated (neither)"] == 4


def test_ablation_logspace_responsibilities(benchmark, report):
    comparison = run_once(benchmark, responsibility_stability_comparison)
    report(
        "=== Ablation: log-space vs naive responsibilities ===\n"
        + format_table(
            ["Implementation", "fraction of broken rows"],
            [["naive direct formula", f"{comparison['naive_bad_rows']:.3f}"],
             ["log-sum-exp (ours)", f"{comparison['logspace_bad_rows']:.3f}"]],
        )
    )
    assert comparison["logspace_bad_rows"] == 0.0
    assert comparison["naive_bad_rows"] > 0.0


def test_ablation_per_layer_vs_global_gm(benchmark, report):
    config = DeepRunConfig(
        model="alex", image_size=16, n_train=300, n_test=500, noise=1.0,
        epochs=15, width_scale=0.5,
    )
    outcome = run_once(benchmark, lambda: run_layer_sharing_ablation(config))
    lam_rows = [
        [name, np.round(lam, 2).tolist()]
        for name, lam in sorted(outcome.per_layer_lambdas.items())
    ]
    report(
        "=== Ablation: per-layer vs global GM (Alex) ===\n"
        + format_table(
            ["Variant", "test accuracy"],
            [["per-layer GMs (paper)", f"{outcome.per_layer_accuracy:.3f}"],
             ["single global GM", f"{outcome.global_accuracy:.3f}"]],
        )
        + "\nper-layer lambdas:\n"
        + format_table(["Layer", "lambda"], lam_rows)
        + f"\nglobal lambda: {np.round(outcome.global_lambda, 2).tolist()}"
    )
    # The paper's per-layer design must be at least competitive.
    assert outcome.per_layer_accuracy >= outcome.global_accuracy - 0.05
    # Per-layer mixtures genuinely differ across layers.
    lams = [np.sort(lam)[-1] for lam in outcome.per_layer_lambdas.values()]
    assert max(lams) / max(min(lams), 1e-9) > 1.05
