"""Table VIII: average accuracy per GM initialization method.

Sweeps the three GM initialization strategies over the four Dirichlet
exponents of Figure 4 and averages per strategy, reproducing Table
VIII.  Reproduction target: linear and proportional initialization are
not worse than identical initialization (the paper finds them "far
better").
"""

from conftest import run_once

from repro.experiments import (
    PAPER_TABLE8,
    alex_bench_config,
    average_by_init,
    format_table,
    run_init_alpha_sweep,
)


def run_experiment():
    config = alex_bench_config(epochs=10)
    return run_init_alpha_sweep(config)


def test_table8_init_methods(benchmark, report):
    sweep = run_once(benchmark, run_experiment)
    table8 = average_by_init(sweep)
    rows = [
        [method, f"{table8[method]:.3f}",
         f"{PAPER_TABLE8['alex'][method]:.3f}"]
        for method in ("linear", "identical", "proportional")
    ]
    report(
        "=== Table VIII: average accuracy per GM init method (Alex) ===\n"
        + format_table(["Method", "avg accuracy", "paper"], rows)
    )
    assert set(table8) == {"linear", "identical", "proportional"}
    assert max(table8["linear"], table8["proportional"]) \
        >= table8["identical"] - 0.03
