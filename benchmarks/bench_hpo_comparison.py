"""Extension: adaptive GM vs. random-search-tuned L2 (Section VI-B).

Not a paper table — quantifies the paper's positioning against
hyper-parameter optimization: random search must train many models to
tune a fixed L2 strength, while the GM tool adapts within a single
training run.  The bench reports test accuracy per training budget.
"""

from conftest import run_once

import numpy as np

from repro.datasets import TabularEncoder, TabularSchema, generate_dataset
from repro.experiments import format_table
from repro.experiments.hpo import compare_hpo_budgets


def run_experiment():
    schema = TabularSchema(
        n_continuous=60, predictive_fraction=0.15, class_separation=2.8,
        flip_rate=0.03, noise_std=0.2,
    )
    table, labels, _w = generate_dataset(schema, 900,
                                         np.random.default_rng(21))
    x = TabularEncoder().fit_transform(table)
    splits = (x[:500], labels[:500], x[500:650], labels[500:650],
              x[650:], labels[650:])
    return compare_hpo_budgets(*splits, budgets=(1, 2, 4, 8), epochs=100)


def test_hpo_budget_comparison(benchmark, report):
    comparison = run_once(benchmark, run_experiment)
    rows = [
        [label, f"{acc:.3f}", cost]
        for label, (acc, cost) in comparison.items()
    ]
    report("=== Extension: GM (1 training) vs random-search L2 ===\n"
           + format_table(["Strategy", "test accuracy", "# trainings"], rows))
    gm_acc, gm_cost = comparison["gm (adaptive)"]
    assert gm_cost == 1
    # One adaptive run is competitive with the full 8-candidate search.
    best_search = max(acc for label, (acc, _c) in comparison.items()
                      if label != "gm (adaptive)")
    assert gm_acc >= best_search - 0.04