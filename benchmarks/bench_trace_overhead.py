"""Tracing overhead: serve QPS with tracing disabled vs enabled.

Replays the same single-row predict burst through the ``repro.serve``
stack three times — tracing disabled, tracing enabled but fully
unsampled (``sample_rate=0.0``: every request pays the context capture
and span bookkeeping, none pays payload recording), and tracing at the
default head-sampling rate (0.1) — and writes ``BENCH_trace.json``
with QPS for each mode.

The claim this run enforces is the tentpole's cost budget:

- QPS with tracing at the **default sampling rate** is within 5% of
  the untraced QPS (``overhead_pct <= 5``);
- the served hard predictions are bit-identical across all three
  modes — tracing is observability, never behaviour.

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py
"""

import argparse
import statistics
import sys
import time

import numpy as np

from repro.datasets.preprocessing import TabularEncoder
from repro.datasets.synthetic import CategoricalSpec, TabularSchema, generate_dataset
from repro.nn import Network
from repro.nn.layers import Dense, ReLU
from repro.serve import ModelServer
from repro.telemetry import bench_filename, bench_payload, write_bench_json
from repro.telemetry.trace import DEFAULT_SAMPLE_RATE, Tracer

BATCH_SIZE = 32
WIDTHS = (1024, 512)
MAX_OVERHEAD_PCT = 5.0


def build_workload(quick: bool):
    """Encoded synthetic-dataset rows plus a seeded MLP to score them."""
    schema = TabularSchema(
        n_continuous=24,
        categorical=(
            CategoricalSpec("ward", 6),
            CategoricalSpec("payer", 4),
            CategoricalSpec("admission", 3),
        ),
        predictive_fraction=0.4,
    )
    n_rows = 768 if quick else 4096
    table, _labels, _weights = generate_dataset(
        schema, n_samples=n_rows, rng=np.random.default_rng(7)
    )
    x = TabularEncoder().fit_transform(table)
    rng = np.random.default_rng(11)
    d = x.shape[1]
    model = Network([
        Dense("fc1", d, WIDTHS[0], rng=rng),
        ReLU("r1"),
        Dense("fc2", WIDTHS[0], WIDTHS[1], rng=rng),
        ReLU("r2"),
        Dense("head", WIDTHS[1], 2, rng=rng),
    ], name="trace-mlp")
    return x, model


def measure_modes(model, x, tracers, repeats=4, chunk=96):
    """Per-mode QPS and overhead via paired, request-interleaved timing.

    Driven as *sequential single-row predicts* so each request is its
    own root span and head sampling applies per request exactly as in
    production traffic.  A single-threaded driver is deliberate: a
    thread-pool driver measures GIL/scheduler contention between the
    driver threads and the dispatch worker, which on a shared runner
    swings per-mode QPS by 10-25% between bursts — an order of
    magnitude more than the effect under test.

    The estimator is built for noisy shared runners, where CPU
    frequency and neighbour load drift on millisecond timescales:

    - every row is scored by **all modes back to back** (order rotating
      per row), so paired measurements share the same machine state;
    - per-row times accumulate into per-``chunk`` sums, and each
      chunk yields one traced-vs-disabled elapsed ratio — pairing
      cancels drift that poisons any comparison of separately-timed
      bursts;
    - the overhead estimate is the **median** of those ratios, so a
      spike must corrupt half the chunks to move it.
    """
    servers = {
        mode: ModelServer(
            model=model,
            max_batch_size=BATCH_SIZE,
            batch_timeout=0.0,
            max_queue=len(x) + 8,
            workers=1,
            cache_size=0,         # every request must hit the model
            tracer=tracer,
        )
        for mode, tracer in tracers.items()
    }
    modes = list(tracers)
    traced_modes = [mode for mode in modes if tracers[mode] is not None]
    chunks = [x[i:i + chunk] for i in range(0, len(x), chunk)]
    ratios = {mode: [] for mode in traced_modes}
    total = {mode: 0.0 for mode in modes}
    labels = {}
    clock = time.perf_counter
    try:
        for mode, server in servers.items():  # warm-up + label capture
            labels[mode] = np.array([server.predict(row) for row in x])
        rotation = 0
        for _ in range(repeats):
            for rows in chunks:
                elapsed = {mode: 0.0 for mode in modes}
                for row in rows:
                    order = modes[rotation % 3:] + modes[:rotation % 3]
                    rotation += 1
                    for mode in order:
                        server = servers[mode]
                        start = clock()
                        server.predict(row)
                        elapsed[mode] += clock() - start
                for mode in traced_modes:
                    ratios[mode].append(elapsed[mode] / elapsed["disabled"])
                for mode in modes:
                    total[mode] += elapsed[mode]
    finally:
        for server in servers.values():
            server.close()
    qps = {mode: len(x) * repeats / total[mode] for mode in modes}
    overhead_pct = {
        mode: max(0.0, (statistics.median(ratios[mode]) - 1.0) * 100.0)
        for mode in traced_modes
    }
    return labels, qps, overhead_pct


def run_benchmark(quick: bool = False):
    x, model = build_workload(quick)

    tracers = {
        "disabled": None,
        "unsampled": Tracer(sample_rate=0.0),
        "sampled": Tracer(sample_rate=DEFAULT_SAMPLE_RATE),
    }
    labels, qps, overhead_pct = measure_modes(model, x, tracers)
    modes = {
        mode: {
            "qps": qps[mode],
            "tracer": tracer.stats() if tracer is not None else None,
        }
        for mode, tracer in tracers.items()
    }
    for mode, pct in overhead_pct.items():
        modes[mode]["overhead_pct"] = pct

    bit_identical = bool(
        np.array_equal(labels["sampled"], labels["disabled"])
        and np.array_equal(labels["unsampled"], labels["disabled"])
    )

    payload = bench_payload(
        "trace",
        metrics={},
        extra={
            "quick": quick,
            "n_requests": int(len(x)),
            "n_features": int(x.shape[1]),
            "model": f"mlp {x.shape[1]}-{WIDTHS[0]}-{WIDTHS[1]}-2",
            "sample_rate": DEFAULT_SAMPLE_RATE,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "modes": modes,
            "bit_identical_predictions": bit_identical,
        },
    )
    path = write_bench_json(bench_filename("trace"), payload)
    return payload, path


def check_claims(payload):
    extra = payload["extra"]
    assert extra["bit_identical_predictions"], (
        "served labels differ between traced and untraced runs"
    )
    sampled = extra["modes"]["sampled"]
    assert sampled["overhead_pct"] <= MAX_OVERHEAD_PCT, (
        f"tracing at sample_rate={extra['sample_rate']} costs "
        f"{sampled['overhead_pct']:.2f}% QPS "
        f"(> {MAX_OVERHEAD_PCT}% budget; "
        f"untraced {extra['modes']['disabled']['qps']:.0f} qps, "
        f"traced {sampled['qps']:.0f} qps)"
    )
    # The sampled run must have really sampled roughly 1 in 10 roots.
    tracer = sampled["tracer"]
    assert tracer["started"] > 0
    assert 0 < tracer["sampled"] < tracer["started"]


def format_report(payload, path):
    extra = payload["extra"]
    lines = ["=== tracing overhead: serve QPS by tracer mode ==="]
    for mode in ("disabled", "unsampled", "sampled"):
        m = extra["modes"][mode]
        overhead = (
            f"  overhead={m['overhead_pct']:5.2f}%"
            if "overhead_pct" in m else ""
        )
        sampled = (
            f"  spans={m['tracer']['sampled']}/{m['tracer']['started']}"
            if m["tracer"] else ""
        )
        lines.append(f"{mode:10s} qps={m['qps']:9.0f}{overhead}{sampled}")
    lines.append(
        f"budget: <= {extra['max_overhead_pct']}% at "
        f"sample_rate={extra['sample_rate']}  "
        f"(bit-identical predictions: {extra['bit_identical_predictions']})"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_trace_overhead(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller burst for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
