"""Table V: learned per-layer GM regularization for the ResNet.

Trains the CIFAR ResNet with per-layer adaptive GMs and prints the
learned (pi, lambda) for the representative layers the paper lists.
Reproduction targets: <= 2 components per layer; layers within a stage
(same He-init precision) learn similar mixtures, which the paper
attributes to the initialization coupling (Section V-B2).
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    PAPER_TABLE5_RESNET,
    format_mixture_rows,
    layer_mixture_table,
    resnet_bench_config,
    train_deep,
)


def run_experiment():
    config = resnet_bench_config()
    return train_deep(config, method="gm")


def test_table5_resnet_learned_gm(benchmark, report):
    result = run_once(benchmark, run_experiment)
    rows = layer_mixture_table(result)
    report(
        "=== Table V: learned GM per ResNet layer (representative) ===\n"
        + format_mixture_rows(rows, PAPER_TABLE5_RESNET)
        + f"\n(test accuracy {result.test_accuracy:.3f})"
    )
    names = [r[0] for r in rows]
    assert "conv1/weight" in names
    assert "ip5/weight" in names
    for _name, pi, lam in rows:
        assert len(pi) <= 2
        assert np.isclose(sum(pi), 1.0)
        assert all(v > 0 for v in lam)
