"""Figure 5: wall-clock training time per lazy-update interval Im.

Trains the GM-regularized model with Im in {1, 2, 5, 10, 20, 50}
(Ig = Im, E = 2) plus the L2 baseline, and prints the cumulative
time-per-epoch series and the convergence-time summary.  Reproduction
targets (Section V-F1):

- time grows linearly with epochs for every setting;
- Im=1 (no lazy update) is slowest, Im=50 fastest among GM settings;
- Im=50 is roughly 4x faster than Im=1 (measured ~3-4x here) with no
  accuracy drop;
- the L2 baseline is the fastest overall.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    format_phase_table,
    format_series,
    format_timing_curves,
    run_im_sweep,
    timing_bench_config,
)

IM_VALUES = (1, 2, 5, 10, 20, 50)


def run_experiment():
    return run_im_sweep(timing_bench_config(), im_values=IM_VALUES,
                        eager_epochs=2)


def test_fig5_lazy_update_im(benchmark, report):
    curves = run_once(benchmark, run_experiment)
    lines = ["=== Figure 5: time vs epoch per Im (seconds) ==="]
    for curve in curves:
        lines.append(format_series(
            f"{curve.label:9s}", curve.epochs.tolist(),
            curve.cumulative_seconds, fmt=".2f",
        ))
    lines.append("")
    lines.append(format_timing_curves(curves))
    lines.append("")
    lines.append("--- per-phase timers (trainer MetricsRegistry) ---")
    lines.append(format_phase_table(curves))
    report("\n".join(lines))

    by_label = {c.label: c for c in curves}
    eager = by_label["Im=1"]
    laziest = by_label["Im=50"]
    baseline = by_label["baseline"]
    # Monotone per-epoch time growth (linear shape).
    for curve in curves:
        assert np.all(np.diff(curve.cumulative_seconds) > 0.0)
    # Ordering and speedup factor.  Neighbouring large intervals (Im=20
    # vs Im=50) differ by mere percent on second-scale CPU runs, so the
    # laziest setting only needs to be within timing noise of the
    # fastest GM curve; the eager end must be strictly slowest.
    gm_curves = [c for c in curves if c.label != "baseline"]
    assert eager.total_seconds == max(c.total_seconds for c in gm_curves)
    fastest_gm = min(c.total_seconds for c in gm_curves)
    assert laziest.total_seconds <= fastest_gm * 1.1
    assert eager.total_seconds / laziest.total_seconds > 2.0
    assert baseline.total_seconds <= laziest.total_seconds * 1.2
    # No accuracy drop from laziness.
    assert laziest.test_accuracy >= eager.test_accuracy - 0.06
    # Phase timers attribute the saving to the regularizer phases
    # directly: Im=50 skips ~82% of refreshes (2 eager epochs of 12,
    # then 1/50), so its E-step + M-step time must collapse while the
    # grad/SGD phases stay comparable across settings.
    assert eager.estep_refreshes > laziest.estep_refreshes * 3
    assert eager.em_seconds() > laziest.em_seconds() * 2.0
    assert laziest.phase_seconds["grad"] > laziest.em_seconds()
    # The whole-run wall-clock gap is explained by the EM phases: the
    # non-EM time (grad + SGD) differs far less than the EM time does.
    non_em_gap = abs(
        (eager.phase_seconds["grad"] + eager.phase_seconds["sgd"])
        - (laziest.phase_seconds["grad"] + laziest.phase_seconds["sgd"])
    )
    em_gap = eager.em_seconds() - laziest.em_seconds()
    assert em_gap > non_em_gap
