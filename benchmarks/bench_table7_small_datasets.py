"""Table VII: accuracy +- stderr on the 12 small datasets x 5 regularizers.

Runs the paper's protocol (stratified subsamples, per-method cross-
validated hyper-parameters) on all 12 datasets.  To keep the bench
under ~5 minutes it uses 3 subsamples and compact grids; the module-
level RUN_FULL_PROTOCOL switch restores the paper's 5 subsamples and
full grids.

Reproduction targets (the paper's headline claims):

- GM wins or ties on the large majority of datasets;
- GM beats L1 on *every* dataset (the paper: all 12);
- absolute accuracies land in the paper's per-dataset bands.
"""

from conftest import run_once

from repro.experiments import (
    PAPER_TABLE7,
    SmallRunConfig,
    format_table7,
    run_table7,
)

RUN_FULL_PROTOCOL = False

DATASETS = list(PAPER_TABLE7.keys())  # Hosp-FA + the 11 UCI stand-ins


def run_experiment():
    if RUN_FULL_PROTOCOL:
        config = SmallRunConfig(n_subsamples=5, cv_folds=3)
    else:
        config = SmallRunConfig(n_subsamples=3, cv_folds=2, compact_grids=True)
    return run_table7(DATASETS, config)


def test_table7_small_datasets(benchmark, report):
    comparisons = run_once(benchmark, run_experiment)
    report("=== Table VII: accuracy +- stderr ===\n"
           + format_table7(comparisons))

    gm_wins = 0
    gm_beats_l1 = 0
    close_to_paper = 0
    for comp in comparisons:
        gm = comp.results["gm"].mean_accuracy
        best_baseline = max(
            r.mean_accuracy for m, r in comp.results.items() if m != "gm"
        )
        if gm >= best_baseline - 1e-9:
            gm_wins += 1
        if gm >= comp.results["l1"].mean_accuracy - 1e-9:
            gm_beats_l1 += 1
        if abs(gm - PAPER_TABLE7[comp.dataset]["gm"]) < 0.08:
            close_to_paper += 1

    report(
        f"GM wins/ties on {gm_wins}/12 datasets "
        f"(paper: 11/12); GM >= L1 on {gm_beats_l1}/12 (paper: 12/12); "
        f"{close_to_paper}/12 within 0.08 of the paper's GM accuracy."
    )
    # Shape assertions, with slack for the reduced protocol.
    assert gm_wins >= 6
    assert gm_beats_l1 >= 9
    assert close_to_paper >= 9
