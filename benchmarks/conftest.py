"""Shared helpers for the benchmark harness.

Each benchmark runs its experiment exactly once under pytest-benchmark's
pedantic mode (these are minutes-long experiments, not microbenchmarks)
and prints the reproduced table/figure rows next to the paper's numbers
through the ``report`` fixture, which bypasses pytest's output capture
so the comparison lands in the terminal / bench_output.txt.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print ``text`` directly to the real terminal."""
    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
    return _print


def run_once(benchmark, fn):
    """Run ``fn`` a single time under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
