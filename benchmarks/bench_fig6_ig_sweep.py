"""Figure 6: convergence time for combinations of Ig and Im.

Fixes Im = 50 and raises the GM-parameter update interval Ig through
{50, 100, 200, 500}, reproducing the paper's observation that the
M-step is itself costly enough that increasing Ig keeps shaving time
(Section V-F2).
"""

from conftest import run_once

from repro.experiments import (
    format_phase_table,
    format_timing_curves,
    run_ig_sweep,
    timing_bench_config,
)

IG_VALUES = (50, 100, 200, 500)


def run_experiment():
    return run_ig_sweep(timing_bench_config(), im=50, ig_values=IG_VALUES,
                        eager_epochs=2)


def test_fig6_ig_sweep(benchmark, report):
    curves = run_once(benchmark, run_experiment)
    report("=== Figure 6: convergence time per (Ig, Im) ===\n"
           + format_timing_curves(curves)
           + "\n\n--- per-phase timers (trainer MetricsRegistry) ---\n"
           + format_phase_table(curves))
    times = {c.label: c.total_seconds for c in curves}
    # The largest Ig must not be slower than the smallest (within 15%
    # measurement noise on second-scale runs); the broad trend is down.
    assert times["Ig=500&Im=50"] <= times["Ig=50&Im=50"] * 1.15
    for curve in curves:
        assert curve.test_accuracy > 0.2  # well above 10-class chance
    # Phase timers isolate what Ig actually controls: raising Ig from
    # 50 to 500 must cut both the number of M-step refreshes and the
    # M-step phase time, while leaving the E-step count unchanged
    # (Im is fixed, so the schedule fires the same E-steps).
    by_label = {c.label: c for c in curves}
    tight, loose = by_label["Ig=50&Im=50"], by_label["Ig=500&Im=50"]
    assert tight.estep_refreshes == loose.estep_refreshes
    assert tight.mstep_refreshes > loose.mstep_refreshes
    assert tight.phase_seconds["mstep"] > loose.phase_seconds["mstep"]
