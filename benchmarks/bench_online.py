"""Continuous learning: online-EM fidelity + drift recovery under traffic.

Two claims about the ``repro.online`` closed loop, written to
``BENCH_online.json``:

1. **Stationary fidelity** — on a fixed weight vector, the online EM
   recursion (decayed sufficient statistics,
   :func:`repro.online.em.online_em_step`) converges to the *same*
   mixture as batch EM (:func:`repro.core.em.em_step`): final ``pi``
   agree within 1e-3 absolute and ``lambda`` within 1e-3 relative,
   including the collapse to the same effective component count.

2. **Drift recovery** — a model batch-trained before a label-flipping
   distribution shift serves a drifting stream through the full loop
   (live serving via :class:`~repro.serve.server.ModelServer`, online
   ``partial_fit``, cadence publishing, shadow evaluation, promotion by
   hot-swap).  The run must publish and promote at least one candidate,
   answer **every** request (zero drops), and finish with post-drift
   holdout accuracy within 2 points of a from-scratch retrain on
   post-drift data.

Run standalone (CI) or under pytest-benchmark like the other benches::

    PYTHONPATH=src python benchmarks/bench_online.py --quick
    PYTHONPATH=src python -m pytest benchmarks/bench_online.py
"""

import argparse
import sys

import numpy as np

from repro.core.em import em_step
from repro.core.gm_regularizer import GMRegularizer
from repro.linear.logistic import LogisticRegression
from repro.online import (
    ContinuousLoop,
    DecayedGMRegularizer,
    DriftStream,
    OnlineEMState,
    OnlineTrainer,
    PromotionPolicy,
    PublishTriggers,
    RegistryPublisher,
    ShadowEvaluator,
    online_em_step,
)
from repro.optim.trainer import Trainer
from repro.rng import spawn
from repro.serve import ModelRegistry, ModelServer
from repro.telemetry import bench_filename, bench_payload, write_bench_json
from repro.telemetry.metrics import MetricsRegistry

#: Batch-vs-online agreement tolerance (pi absolute, lambda relative).
EM_TOLERANCE = 1e-3
#: Drift gate: online live accuracy within this of a from-scratch retrain.
RETRAIN_GAP = 0.02


def run_stationary(quick: bool):
    """Batch EM vs decayed-statistics online EM on fixed weights."""
    n_dim = 200 if quick else 400
    w = spawn(5, 1).normal(0.0, 0.1, size=n_dim)
    reference = GMRegularizer(n_dim)
    a, b = reference._a, reference._b
    alpha = reference._alpha

    batch = reference.mixture
    for _ in range(200):
        batch = em_step(batch, w, alpha[: batch.n_components], a, b)

    # The decayed recursion is a damped iteration (step size 1 - rho);
    # 500 steps at rho=0.8 reaches the shared fixed point to ~1e-11.
    online = OnlineEMState(mixture=reference.mixture)
    for _ in range(500):
        online = online_em_step(
            online,
            w,
            alpha[: online.mixture.n_components],
            a,
            b,
            rho=0.8,
        )
    mixture = online.mixture
    if mixture.n_components != batch.n_components:
        pi_diff = lam_rel = float("inf")
    else:
        pi_diff = float(np.abs(batch.pi - mixture.pi).max())
        lam_rel = float(
            np.abs(batch.lam - mixture.lam).max() / np.abs(batch.lam).max()
        )
    return {
        "n_dimensions": n_dim,
        "batch_components": int(batch.n_components),
        "online_components": int(mixture.n_components),
        "pi_abs_diff": pi_diff,
        "lam_rel_diff": lam_rel,
        "tolerance": EM_TOLERANCE,
    }


def run_drift(quick: bool, metrics: MetricsRegistry):
    """The closed loop over a label-flipping stream, served end to end."""
    n_features = 12
    steps = 80 if quick else 160
    drift_at = steps // 3
    stream = DriftStream(n_features=n_features, batch_size=32, drift_at=drift_at)

    # Seed the live model with a *batch* pre-drift training run — the
    # deployment the drift then invalidates.
    x0, y0 = stream.holdout(1024, batch_index=0)
    model = LogisticRegression(
        n_features,
        regularizer=DecayedGMRegularizer(n_features, rho=0.9, warmup_steps=10),
        rng=spawn(9, 2),
    )
    Trainer(model, lr=0.5, batch_size=64).fit(
        x0, y0, epochs=5, rng=spawn(9, 3)
    )

    registry = ModelRegistry()
    registry.register(
        "drift-demo",
        lambda: LogisticRegression(n_features, weight_init_std=0.0),
    )
    registry.publish("drift-demo", model, activate=True)

    trainer = OnlineTrainer(model, lr=0.3, n_reference=1024, metrics=metrics)
    publisher = RegistryPublisher(
        registry, "drift-demo", PublishTriggers(every_steps=10),
        metrics=metrics,
    )
    shadow = ShadowEvaluator(
        registry, "drift-demo", fraction=0.5, metrics=metrics
    )
    policy = PromotionPolicy(min_samples=20, metrics=metrics)
    server = ModelServer(registry=registry, name="drift-demo")
    loop = ContinuousLoop(
        trainer, publisher, shadow, policy, server=server, metrics=metrics
    )
    with server:
        status = loop.run(stream, steps)

    # Post-drift holdout: the loop's final live model vs a from-scratch
    # retrain that saw only post-drift data.
    x_eval, y_eval = stream.holdout(1000, batch_index=steps)
    live = registry.active("drift-demo").model
    online_accuracy = float(np.mean(live.predict(x_eval) == y_eval))

    x_post, y_post = stream.holdout(1024, batch_index=drift_at)
    scratch = LogisticRegression(
        n_features,
        regularizer=GMRegularizer(n_features),
        rng=spawn(9, 4),
    )
    Trainer(scratch, lr=0.5, batch_size=64).fit(
        x_post, y_post, epochs=5, rng=spawn(9, 5)
    )
    scratch_accuracy = float(np.mean(scratch.predict(x_eval) == y_eval))

    return {
        "steps": steps,
        "drift_at": drift_at,
        "status": status,
        "online_accuracy": online_accuracy,
        "scratch_accuracy": scratch_accuracy,
        "accuracy_gap": scratch_accuracy - online_accuracy,
        "max_gap": RETRAIN_GAP,
    }


def run_benchmark(quick: bool):
    metrics = MetricsRegistry()
    stationary = run_stationary(quick)
    drift = run_drift(quick, metrics)
    payload = bench_payload(
        "online",
        metrics=metrics,
        extra={"stationary": stationary, "drift": drift},
    )
    path = write_bench_json(bench_filename("online"), payload)
    return payload, path


def check_claims(payload):
    stationary = payload["extra"]["stationary"]
    assert stationary["online_components"] == stationary["batch_components"], (
        f"online EM kept {stationary['online_components']} components, "
        f"batch EM {stationary['batch_components']}"
    )
    assert stationary["pi_abs_diff"] <= EM_TOLERANCE, (
        f"online pi deviates from batch EM by {stationary['pi_abs_diff']:.2e}"
    )
    assert stationary["lam_rel_diff"] <= EM_TOLERANCE, (
        f"online lambda deviates from batch EM by "
        f"{stationary['lam_rel_diff']:.2e}"
    )
    drift = payload["extra"]["drift"]
    status = drift["status"]
    assert status["published_total"] >= 1, "no candidate was published"
    assert status["promotions"] >= 1, "no candidate was promoted"
    assert status["dropped_requests"] == 0, (
        f"{status['dropped_requests']} requests dropped"
    )
    assert drift["accuracy_gap"] <= RETRAIN_GAP, (
        f"online loop trails from-scratch retrain by "
        f"{drift['accuracy_gap']:.3f} (> {RETRAIN_GAP})"
    )


def format_report(payload, path):
    stationary = payload["extra"]["stationary"]
    drift = payload["extra"]["drift"]
    status = drift["status"]
    lines = ["=== online EM: stationary fidelity vs batch EM ==="]
    lines.append(
        f"components: batch={stationary['batch_components']} "
        f"online={stationary['online_components']}  "
        f"pi_abs_diff={stationary['pi_abs_diff']:.2e}  "
        f"lam_rel_diff={stationary['lam_rel_diff']:.2e}  "
        f"(tolerance {stationary['tolerance']})"
    )
    lines.append("=== continuous loop: drift recovery under traffic ===")
    lines.append(
        f"steps={drift['steps']} drift_at={drift['drift_at']}  "
        f"published={status['published_total']} "
        f"promotions={status['promotions']} "
        f"rollbacks={status['rollbacks']}  "
        f"requests={status['requests_total']} "
        f"dropped={status['dropped_requests']}"
    )
    lines.append(
        f"post-drift accuracy: online={drift['online_accuracy']:.3f} "
        f"from-scratch={drift['scratch_accuracy']:.3f} "
        f"gap={drift['accuracy_gap']:+.3f} (max {drift['max_gap']})"
    )
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def test_online(benchmark, report):
    from conftest import run_once

    payload, path = run_once(benchmark, lambda: run_benchmark(quick=False))
    report(format_report(payload, path))
    check_claims(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller stream for CI smoke runs")
    args = parser.parse_args(argv)
    payload, path = run_benchmark(quick=args.quick)
    print(format_report(payload, path))
    check_claims(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
